//! The remote-call protocol: marshalling, dispatch, and restore.
//!
//! One client entry point ([`client_invoke`]) and one server loop
//! ([`serve_connection`]) implement all four calling semantics:
//!
//! * **Copy** — serialize arguments, run, serialize the return value.
//! * **Copy-restore** — the paper's six-step algorithm end to end:
//!   linear maps on both sides (steps 1–2 via serialization, §5.2.1),
//!   the reply marshalled *from the server's linear map* so unreachable-
//!   but-aliased data travels home (step 3), old-index annotations in the
//!   payload (step 4's matching), and the in-place restore on the client
//!   (steps 5–6).
//! * **DCE RPC** — identical, except the reply is marshalled from the
//!   parameters instead of the linear map: data unreachable from the
//!   parameters after the call silently drops (§4.2, Figure 9).
//! * **Remote references** — arguments travel as export keys; the
//!   service runs against a [`RemoteHeapProxy`] and the client answers
//!   field-access callbacks mid-call (Figure 3).
//!
//! The client's receive loop doubles as the callback server, so graphs
//! that mix semantics (a copied graph containing remote-marked objects)
//! work too.
//!
//! [`RemoteHeapProxy`]: crate::proxy::RemoteHeapProxy

use nrmi_heap::{Heap, LinearMap, ObjId, SharedRegistry, Value};
use nrmi_transport::{decode_rvals, encode_rvals, Frame, Transport, TransportError};
use nrmi_wire::{apply_delta, deserialize_graph_with};

use crate::error::NrmiError;
use crate::lockcheck::{allow_blocking, TrackedMutex};
use crate::node::{ClientNode, NodeHooks, NodeState, ServerNode};
use crate::proxy::{handle_callback, RemoteHeapProxy};
use crate::restore::apply_restore;
use crate::semantics::{CallOptions, PassMode};

/// Determines which argument objects are copy-restore roots for a call.
/// Both sides compute this identically (same registry, same argument
/// order), which is what makes the two linear maps correspond.
pub(crate) fn restore_roots_of(
    registry: &SharedRegistry,
    heap: &Heap,
    opts: CallOptions,
    args: &[Value],
) -> Result<Vec<ObjId>, NrmiError> {
    let refs = args.iter().filter_map(Value::as_ref_id);
    match opts.mode_override {
        Some(PassMode::Copy) | Some(PassMode::RemoteRef) => Ok(Vec::new()),
        Some(PassMode::CopyRestore) | Some(PassMode::DceRpc) => {
            // Forced restore semantics for every (copyable) reference arg.
            let mut roots = Vec::new();
            for id in refs {
                let obj = heap.get(id)?;
                let flags = registry.get(obj.class())?.flags();
                if !flags.stub && !flags.remote {
                    roots.push(id);
                }
            }
            Ok(roots)
        }
        None => {
            // Marker-driven (the NRMI default, §5.1).
            let mut roots = Vec::new();
            for id in refs {
                let obj = heap.get(id)?;
                if registry.get(obj.class())?.flags().restorable {
                    roots.push(id);
                }
            }
            Ok(roots)
        }
    }
}

/// Per-call accounting returned alongside the result by
/// [`client_invoke_with_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CallStats {
    /// Objects serialized into the request.
    pub request_objects: usize,
    /// Request payload bytes.
    pub request_bytes: usize,
    /// Objects materialized from the reply.
    pub reply_objects: usize,
    /// Reply payload bytes.
    pub reply_bytes: usize,
    /// Old objects restored in place (steps 4–6).
    pub restored_objects: usize,
    /// New objects spliced into the caller's graph.
    pub new_objects: usize,
    /// Remote-pointer callbacks served by this client during the call.
    pub callbacks_served: u64,
    /// Coherence repair patches (`CacheStale`) applied during the call —
    /// both replies to our own warm request and pushes for idle sessions
    /// consumed while waiting.
    pub stale_patches: u64,
}

/// What a call is addressed to: a registry-named service, or a
/// first-class remote object in the server's export table.
#[derive(Clone, Copy, Debug)]
enum CallTarget<'a> {
    Named(&'a str),
    Exported(u64),
}

/// Invokes `service.method(args)` over `transport` and returns the
/// translated return value. Convenience wrapper over
/// [`client_invoke_with_stats`].
///
/// # Errors
/// Marshalling, transport, protocol, and remote-exception failures.
pub fn client_invoke(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
    opts: CallOptions,
) -> Result<Value, NrmiError> {
    client_invoke_with_stats(client, transport, service, method, args, opts).map(|(v, _)| v)
}

/// Invokes a remote method on a named service, returning the result and
/// per-call statistics.
///
/// # Errors
/// Marshalling, transport, protocol, and remote-exception failures.
pub fn client_invoke_with_stats(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
    opts: CallOptions,
) -> Result<(Value, CallStats), NrmiError> {
    client_invoke_target(
        client,
        transport,
        CallTarget::Named(service),
        method,
        args,
        opts,
    )
}

/// Invokes a method ON a remote object the client holds a stub for —
/// RMI's first-class remote-object dispatch. The stub's key addresses
/// the receiver; the server prepends the receiver to the arguments and
/// dispatches to the behavior bound to its class
/// ([`ServerNode::bind_class`]).
///
/// # Errors
/// [`NrmiError::InvalidArgument`] if `stub` is not a remote stub, plus
/// the usual call failures.
pub fn client_invoke_on_object_with_stats(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    stub: nrmi_heap::ObjId,
    method: &str,
    args: &[Value],
    opts: CallOptions,
) -> Result<(Value, CallStats), NrmiError> {
    let key = client
        .state
        .heap
        .stub_key(stub)?
        .ok_or_else(|| NrmiError::InvalidArgument(format!("{stub} is not a remote stub")))?;
    client_invoke_target(
        client,
        transport,
        CallTarget::Exported(key),
        method,
        args,
        opts,
    )
}

fn client_invoke_target(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    target: CallTarget<'_>,
    method: &str,
    args: &[Value],
    opts: CallOptions,
) -> Result<(Value, CallStats), NrmiError> {
    let (request, mut pending) = client_marshal_target(client, target, method, args, opts)?;
    transport.send(&request)?;
    let reply_payload = client_collect_reply(
        client,
        transport,
        opts.timeout,
        &mut pending.stats.callbacks_served,
    )?;
    client_apply_reply(client, pending, &reply_payload)
}

/// The client half of a call between marshal and restore: the linear
/// map and options [`client_apply_reply`] needs to translate the reply
/// payload back into the caller's heap.
///
/// Produced by [`client_marshal_call`]; between the two phases the
/// caller owns delivery — send the request frame, collect the matching
/// reply payload — which is what lets several calls share one
/// connection in flight at once (see [`client_invoke_pipelined`] and
/// `ReliableTransport::send_call`/`recv_reply`).
#[derive(Debug)]
pub struct PendingCall {
    client_map: LinearMap,
    remote_ref: bool,
    opts: CallOptions,
    stats: CallStats,
}

impl PendingCall {
    /// The options the call was marshalled with.
    pub fn opts(&self) -> CallOptions {
        self.opts
    }
}

/// Marshals `service.method(args)` into a sendable [`Frame`] plus the
/// [`PendingCall`] state needed to apply its reply — the split-phase
/// form of [`client_invoke_with_stats`]. The caller delivers the frame
/// and hands the reply payload to [`client_apply_reply`].
///
/// # Errors
/// Marshalling failures and invalid option combinations.
pub fn client_marshal_call(
    client: &mut ClientNode,
    service: &str,
    method: &str,
    args: &[Value],
    opts: CallOptions,
) -> Result<(Frame, PendingCall), NrmiError> {
    client_marshal_target(client, CallTarget::Named(service), method, args, opts)
}

fn client_marshal_target(
    client: &mut ClientNode,
    target: CallTarget<'_>,
    method: &str,
    args: &[Value],
    opts: CallOptions,
) -> Result<(Frame, PendingCall), NrmiError> {
    // Delta replies encode "everything the server changed", which is
    // full copy-restore semantics; combining the flag with DCE's partial
    // restore or remote-ref's no-copy mode would silently change meaning.
    if opts.delta_reply
        && matches!(
            opts.mode_override,
            Some(PassMode::DceRpc) | Some(PassMode::RemoteRef)
        )
    {
        return Err(NrmiError::InvalidArgument(
            "delta replies require copy-restore semantics (AUTO or CopyRestore)".into(),
        ));
    }
    let state = &mut client.state;
    let cost = state.profile.cost();
    let mut stats = CallStats::default();

    let registry = state.heap.registry_handle().clone();
    let remote_ref_mode = opts.mode_override == Some(PassMode::RemoteRef);

    let (payload, client_map) = if remote_ref_mode {
        // Arguments travel as export keys; nothing is copied.
        let mut rvals = Vec::with_capacity(args.len());
        for arg in args {
            rvals.push(state.value_to_rval(arg)?);
        }
        state.charge_cpu(cost.call_overhead_us);
        (encode_rvals(&rvals), LinearMap::empty())
    } else {
        // Step 1: the client's linear map over the restorable roots.
        let restore_roots = restore_roots_of(&registry, &state.heap, opts, args)?;
        let client_map = LinearMap::build(&state.heap, &restore_roots)?;
        // Step 2 (first half): serialize everything reachable from the
        // arguments. The traversal IS the linear-map walk (§5.2.1). The
        // node's codec supplies the position-map and buffer scratch.
        let NodeState {
            heap,
            exports,
            stubs,
            codec,
            ..
        } = &mut *state;
        let mut hooks = NodeHooks::new(exports, stubs);
        let enc = codec.encode_graph(heap, args, None, Some(&mut hooks))?;
        stats.request_objects = enc.object_count();
        stats.request_bytes = enc.byte_len();
        state.charge_cpu(
            cost.call_overhead_us
                + enc.object_count() as f64 * cost.ser_per_obj_us
                + enc.byte_len() as f64 * cost.per_byte_us
                + client_map.len() as f64 * cost.linear_map_per_obj_us,
        );
        (enc.bytes, client_map)
    };

    let request = match target {
        CallTarget::Named(service) => Frame::CallRequest {
            service: service.to_owned(),
            method: method.to_owned(),
            mode: opts.to_wire(),
            payload,
        },
        CallTarget::Exported(key) => Frame::CallObject {
            key,
            method: method.to_owned(),
            mode: opts.to_wire(),
            payload,
        },
    };
    Ok((
        request,
        PendingCall {
            client_map,
            remote_ref: remote_ref_mode,
            opts,
            stats,
        },
    ))
}

/// Receives frames until the call's reply payload arrives, serving
/// remote-pointer callbacks on the way (the client's receive loop
/// doubles as the callback server).
fn client_collect_reply(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    timeout: Option<std::time::Duration>,
    callbacks_served: &mut u64,
) -> Result<Vec<u8>, NrmiError> {
    loop {
        let frame = match timeout {
            Some(deadline) => transport.recv_timeout(deadline)?,
            None => transport.recv()?,
        };
        match frame {
            Frame::CallReply { payload } => return Ok(payload),
            Frame::CallError { message } => return Err(NrmiError::Remote(message)),
            // A pushed warm-session invalidation racing this cold call's
            // reply: apply it to the addressed (idle) session and keep
            // waiting.
            Frame::CacheStale {
                cache_id,
                version,
                payload,
            } => {
                crate::warm::client_apply_stale(client, cache_id, version, &payload);
            }
            other => match handle_callback(&mut client.state, &other) {
                Some(reply) => {
                    *callbacks_served += 1;
                    transport.send(&reply)?;
                }
                None => {
                    return Err(NrmiError::Protocol(format!(
                        "unexpected frame while awaiting reply: {other:?}"
                    )))
                }
            },
        }
    }
}

/// Applies a reply payload to the caller's heap — unmarshal, match
/// against the linear map, restore in place (steps 4–6) — completing a
/// call begun with [`client_marshal_call`].
///
/// # Errors
/// Unmarshalling, protocol, and restore failures.
pub fn client_apply_reply(
    client: &mut ClientNode,
    pending: PendingCall,
    reply_payload: &[u8],
) -> Result<(Value, CallStats), NrmiError> {
    let PendingCall {
        client_map,
        remote_ref,
        opts,
        mut stats,
    } = pending;
    let state = &mut client.state;
    let cost = state.profile.cost();
    stats.reply_bytes = reply_payload.len();

    if remote_ref {
        let rvals = decode_rvals(reply_payload)?;
        let ret = rvals
            .first()
            .ok_or_else(|| NrmiError::Protocol("empty remote-ref reply".into()))?;
        let value = state.rval_to_value(ret)?;
        return Ok((value, stats));
    }

    if opts.delta_reply && reply_payload.starts_with(&nrmi_wire::delta::DELTA_MAGIC) {
        // Delta path: apply directly onto the originals — the restore is
        // implicit in delta application. (A reply starting with the
        // graph magic instead means the server fell back to a full
        // reply; the ordinary path below handles it.)
        let applied = apply_delta(reply_payload, &mut state.heap, client_map.order())?;
        stats.restored_objects = applied.changed_count;
        stats.new_objects = applied.new_objects.len();
        state.charge_cpu(
            reply_payload.len() as f64 * cost.per_byte_us
                + applied.changed_count as f64 * (cost.de_per_obj_us + cost.restore_per_obj_us)
                + applied.new_objects.len() as f64 * cost.de_per_obj_us,
        );
        let ret = applied
            .roots
            .first()
            .cloned()
            .ok_or_else(|| NrmiError::Protocol("empty delta reply".into()))?;
        return Ok((ret, stats));
    }

    // Full reply: deserialize (rebuilding the reply-side linear map in
    // the same pass), then run steps 4–6.
    let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
    let decoded = deserialize_graph_with(reply_payload, &mut state.heap, &mut hooks)?;
    stats.reply_objects = decoded.object_count();
    state.charge_cpu(
        decoded.object_count() as f64 * cost.de_per_obj_us
            + reply_payload.len() as f64 * cost.per_byte_us,
    );

    let outcome = apply_restore(&mut state.heap, &client_map, &decoded)?;
    stats.restored_objects = outcome.stats.old_objects;
    stats.new_objects = outcome.stats.new_objects;
    state.charge_cpu(outcome.stats.old_objects as f64 * cost.restore_per_obj_us);

    let ret = outcome
        .roots
        .first()
        .cloned()
        .ok_or_else(|| NrmiError::Protocol("empty reply".into()))?;
    Ok((ret, stats))
}

/// One named-service call in a pipelined batch (see
/// [`client_invoke_pipelined`]).
#[derive(Clone, Debug)]
pub struct PipelinedCall {
    service: String,
    method: String,
    args: Vec<Value>,
    opts: CallOptions,
}

impl PipelinedCall {
    /// A call with default (marker-driven) options.
    pub fn new(service: impl Into<String>, method: impl Into<String>, args: Vec<Value>) -> Self {
        PipelinedCall::with_opts(service, method, args, CallOptions::default())
    }

    /// A call with explicit options. Remote-reference mode is rejected
    /// at invoke time: its mid-call callbacks interleave with the reply
    /// stream and cannot share the connection with other calls.
    pub fn with_opts(
        service: impl Into<String>,
        method: impl Into<String>,
        args: Vec<Value>,
        opts: CallOptions,
    ) -> Self {
        PipelinedCall {
            service: service.into(),
            method: method.into(),
            args,
            opts,
        }
    }
}

/// Invokes a batch of calls over one connection with every request on
/// the wire before the first reply is collected — pipelining: one
/// round-trip's latency is paid once for the whole batch instead of
/// once per call.
///
/// Replies are collected in issue order. Over a plain transport that is
/// also wire order (in-order serve loops); over a `ReliableTransport`
/// each reply is routed by call id, so a pipelined server may answer
/// out of order and each call still gets its own. Per-call failures —
/// a remote exception, a per-call deadline — land in that call's slot
/// without abandoning the rest of the batch.
///
/// # Errors
/// Whole-batch failures only: a remote-reference call in the batch
/// ([`NrmiError::InvalidArgument`]), marshalling failures, and
/// connection-fatal transport errors. Everything per-call comes back in
/// the result vector.
pub fn client_invoke_pipelined(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    calls: &[PipelinedCall],
) -> Result<Vec<Result<Value, NrmiError>>, NrmiError> {
    for call in calls {
        if call.opts.mode_override == Some(PassMode::RemoteRef) {
            return Err(NrmiError::InvalidArgument(
                "remote-reference calls cannot be pipelined: their mid-call callbacks \
                 interleave with the reply stream"
                    .into(),
            ));
        }
    }
    // Marshal the whole batch first (so a bad call poisons nothing),
    // then put every request on the wire before collecting any reply.
    let mut marshalled = Vec::with_capacity(calls.len());
    for call in calls {
        marshalled.push(client_marshal_target(
            client,
            CallTarget::Named(&call.service),
            &call.method,
            &call.args,
            call.opts,
        )?);
    }
    // The whole train goes out through one send_batch — a single
    // vectored write on socket transports, one syscall for N calls.
    let mut frames = Vec::with_capacity(marshalled.len());
    let mut pendings = Vec::with_capacity(marshalled.len());
    for (frame, pending) in marshalled {
        frames.push(frame);
        pendings.push(pending);
    }
    let refs: Vec<&Frame> = frames.iter().collect();
    transport.send_batch(&refs)?;
    drop(frames);
    let mut results = Vec::with_capacity(pendings.len());
    for mut pending in pendings {
        let timeout = pending.opts.timeout;
        match client_collect_reply(
            client,
            transport,
            timeout,
            &mut pending.stats.callbacks_served,
        ) {
            Ok(payload) => {
                results.push(client_apply_reply(client, pending, &payload).map(|(v, _)| v));
            }
            // This call's failure, not the connection's: record it in
            // its slot and keep collecting the rest.
            Err(e @ NrmiError::Remote(_)) => results.push(Err(e)),
            Err(NrmiError::Transport(e @ TransportError::DeadlineExceeded { .. })) => {
                results.push(Err(NrmiError::Transport(e)));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(results)
}

/// Handles one `CallRequest` on the server. Returns the reply frame
/// (`CallReply` on success, `CallError` carrying the remote exception
/// otherwise).
/// What the server resolved a request to.
#[derive(Clone, Copy, Debug)]
enum Callee<'a> {
    Named(&'a str),
    Exported(u64),
}

/// Handles one named-service call against `server`, returning the reply
/// frame. Entry point for serve loops living outside this module (the
/// pooled per-connection loop in [`crate::server`]).
pub(crate) fn server_handle_named_call(
    server: &mut ServerNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    payload: &[u8],
) -> Frame {
    server_handle_call(
        server,
        transport,
        method,
        Callee::Named(service),
        mode_byte,
        payload,
    )
}

/// Handles one exported-object call against `server` (see
/// [`server_handle_named_call`]).
pub(crate) fn server_handle_object_call(
    server: &mut ServerNode,
    transport: &mut dyn Transport,
    key: u64,
    method: &str,
    mode_byte: u8,
    payload: &[u8],
) -> Frame {
    server_handle_call(
        server,
        transport,
        method,
        Callee::Exported(key),
        mode_byte,
        payload,
    )
}

fn server_handle_call(
    server: &mut ServerNode,
    transport: &mut dyn Transport,
    method: &str,
    callee: Callee<'_>,
    mode_byte: u8,
    payload: &[u8],
) -> Frame {
    match server_handle_call_inner(server, transport, method, callee, mode_byte, payload) {
        Ok(reply) => reply,
        // Application exceptions travel as their own message; wrapping
        // happens once, on the client ("remote exception: <msg>").
        Err(NrmiError::Remote(message)) => Frame::CallError { message },
        Err(e) => Frame::CallError {
            message: e.to_string(),
        },
    }
}

fn server_handle_call_inner(
    server: &mut ServerNode,
    transport: &mut dyn Transport,
    method: &str,
    callee: Callee<'_>,
    mode_byte: u8,
    payload: &[u8],
) -> Result<Frame, NrmiError> {
    let opts = CallOptions::from_wire(mode_byte)?;
    let ServerNode {
        state,
        services,
        class_services,
        replies: _,
        leases: _,
    } = server;
    let cost = state.profile.cost();
    let registry = state.heap.registry_handle().clone();
    // Resolve the callee: a named service, or the class behavior of an
    // exported receiver object (prepended to the args below).
    let (service, receiver) = match callee {
        Callee::Named(name) => (
            services
                .get_mut(name)
                .ok_or_else(|| NrmiError::NoSuchService(name.to_owned()))?,
            None,
        ),
        Callee::Exported(key) => {
            let obj = state
                .exports
                .lookup(key)
                .ok_or_else(|| NrmiError::Protocol(format!("call on unknown export key {key}")))?;
            let class = state.heap.get(obj)?.class();
            let service = class_services.get_mut(&class).ok_or_else(|| {
                let name = registry
                    .get(class)
                    .map(|d| d.name().to_owned())
                    .unwrap_or_else(|_| format!("<class:{}>", class.index()));
                NrmiError::NoSuchService(format!("class {name}"))
            })?;
            (service, Some(obj))
        }
    };

    let remote_ref_mode = opts.mode_override == Some(PassMode::RemoteRef);

    // --- Unmarshal arguments --------------------------------------------
    let (args, server_map, snapshot) = if remote_ref_mode {
        let rvals = decode_rvals(payload)?;
        let mut args = Vec::with_capacity(rvals.len());
        for rv in &rvals {
            args.push(state.rval_to_value(rv)?);
        }
        state.charge_cpu(cost.dispatch_overhead_us);
        (args, LinearMap::empty(), None)
    } else {
        let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
        let decoded = deserialize_graph_with(payload, &mut state.heap, &mut hooks)?;
        state.charge_cpu(
            cost.dispatch_overhead_us
                + decoded.object_count() as f64 * cost.de_per_obj_us
                + payload.len() as f64 * cost.per_byte_us,
        );
        let args = decoded.roots.clone();
        // The server-side linear map (step 2, second half). Matches the
        // client's map position-for-position because the deserialized
        // graph is isomorphic and the traversal is deterministic.
        let restore_roots = restore_roots_of(&registry, &state.heap, opts, &args)?;
        let server_map = LinearMap::build(&state.heap, &restore_roots)?;
        state.charge_cpu(server_map.len() as f64 * cost.linear_map_per_obj_us);
        let snapshot = if opts.delta_reply {
            // Reuse the node's pooled snapshot storage (taken out because
            // the service invocation below needs the whole node state).
            let mut snap = std::mem::take(&mut state.reply_snapshot);
            snap.recapture(&state.heap, server_map.order())?;
            Some(snap)
        } else {
            None
        };
        (args, server_map, snapshot)
    };

    // --- Execute the remote routine --------------------------------------
    // The service always runs against the proxy: plain heap accesses go
    // straight through; stub accesses cross the network. No read/write
    // barriers on the local path — the paper's "full speed" property.
    // For object-addressed calls the receiver is prepended as args[0]
    // (AFTER the restore map was built: the receiver is server-owned and
    // never restored to the caller).
    let invoke_args: Vec<Value> = match receiver {
        Some(obj) => std::iter::once(Value::Ref(obj))
            .chain(args.iter().cloned())
            .collect(),
        None => args.clone(),
    };
    let ret = {
        let mut proxy = RemoteHeapProxy::new(state, transport);
        service.invoke(method, &invoke_args, &mut proxy)?
    };

    // --- Marshal the reply -----------------------------------------------
    if remote_ref_mode {
        let rv = state.value_to_rval(&ret)?;
        state.charge_cpu(cost.callback_owner_us);
        return Ok(Frame::CallReply {
            payload: encode_rvals(&[rv]),
        });
    }

    if let Some(snapshot) = snapshot {
        // Delta reply (§5.2.4, optimization 2). The delta encoder cannot
        // express remote stubs linked into restorable state; when the
        // method created such links, fall through to the full-reply path
        // (the payload self-describes via its magic, so the client copes).
        let outcome = {
            let NodeState { heap, codec, .. } = &mut *state;
            codec.encode_reply_delta(heap, &snapshot, std::slice::from_ref(&ret))
        };
        state.reply_snapshot = snapshot;
        match outcome {
            Ok(delta) => {
                state.charge_cpu(
                    delta.stats.changed_count as f64 * cost.ser_per_obj_us
                        + delta.stats.new_count as f64 * cost.ser_per_obj_us
                        + server_map.len() as f64 * cost.linear_map_per_obj_us
                        + delta.bytes.len() as f64 * cost.per_byte_us,
                );
                return Ok(Frame::CallReply {
                    payload: delta.bytes,
                });
            }
            Err(nrmi_wire::WireError::NotSerializable { .. })
            | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
                // Fall through to the annotated full reply below.
            }
            Err(e) => return Err(e.into()),
        }
    }

    // Step 3: marshal the reply. Old-index annotations implement the
    // map matching of step 4 on the wire; the linear map's own dense
    // position index is the annotation table.
    let mut reply_roots = vec![ret];
    match opts.mode_override {
        Some(PassMode::DceRpc) => {
            // DCE RPC (§4.2): the reply is marshalled from the PARAMETER
            // roots, not the linear map. Whatever became unreachable
            // from the parameters during the call silently stays behind
            // — Figure 9's divergence from true copy-restore. (Java
            // reference arguments cannot be reseated, so the pre-call
            // roots are still the roots.)
            reply_roots.extend(
                restore_roots_of(&registry, &state.heap, opts, &args)?
                    .into_iter()
                    .map(Value::Ref),
            );
        }
        _ => {
            // Full copy-restore (also the AUTO path): ship the whole
            // linear map, so data unreachable from the parameters still
            // travels home.
            reply_roots.extend(server_map.order().iter().map(|&id| Value::Ref(id)));
        }
    }
    let NodeState {
        heap,
        exports,
        stubs,
        codec,
        ..
    } = &mut *state;
    let mut hooks = NodeHooks::new(exports, stubs);
    let enc = codec.encode_graph(
        heap,
        &reply_roots,
        Some(server_map.position_map()),
        Some(&mut hooks),
    )?;
    state.charge_cpu(
        enc.object_count() as f64 * cost.ser_per_obj_us + enc.byte_len() as f64 * cost.per_byte_us,
    );
    Ok(Frame::CallReply { payload: enc.bytes })
}

/// Executes the call carried inside a [`Frame::Tagged`] envelope and
/// returns its reply frame. Only call frames may travel tagged; anything
/// else is a protocol error answered in-band so the client's retry loop
/// terminates instead of retransmitting forever.
///
/// Public as the single-frame step function of the serve loop: protocol
/// tooling (the `nrmi-check` model checker) dispatches frames one at a
/// time through it, with full control over reply ordering.
pub fn dispatch_tagged(
    server: &mut ServerNode,
    warm: &mut crate::warm::WarmCaches,
    transport: &mut dyn Transport,
    frame: Frame,
) -> Frame {
    match frame {
        Frame::CallRequest {
            service,
            method,
            mode,
            payload,
        } => server_handle_call(
            server,
            transport,
            &method,
            Callee::Named(&service),
            mode,
            &payload,
        ),
        Frame::CallObject {
            key,
            method,
            mode,
            payload,
        } => server_handle_call(
            server,
            transport,
            &method,
            Callee::Exported(key),
            mode,
            &payload,
        ),
        Frame::CallRequestWarm {
            service,
            method,
            mode,
            cache_id,
            generation,
            payload,
        } => crate::warm::server_handle_warm_call(
            server, warm, transport, &service, &method, mode, cache_id, generation, &payload,
        ),
        other => Frame::CallError {
            message: format!("frame cannot carry a call id: {other:?}"),
        },
    }
}

/// Big-lock shared-server variant of [`serve_connection`]: the server
/// node sits behind one mutex and every connection thread locks it per
/// request. **Retained only as the serialized baseline** for the
/// `tables -- scaling` ablation; real multi-client servers use
/// [`ServerPool`](crate::session::ServerPool), which replaces the big
/// lock with per-connection node state, per-service mutexes, and a
/// sharded reply cache.
///
/// Known limitation (the bug the pool fixes): the node lock is held
/// across call execution *including mid-call callback traffic to the
/// client*, so a client that stalls inside a callback blocks every
/// other connection — and a client that never answers deadlocks them.
///
/// # Errors
/// Returns transport errors other than orderly disconnect.
pub fn serve_connection_shared(
    server: &TrackedMutex<ServerNode>,
    transport: &mut dyn Transport,
) -> Result<(), NrmiError> {
    // Warm-session caches are per CONNECTION, even over a shared node:
    // each client can only address sessions it seeded itself. Evictions
    // go through the node's lease table, because different connections'
    // sessions CAN cover the same heap objects here (the shared-graph
    // case the scaling ablation contends on).
    let leases = server.lock().leases.clone();
    let mut warm = crate::warm::WarmCaches::with_leases(leases);
    let result = serve_connection_shared_inner(server, transport, &mut warm);
    warm.release_all(&mut server.lock().state.heap);
    result
}

fn serve_connection_shared_inner(
    server: &TrackedMutex<ServerNode>,
    transport: &mut dyn Transport,
    warm: &mut crate::warm::WarmCaches,
) -> Result<(), NrmiError> {
    // Designed-in hold (DESIGN.md §3i): this baseline keeps the node
    // lock across call execution including callback I/O — that is
    // exactly the limitation documented above and measured by the
    // scaling ablation, so the witness records it as accepted rather
    // than as NRMI-L002.
    let _allow = allow_blocking(
        "big-lock baseline holds the node lock across callback I/O by documented design",
    );
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(TransportError::Disconnected) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match frame {
            Frame::Shutdown => return Ok(()),
            // One dispatcher for warm calls and evictions, shared with
            // every other serve loop. It returns pushed `CacheStale`
            // invalidations — for THIS connection's other sessions that
            // a peer's call staled — ahead of the call's own reply.
            frame @ (Frame::CallRequestWarm { .. } | Frame::CacheEvict { .. }) => {
                let out =
                    crate::warm::dispatch_warm_frame_shared(server, warm, transport, frame, true);
                for reply in out {
                    transport.send(&reply)?;
                }
            }
            Frame::Lookup { name } => {
                let found = server.lock().is_bound(&name);
                transport.send(&Frame::LookupReply { found })?;
            }
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                let reply = server_handle_call(
                    &mut server.lock(),
                    transport,
                    &method,
                    Callee::Named(&service),
                    mode,
                    &payload,
                );
                transport.send(&reply)?;
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                let reply = server_handle_call(
                    &mut server.lock(),
                    transport,
                    &method,
                    Callee::Exported(key),
                    mode,
                    &payload,
                );
                transport.send(&reply)?;
            }
            Frame::DgcClean { key } => {
                server.lock().state.exports.clean(key);
            }
            Frame::Tagged { nonce, seq, frame } => {
                use crate::reliable::ReplyDecision;
                let reply = match *frame {
                    Frame::CallRequestWarm {
                        service,
                        method,
                        mode,
                        cache_id,
                        generation,
                        payload,
                    } => {
                        // The warm handler takes the mutex itself, so the
                        // decision and store use separate lock scopes.
                        // `begin` bridges the gap: it marks the id as
                        // executing while still under the lock, so a
                        // reconnect retransmission of the same id racing
                        // in on ANOTHER connection reads InProgress —
                        // never a second Fresh.
                        let decision = server.lock().replies.begin(nonce, seq);
                        match decision {
                            ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                                nonce,
                                seq,
                                frame: Box::new(cached),
                            }),
                            ReplyDecision::Evicted => Some(Frame::ReplyCached {
                                nonce,
                                seq,
                                frame: Box::new(crate::reliable::evicted_reply()),
                            }),
                            ReplyDecision::InProgress => None,
                            ReplyDecision::Fresh => {
                                let reply = crate::warm::server_handle_warm_call_shared(
                                    server, warm, transport, &service, &method, mode, cache_id,
                                    generation, &payload,
                                );
                                server.lock().replies.store(nonce, seq, &reply);
                                Some(Frame::Tagged {
                                    nonce,
                                    seq,
                                    frame: Box::new(reply),
                                })
                            }
                        }
                    }
                    inner => {
                        // Cold calls: one guard spans decide + execute +
                        // store, so two connections retrying the same id
                        // can never both execute it.
                        let mut guard = server.lock();
                        match guard.replies.begin(nonce, seq) {
                            ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                                nonce,
                                seq,
                                frame: Box::new(cached),
                            }),
                            ReplyDecision::Evicted => Some(Frame::ReplyCached {
                                nonce,
                                seq,
                                frame: Box::new(crate::reliable::evicted_reply()),
                            }),
                            ReplyDecision::InProgress => None,
                            ReplyDecision::Fresh => {
                                let reply = dispatch_tagged(&mut guard, warm, transport, inner);
                                guard.replies.store(nonce, seq, &reply);
                                Some(Frame::Tagged {
                                    nonce,
                                    seq,
                                    frame: Box::new(reply),
                                })
                            }
                        }
                    }
                };
                // An in-progress duplicate gets no reply at all: the
                // client's next retransmission (after the original
                // execution stores) is answered from the cache.
                if let Some(reply) = reply {
                    transport.send(&reply)?;
                }
            }
            other => {
                return Err(NrmiError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}

/// Serves one connection until the peer disconnects or sends `Shutdown`.
/// This is the server's main loop (one per connection; the paper's
/// servers are single-threaded per client, multi-threaded across
/// clients).
///
/// # Errors
/// Returns transport errors other than orderly disconnect.
pub fn serve_connection(
    server: &mut ServerNode,
    transport: &mut dyn Transport,
) -> Result<(), NrmiError> {
    let mut warm = crate::warm::WarmCaches::with_leases(server.leases.clone());
    let result = serve_connection_inner(server, transport, &mut warm);
    // Connection teardown (orderly or not) releases the cached session
    // graphs — the warm analogue of DGC cleaning a disconnected client.
    warm.release_all(&mut server.state.heap);
    result
}

fn serve_connection_inner(
    server: &mut ServerNode,
    transport: &mut dyn Transport,
    warm: &mut crate::warm::WarmCaches,
) -> Result<(), NrmiError> {
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(TransportError::Disconnected) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match frame {
            Frame::Shutdown => return Ok(()),
            // One dispatcher for warm calls and evictions, shared with
            // every other serve loop. On a single-connection node the
            // pushes repair sessions this connection's own calls staled
            // through aliased server state (`serve_class` methods,
            // exported-object calls touching a cached graph).
            frame @ (Frame::CallRequestWarm { .. } | Frame::CacheEvict { .. }) => {
                let out = crate::warm::dispatch_warm_frame(server, warm, transport, frame, true);
                for reply in out {
                    transport.send(&reply)?;
                }
            }
            Frame::Lookup { name } => {
                let found = server.is_bound(&name);
                transport.send(&Frame::LookupReply { found })?;
            }
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                let reply = server_handle_call(
                    server,
                    transport,
                    &method,
                    Callee::Named(&service),
                    mode,
                    &payload,
                );
                transport.send(&reply)?;
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                let reply = server_handle_call(
                    server,
                    transport,
                    &method,
                    Callee::Exported(key),
                    mode,
                    &payload,
                );
                transport.send(&reply)?;
            }
            Frame::DgcClean { key } => {
                server.state.exports.clean(key);
            }
            Frame::Tagged { nonce, seq, frame } => {
                use crate::reliable::ReplyDecision;
                let reply = match server.replies.begin(nonce, seq) {
                    ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(cached),
                    }),
                    ReplyDecision::Evicted => Some(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(crate::reliable::evicted_reply()),
                    }),
                    // Unreachable on a single-threaded node (begin and
                    // store never straddle a frame); drop for safety.
                    ReplyDecision::InProgress => None,
                    ReplyDecision::Fresh => {
                        let reply = dispatch_tagged(server, warm, transport, *frame);
                        server.replies.store(nonce, seq, &reply);
                        Some(Frame::Tagged {
                            nonce,
                            seq,
                            frame: Box::new(reply),
                        })
                    }
                };
                if let Some(reply) = reply {
                    transport.send(&reply)?;
                }
            }
            other => {
                // Callbacks addressed at the server's exports (a client
                // holding stubs to server objects between calls is not
                // part of this protocol version).
                return Err(NrmiError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}
