//! Warm-call sessions: request deltas over a cached argument graph.
//!
//! The delta-reply optimization (§5.2.4) stops the *server* from
//! re-shipping unchanged state; this module stops the *client* too. A
//! warm session keeps the marshalled argument graph alive on the server
//! between calls. The first call through [`client_invoke_warm_with_stats`]
//! **seeds** the cache with an ordinary full graph (byte-identical to a
//! cold `copy_restore_delta` request); every later call ships only a
//! request delta — the synchronized objects the client freed or mutated
//! since the last reply, plus any newly reachable objects — and receives
//! the usual reply delta back.
//!
//! ## The handshake
//!
//! Each session cache is named by a client-allocated `cache_id` and a
//! `generation` counter that both sides advance in lockstep (one per
//! completed call). A warm request whose `(cache_id, generation)` the
//! server cannot honor — evicted, never seeded, out of step, or
//! invalidated — answers [`Frame::CacheMiss`] and the client falls back
//! to reseeding under a fresh id. Nothing is ever half-applied: the
//! server answers `CacheMiss` *before* touching the cached graph.
//!
//! ## Coherence
//!
//! The cached server graph may be reachable from server state (the
//! service can store references to it). Before trusting the cache, the
//! server verifies that every synchronized object still exists and has
//! not been mutated since the entry was last validated, using the heap's
//! monotone mutation [`epoch`](nrmi_heap::Heap::epoch): any out-of-band
//! write — another connection, a `serve_class` method, a direct call on
//! an exported object — stamps the touched objects above the entry's
//! `valid_since` watermark and forces a `CacheMiss` instead of a stale
//! read. An entry invalidated this way is dropped but **not** freed (the
//! mutation proves server state aliases it); an orderly eviction
//! ([`Frame::CacheEvict`], connection shutdown) frees the cached graph.

use std::collections::HashMap;

use nrmi_heap::{ClassId, DensePositionMap, Heap, LinearMap, ObjId, Value};
use nrmi_transport::{Frame, Transport};
use nrmi_wire::{
    apply_delta, apply_request_delta, deserialize_graph_with, next_sync, GraphSnapshot,
};

use crate::error::NrmiError;
use crate::node::{ClientNode, NodeHooks, NodeState, ServerNode};
use crate::protocol::{client_invoke_with_stats, restore_roots_of, CallStats};
use crate::proxy::{handle_callback, RemoteHeapProxy};
use crate::restore::apply_restore;
use crate::semantics::CallOptions;

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// One client-side warm cache: the session state for repeated calls to a
/// single service.
#[derive(Clone, Debug)]
struct ClientWarmCache {
    cache_id: u64,
    /// Generation the NEXT call will carry (1 right after seeding).
    generation: u64,
    /// Synchronized objects in protocol order, with the class each had
    /// when it entered the list. A position whose object is gone — or
    /// whose slot was recycled for a different class — counts as freed.
    sync: Vec<(ObjId, ClassId)>,
    /// Heap epoch right after the previous reply was applied; objects
    /// stamped above it are dirty.
    last_epoch: u64,
}

/// The client's warm caches, one per service name.
#[derive(Debug, Default)]
pub struct WarmSessions {
    caches: HashMap<String, ClientWarmCache>,
    next_cache_id: u64,
}

impl WarmSessions {
    /// Creates an empty cache set.
    pub fn new() -> Self {
        WarmSessions::default()
    }

    /// The generation the next warm call to `service` will carry, or
    /// `None` if no cache is established (the next call seeds).
    pub fn generation(&self, service: &str) -> Option<u64> {
        self.caches.get(service).map(|c| c.generation)
    }

    /// Number of objects currently synchronized with `service`.
    pub fn sync_len(&self, service: &str) -> Option<usize> {
        self.caches.get(service).map(|c| c.sync.len())
    }

    /// The wire `cache_id` naming the session with `service`, if one is
    /// established. Exposed for protocol introspection and checking.
    pub fn cache_id(&self, service: &str) -> Option<u64> {
        self.caches.get(service).map(|c| c.cache_id)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_cache_id;
        self.next_cache_id += 1;
        id
    }
}

/// Builds the `(id, class)` sync records for `ids` from the live heap.
fn record_classes(heap: &Heap, ids: &[ObjId]) -> Result<Vec<(ObjId, ClassId)>, NrmiError> {
    ids.iter()
        .map(|&id| Ok((id, heap.get(id)?.class())))
        .collect()
}

/// Receives frames until the call resolves, serving remote-pointer
/// callbacks in the meantime (the same loop the cold path runs).
fn recv_call_outcome(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    stats: &mut CallStats,
) -> Result<WarmOutcome, NrmiError> {
    loop {
        let frame = transport.recv()?;
        match frame {
            Frame::CallReply { payload } => return Ok(WarmOutcome::Reply(payload)),
            Frame::CacheMiss => return Ok(WarmOutcome::Miss),
            Frame::CallError { message } => return Ok(WarmOutcome::Error(message)),
            other => match handle_callback(&mut client.state, &other) {
                Some(reply) => {
                    stats.callbacks_served += 1;
                    transport.send(&reply)?;
                }
                None => {
                    return Err(NrmiError::Protocol(format!(
                        "unexpected frame while awaiting warm reply: {other:?}"
                    )))
                }
            },
        }
    }
}

enum WarmOutcome {
    Reply(Vec<u8>),
    Miss,
    Error(String),
}

/// Invokes `service.method(args)` through the warm-call protocol,
/// returning the result and per-call statistics. Seeds the session cache
/// on first use (or after any miss/error); ships a request delta
/// otherwise. Falls back to an ordinary cold call when the argument
/// graph cannot travel as a delta (e.g. it contains remote stubs).
///
/// Semantics are exactly [`CallOptions::copy_restore_delta`] — full
/// copy-restore with delta replies; the cold seed payload is
/// byte-identical to the cold path's request.
///
/// # Errors
/// Marshalling, transport, protocol, and remote-exception failures. On
/// any error the session cache is dropped, so the next call reseeds.
pub fn client_invoke_warm_with_stats(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
) -> Result<(Value, CallStats), NrmiError> {
    if client.warm.caches.contains_key(service) {
        // A `None` here is a cache miss: the entry is gone; reseed below.
        if let Some(result) = warm_call(client, transport, service, method, args)? {
            return Ok(result);
        }
    }
    seed_call(client, transport, service, method, args)
}

/// Generation ≥ 1: ship a request delta. Returns `None` on a cache miss
/// (caller reseeds); `Some` on completion.
fn warm_call(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
) -> Result<Option<(Value, CallStats)>, NrmiError> {
    let opts = CallOptions::copy_restore_delta();
    let mut stats = CallStats::default();
    let ClientNode { state, warm } = client;
    let cache = warm.caches.get(service).expect("checked by caller");
    let (cache_id, generation, last_epoch) = (cache.cache_id, cache.generation, cache.last_epoch);
    let cost = state.profile.cost();

    // Classify every synchronized position: freed (gone, or its slot
    // recycled for a different class) or dirty (mutated since the last
    // reply was applied). The sync list is read in place — the cache
    // borrow and the heap borrow are disjoint fields of the client.
    let heap = &state.heap;
    let mut sync_ids = Vec::with_capacity(cache.sync.len());
    let mut freed = Vec::new();
    let mut dirty = Vec::new();
    for (pos, &(id, class)) in cache.sync.iter().enumerate() {
        sync_ids.push(id);
        // Probe accessors, not `get`: a cached handle may legitimately be
        // stale (freed, or its slot recycled), and under the `sanitize`
        // feature dereferencing such a handle is a trap — classifying it
        // as freed is exactly the non-dereferencing probe we want.
        match heap.class_if_live(id) {
            Some(live_class) if live_class == class => {
                if heap.version_if_live(id).unwrap_or(u64::MAX) > last_epoch {
                    dirty.push(pos as u32);
                }
            }
            _ => freed.push(pos as u32),
        }
    }

    let encoded = {
        let NodeState { heap, codec, .. } = &mut *state;
        codec.encode_request_delta(heap, &sync_ids, &freed, &dirty, args)
    };
    let enc = match encoded {
        Ok(enc) => enc,
        Err(nrmi_wire::WireError::NotSerializable { .. })
        | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
            // The graph now contains objects a delta cannot carry (e.g.
            // remote stubs). Retire the session and run the call cold.
            client_evict_warm(client, transport, service)?;
            return client_invoke_with_stats(client, transport, service, method, args, opts)
                .map(Some);
        }
        Err(e) => return Err(e.into()),
    };
    stats.request_objects = enc.stats.new_count + enc.stats.dirty_count;
    stats.request_bytes = enc.bytes.len();
    client.state.charge_cpu(
        cost.call_overhead_us
            + (enc.stats.new_count + enc.stats.dirty_count) as f64 * cost.ser_per_obj_us
            + enc.bytes.len() as f64 * cost.per_byte_us,
    );

    transport.send(&Frame::CallRequestWarm {
        service: service.to_owned(),
        method: method.to_owned(),
        mode: opts.to_wire(),
        cache_id,
        generation,
        payload: enc.bytes,
    })?;

    let payload = match recv_call_outcome(client, transport, &mut stats)? {
        WarmOutcome::Reply(payload) => payload,
        WarmOutcome::Miss => {
            client.warm.caches.remove(service);
            return Ok(None);
        }
        WarmOutcome::Error(message) => {
            client.warm.caches.remove(service);
            return Err(NrmiError::Remote(message));
        }
    };
    stats.reply_bytes = payload.len();

    // Both sides advanced their sync lists identically across the
    // request delta; the reply is relative to that advanced list.
    let sync2 = next_sync(&sync_ids, &enc.freed_positions, &enc.new_objects);

    if payload.starts_with(&nrmi_wire::delta::DELTA_MAGIC) {
        let applied = apply_delta(&payload, &mut client.state.heap, &sync2)?;
        stats.restored_objects = applied.changed_count;
        stats.new_objects = applied.new_objects.len();
        client.state.charge_cpu(
            payload.len() as f64 * cost.per_byte_us
                + applied.changed_count as f64 * (cost.de_per_obj_us + cost.restore_per_obj_us)
                + applied.new_objects.len() as f64 * cost.de_per_obj_us,
        );
        let ret = applied
            .roots
            .first()
            .cloned()
            .ok_or_else(|| NrmiError::Protocol("empty warm delta reply".into()))?;
        let mut sync3 = sync2;
        sync3.extend_from_slice(&applied.new_objects);
        let sync = record_classes(&client.state.heap, &sync3)?;
        let cache = client.warm.caches.get_mut(service).expect("still present");
        cache.generation += 1;
        cache.sync = sync;
        cache.last_epoch = client.state.heap.epoch();
        return Ok(Some((ret, stats)));
    }

    // The server fell back to a full annotated reply (and dropped its
    // cache entry): restore through the advanced sync order, then retire
    // the session so the next call reseeds.
    client.warm.caches.remove(service);
    let state = &mut client.state;
    let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
    let decoded = deserialize_graph_with(&payload, &mut state.heap, &mut hooks)?;
    stats.reply_objects = decoded.object_count();
    let outcome = apply_restore(&mut state.heap, &LinearMap::from_order(sync2), &decoded)?;
    stats.restored_objects = outcome.stats.old_objects;
    stats.new_objects = outcome.stats.new_objects;
    let ret = outcome
        .roots
        .first()
        .cloned()
        .ok_or_else(|| NrmiError::Protocol("empty warm reply".into()))?;
    Ok(Some((ret, stats)))
}

/// Generation 0: seed the cache with a full graph. The request payload
/// is byte-identical to a cold `copy_restore_delta` request.
fn seed_call(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
) -> Result<(Value, CallStats), NrmiError> {
    let opts = CallOptions::copy_restore_delta();
    let mut stats = CallStats::default();
    let cost = client.state.profile.cost();
    let cache_id = client.warm.fresh_id();

    let state = &mut client.state;
    let registry = state.heap.registry_handle().clone();
    let restore_roots = restore_roots_of(&registry, &state.heap, opts, args)?;
    let client_map = LinearMap::build(&state.heap, &restore_roots)?;
    let NodeState {
        heap,
        exports,
        stubs,
        codec,
        ..
    } = &mut *state;
    let mut hooks = NodeHooks::new(exports, stubs);
    let enc = codec.encode_graph(heap, args, None, Some(&mut hooks))?;
    stats.request_objects = enc.object_count();
    stats.request_bytes = enc.byte_len();
    state.charge_cpu(
        cost.call_overhead_us
            + enc.object_count() as f64 * cost.ser_per_obj_us
            + enc.byte_len() as f64 * cost.per_byte_us
            + client_map.len() as f64 * cost.linear_map_per_obj_us,
    );

    transport.send(&Frame::CallRequestWarm {
        service: service.to_owned(),
        method: method.to_owned(),
        mode: opts.to_wire(),
        cache_id,
        generation: 0,
        payload: enc.bytes,
    })?;

    let payload = match recv_call_outcome(client, transport, &mut stats)? {
        WarmOutcome::Reply(payload) => payload,
        WarmOutcome::Miss => {
            return Err(NrmiError::Protocol(
                "cache miss answering a seed call".into(),
            ))
        }
        WarmOutcome::Error(message) => return Err(NrmiError::Remote(message)),
    };
    stats.reply_bytes = payload.len();

    if payload.starts_with(&nrmi_wire::delta::DELTA_MAGIC) {
        let applied = apply_delta(&payload, &mut client.state.heap, client_map.order())?;
        stats.restored_objects = applied.changed_count;
        stats.new_objects = applied.new_objects.len();
        client.state.charge_cpu(
            payload.len() as f64 * cost.per_byte_us
                + applied.changed_count as f64 * (cost.de_per_obj_us + cost.restore_per_obj_us)
                + applied.new_objects.len() as f64 * cost.de_per_obj_us,
        );
        let ret = applied
            .roots
            .first()
            .cloned()
            .ok_or_else(|| NrmiError::Protocol("empty seed delta reply".into()))?;
        let mut sync_ids = client_map.order().to_vec();
        sync_ids.extend_from_slice(&applied.new_objects);
        let sync = record_classes(&client.state.heap, &sync_ids)?;
        client.warm.caches.insert(
            service.to_owned(),
            ClientWarmCache {
                cache_id,
                generation: 1,
                sync,
                last_epoch: client.state.heap.epoch(),
            },
        );
        return Ok((ret, stats));
    }

    // Full reply: the server could not encode a delta and established no
    // cache. Restore like a cold call; next invocation seeds again.
    let state = &mut client.state;
    let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
    let decoded = deserialize_graph_with(&payload, &mut state.heap, &mut hooks)?;
    stats.reply_objects = decoded.object_count();
    let outcome = apply_restore(&mut state.heap, &client_map, &decoded)?;
    stats.restored_objects = outcome.stats.old_objects;
    stats.new_objects = outcome.stats.new_objects;
    let ret = outcome
        .roots
        .first()
        .cloned()
        .ok_or_else(|| NrmiError::Protocol("empty seed reply".into()))?;
    Ok((ret, stats))
}

/// Drops the client's warm cache for `service` (if any) and tells the
/// server to free its cached graph.
///
/// # Errors
/// Transport failures sending the eviction notice.
pub fn client_evict_warm(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
) -> Result<(), NrmiError> {
    if let Some(cache) = client.warm.caches.remove(service) {
        transport.send(&Frame::CacheEvict {
            cache_id: cache.cache_id,
        })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// One server-side cache entry: the synchronized graph for a warm
/// session.
#[derive(Clone, Debug)]
struct ServerWarmEntry {
    generation: u64,
    sync: Vec<ObjId>,
    /// Heap epoch when the entry was last (re)validated; a synchronized
    /// object stamped above this has been mutated out-of-band.
    valid_since: u64,
    /// Pooled pre-call snapshot storage, recaptured per warm call so the
    /// per-object slot buffers are reused instead of reallocated.
    snapshot: GraphSnapshot,
}

/// The warm caches of one server connection. Each connection owns its
/// own set (created by the serve loop), so concurrent clients are
/// isolated by construction — and a client can only ever address caches
/// it seeded itself.
#[derive(Debug, Default)]
pub struct WarmCaches {
    entries: HashMap<u64, ServerWarmEntry>,
}

impl WarmCaches {
    /// Creates an empty cache set.
    pub fn new() -> Self {
        WarmCaches::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no session is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The generation the server will accept next for `cache_id`, if the
    /// session is cached. Exposed so protocol checkers can assert the
    /// client/server generation lockstep invariant.
    pub fn generation_of(&self, cache_id: u64) -> Option<u64> {
        self.entries.get(&cache_id).map(|e| e.generation)
    }

    /// Handles a client eviction notice: frees the cached graph. The
    /// notice asserts the client's exclusive ownership of the session
    /// graph (the warm twin of a DGC clean), so freeing is safe; slots
    /// already freed or never seeded are ignored.
    pub fn evict(&mut self, heap: &mut Heap, cache_id: u64) {
        if let Some(entry) = self.entries.remove(&cache_id) {
            // All-or-nothing: free the graph only if every synchronized
            // slot still holds the object the session left there,
            // untouched since `valid_since`. Any out-of-band activity —
            // a mutation (server state aliases the graph), a free, or a
            // free-then-recycle (the slot now holds an innocent object,
            // which a blind free would destroy and the sanitize feature
            // traps as NRMI-Z001) — means partial freeing would leave
            // the surviving objects dangling at their freed neighbors,
            // so the entry is dropped unfreed instead, exactly like a
            // coherence invalidation. Recycled slots always fail the
            // watermark test because the epoch is monotone: whatever
            // occupies them was allocated after the entry was validated.
            if coherent(heap, &entry) {
                for id in entry.sync {
                    let _ = heap.free(id);
                }
            }
        }
    }

    /// Frees every cached graph (connection teardown).
    pub fn release_all(&mut self, heap: &mut Heap) {
        let ids: Vec<u64> = self.entries.keys().copied().collect();
        for id in ids {
            self.evict(heap, id);
        }
    }
}

/// True if every synchronized object still exists untouched since the
/// entry was validated.
fn coherent(heap: &Heap, entry: &ServerWarmEntry) -> bool {
    // Probe, don't dereference: the whole point is that these handles may
    // have gone stale behind the cache's back.
    entry.sync.iter().all(|&id| {
        heap.version_if_live(id)
            .is_some_and(|v| v <= entry.valid_since)
    })
}

/// Handles one `CallRequestWarm` frame on the server. Returns the frame
/// to send back: `CallReply`, `CacheMiss`, or `CallError`.
#[allow(clippy::too_many_arguments)]
pub fn server_handle_warm_call(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    cache_id: u64,
    generation: u64,
    payload: &[u8],
) -> Frame {
    let result = if generation == 0 {
        server_seed_call(
            server, caches, transport, service, method, mode_byte, cache_id, payload,
        )
    } else {
        // Take the entry out up front: every non-success path below must
        // leave it dropped (the client drops its side symmetrically), and
        // only a completed call re-inserts the advanced entry.
        let Some(entry) = caches.entries.remove(&cache_id) else {
            return Frame::CacheMiss;
        };
        if entry.generation != generation {
            return Frame::CacheMiss;
        }
        if !coherent(&server.state.heap, &entry) {
            // Out-of-band mutation: the graph is aliased by server state,
            // so drop without freeing.
            return Frame::CacheMiss;
        }
        server_warm_call(
            server, caches, transport, service, method, cache_id, entry, payload,
        )
    };
    match result {
        Ok(frame) => frame,
        Err(NrmiError::Remote(message)) => Frame::CallError { message },
        Err(e) => Frame::CallError {
            message: e.to_string(),
        },
    }
}

/// Seeds a session: full-graph request, delta reply, cache established.
#[allow(clippy::too_many_arguments)]
fn server_seed_call(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    cache_id: u64,
    payload: &[u8],
) -> Result<Frame, NrmiError> {
    let opts = CallOptions::from_wire(mode_byte)?;
    let ServerNode {
        state,
        services,
        class_services: _,
        replies: _,
    } = server;
    let cost = state.profile.cost();
    let registry = state.heap.registry_handle().clone();
    let svc = services
        .get_mut(service)
        .ok_or_else(|| NrmiError::NoSuchService(service.to_owned()))?;

    let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
    let decoded = deserialize_graph_with(payload, &mut state.heap, &mut hooks)?;
    state.charge_cpu(
        cost.dispatch_overhead_us
            + decoded.object_count() as f64 * cost.de_per_obj_us
            + payload.len() as f64 * cost.per_byte_us,
    );
    let args = decoded.roots.clone();
    let restore_roots = restore_roots_of(&registry, &state.heap, opts, &args)?;
    let server_map = LinearMap::build(&state.heap, &restore_roots)?;
    let snapshot = GraphSnapshot::capture(&state.heap, server_map.order())?;

    let ret = {
        let mut proxy = RemoteHeapProxy::new(state, transport);
        svc.invoke(method, &args, &mut proxy)?
    };

    let outcome = {
        let NodeState { heap, codec, .. } = &mut *state;
        codec.encode_reply_delta(heap, &snapshot, std::slice::from_ref(&ret))
    };
    match outcome {
        Ok(delta) => {
            state.charge_cpu(
                (delta.stats.changed_count + delta.stats.new_count) as f64 * cost.ser_per_obj_us
                    + delta.bytes.len() as f64 * cost.per_byte_us,
            );
            let mut sync = server_map.order().to_vec();
            sync.extend_from_slice(&delta.new_objects);
            caches.entries.insert(
                cache_id,
                ServerWarmEntry {
                    generation: 1,
                    sync,
                    valid_since: state.heap.epoch(),
                    // The seed's snapshot storage seeds the entry's pool.
                    snapshot,
                },
            );
            Ok(Frame::CallReply {
                payload: delta.bytes,
            })
        }
        Err(nrmi_wire::WireError::NotSerializable { .. })
        | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
            // Cannot delta-encode the result graph: answer a full
            // annotated reply and establish no cache.
            full_reply_fallback(state, server_map.order(), ret)
        }
        Err(e) => Err(e.into()),
    }
}

/// A warm call proper: apply the request delta to the cached graph, run
/// the method, reply with a delta, advance the entry.
#[allow(clippy::too_many_arguments)]
fn server_warm_call(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    cache_id: u64,
    mut entry: ServerWarmEntry,
    payload: &[u8],
) -> Result<Frame, NrmiError> {
    let ServerNode {
        state,
        services,
        class_services: _,
        replies: _,
    } = server;
    let cost = state.profile.cost();
    let svc = services
        .get_mut(service)
        .ok_or_else(|| NrmiError::NoSuchService(service.to_owned()))?;

    let applied = apply_request_delta(payload, &mut state.heap, &entry.sync)?;
    state.charge_cpu(
        cost.dispatch_overhead_us
            + (applied.changed_count + applied.new_objects.len()) as f64 * cost.de_per_obj_us
            + payload.len() as f64 * cost.per_byte_us,
    );
    let sync2 = next_sync(&entry.sync, &applied.freed_positions, &applied.new_objects);
    // Recapture into the entry's pooled snapshot: in steady state this
    // reuses every per-object slot buffer from the previous call.
    entry.snapshot.recapture(&state.heap, &sync2)?;
    let args = applied.roots;

    let ret = {
        let mut proxy = RemoteHeapProxy::new(state, transport);
        svc.invoke(method, &args, &mut proxy)?
    };

    let outcome = {
        let NodeState { heap, codec, .. } = &mut *state;
        codec.encode_reply_delta(heap, &entry.snapshot, std::slice::from_ref(&ret))
    };
    match outcome {
        Ok(delta) => {
            state.charge_cpu(
                (delta.stats.changed_count + delta.stats.new_count) as f64 * cost.ser_per_obj_us
                    + delta.bytes.len() as f64 * cost.per_byte_us,
            );
            let mut sync = sync2;
            sync.extend_from_slice(&delta.new_objects);
            caches.entries.insert(
                cache_id,
                ServerWarmEntry {
                    generation: entry.generation + 1,
                    sync,
                    valid_since: state.heap.epoch(),
                    snapshot: entry.snapshot,
                },
            );
            Ok(Frame::CallReply {
                payload: delta.bytes,
            })
        }
        Err(nrmi_wire::WireError::NotSerializable { .. })
        | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
            // Fall back to a full annotated reply relative to the
            // advanced sync order; the entry stays dropped (the client
            // retires its side on seeing the full reply).
            full_reply_fallback(state, &sync2, ret)
        }
        Err(e) => Err(e.into()),
    }
}

/// Emits a full annotated reply (the cold copy-restore wire form) whose
/// old-index annotations are positions in `sync` — the receiver restores
/// through `LinearMap::from_order(sync)`.
fn full_reply_fallback(
    state: &mut NodeState,
    sync: &[ObjId],
    ret: Value,
) -> Result<Frame, NrmiError> {
    let cost = state.profile.cost();
    let mut old_index = DensePositionMap::new();
    for (i, &id) in sync.iter().enumerate() {
        old_index.insert(id, i as u32);
    }
    let mut reply_roots = vec![ret];
    reply_roots.extend(sync.iter().map(|&id| Value::Ref(id)));
    let NodeState {
        heap,
        exports,
        stubs,
        codec,
        ..
    } = &mut *state;
    let mut hooks = NodeHooks::new(exports, stubs);
    let enc = codec.encode_graph(heap, &reply_roots, Some(&old_index), Some(&mut hooks))?;
    state.charge_cpu(
        enc.object_count() as f64 * cost.ser_per_obj_us + enc.byte_len() as f64 * cost.per_byte_us,
    );
    Ok(Frame::CallReply { payload: enc.bytes })
}

/// Shared-server warm dispatch: locks the node per request, like
/// [`serve_connection_shared`](crate::protocol::serve_connection_shared)
/// does for cold calls. The caches stay per-connection even though the
/// node is shared.
#[allow(clippy::too_many_arguments)]
pub fn server_handle_warm_call_shared(
    server: &crate::lockcheck::TrackedMutex<ServerNode>,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    cache_id: u64,
    generation: u64,
    payload: &[u8],
) -> Frame {
    server_handle_warm_call(
        &mut server.lock(),
        caches,
        transport,
        service,
        method,
        mode_byte,
        cache_id,
        generation,
        payload,
    )
}
