//! Warm-call sessions: request deltas over a cached argument graph.
//!
//! The delta-reply optimization (§5.2.4) stops the *server* from
//! re-shipping unchanged state; this module stops the *client* too. A
//! warm session keeps the marshalled argument graph alive on the server
//! between calls. The first call through [`client_invoke_warm_with_stats`]
//! **seeds** the cache with an ordinary full graph (byte-identical to a
//! cold `copy_restore_delta` request); every later call ships only a
//! request delta — the synchronized objects the client freed or mutated
//! since the last reply, plus any newly reachable objects — and receives
//! the usual reply delta back.
//!
//! ## The handshake
//!
//! Each session cache is named by a client-allocated `cache_id` and a
//! `generation` counter that both sides advance in lockstep (one per
//! completed call). A warm request whose `(cache_id, generation)` the
//! server cannot honor — evicted, never seeded, out of step, or
//! invalidated beyond repair — answers [`Frame::CacheMiss`] and the
//! client falls back to reseeding under a fresh id. Nothing is ever
//! half-applied: the server answers `CacheMiss` *before* touching the
//! cached graph.
//!
//! ## Coherence
//!
//! The cached server graph may be reachable from server state (the
//! service can store references to it) and, on a shared node, from the
//! sessions of *other* connections. Each side therefore remembers a
//! **version vector**: the heap mutation [`version`](nrmi_heap::Object::version)
//! of every synchronized object at the moment the position was last
//! synchronized. Before trusting the cache, the server re-probes the
//! vector; out-of-band writes — another connection's call, a
//! `serve_class` method, a direct call on an exported object — show up
//! as positions stamped above their recorded version.
//!
//! A stale-but-live entry is no longer discarded: the server answers a
//! **targeted invalidation** ([`Frame::CacheStale`]) carrying a patch of
//! exactly the dirty positions, revalidates the entry in place (same
//! generation — no call executed), and the client re-issues the call
//! after applying the patch. Only when a synchronized object was freed
//! or its slot recycled (detected with the allocation stamp
//! [`born`](nrmi_heap::Object::born), which version numbers alone cannot)
//! does the session degrade to the legacy `CacheMiss` + cold reseed. An
//! entry dropped this way is **not** freed (the out-of-band activity
//! proves the graph is aliased); an orderly eviction
//! ([`Frame::CacheEvict`], connection shutdown) frees the cached graph —
//! but only the objects no *other* session still covers, per the node's
//! [`LeaseTable`].

use std::collections::HashMap;
use std::sync::Arc;

use nrmi_heap::{ClassId, DensePositionMap, Heap, LinearMap, ObjId, Value};
use nrmi_transport::{Frame, Transport};
use nrmi_wire::{
    apply_delta, apply_invalidation_filtered, apply_request_delta, deserialize_graph_with,
    encode_invalidation, next_sync, GraphSnapshot,
};

use crate::error::NrmiError;
use crate::lockcheck::TrackedMutex;
use crate::node::{ClientNode, NodeHooks, NodeState, ServerNode};
use crate::protocol::{client_invoke_with_stats, restore_roots_of, CallStats};
use crate::proxy::{handle_callback, RemoteHeapProxy};
use crate::restore::apply_restore;
use crate::semantics::CallOptions;

/// How many consecutive `CacheStale` revalidations one warm call absorbs
/// before giving up: a write-heavy peer that re-dirties the graph faster
/// than patches complete would otherwise starve the call forever. Past
/// the limit the client evicts and runs the call cold.
const MAX_STALE_RETRIES: usize = 3;

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// One position of a client sync list: the object, the class it had when
/// it entered the list (a recycled slot holding a different class counts
/// as freed), and its mutation version when the position was last
/// synchronized with the server. Per-position versions — not a single
/// epoch watermark — keep a coherence patch from echoing: objects a
/// patch just overwrote are re-recorded at their new versions, so the
/// next request delta does not ship the server's own writes back (which
/// would re-stale every other reader of the graph, forever).
#[derive(Clone, Copy, Debug)]
struct SyncRecord {
    id: ObjId,
    class: ClassId,
    version: u64,
}

/// One client-side warm cache: the session state for repeated calls to a
/// single service.
#[derive(Clone, Debug)]
struct ClientWarmCache {
    cache_id: u64,
    /// Generation the NEXT call will carry (1 right after seeding).
    generation: u64,
    /// Synchronized objects in protocol order.
    sync: Vec<SyncRecord>,
    /// Highest server revalidation version applied. A `CacheStale` patch
    /// can reach the client twice — pushed over the idle connection and
    /// again racing a reply — and applying twice would splice its new
    /// objects twice; the monotone version gate makes delivery
    /// idempotent.
    stale_version: u64,
}

/// The client's warm caches, one per service name.
#[derive(Debug, Default)]
pub struct WarmSessions {
    caches: HashMap<String, ClientWarmCache>,
    next_cache_id: u64,
}

impl WarmSessions {
    /// Creates an empty cache set.
    pub fn new() -> Self {
        WarmSessions::default()
    }

    /// The generation the next warm call to `service` will carry, or
    /// `None` if no cache is established (the next call seeds).
    pub fn generation(&self, service: &str) -> Option<u64> {
        self.caches.get(service).map(|c| c.generation)
    }

    /// Number of objects currently synchronized with `service`.
    pub fn sync_len(&self, service: &str) -> Option<usize> {
        self.caches.get(service).map(|c| c.sync.len())
    }

    /// The wire `cache_id` naming the session with `service`, if one is
    /// established. Exposed for protocol introspection and checking.
    pub fn cache_id(&self, service: &str) -> Option<u64> {
        self.caches.get(service).map(|c| c.cache_id)
    }

    /// The highest `CacheStale` revalidation version applied to the
    /// session with `service`. Exposed for protocol checking.
    pub fn stale_version(&self, service: &str) -> Option<u64> {
        self.caches.get(service).map(|c| c.stale_version)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_cache_id;
        self.next_cache_id += 1;
        id
    }
}

/// Builds sync records for `ids` from the live heap, recording each
/// object's class and current mutation version.
fn record_sync(heap: &Heap, ids: &[ObjId]) -> Result<Vec<SyncRecord>, NrmiError> {
    ids.iter()
        .map(|&id| {
            let obj = heap.get(id)?;
            Ok(SyncRecord {
                id,
                class: obj.class(),
                version: obj.version(),
            })
        })
        .collect()
}

/// Applies a `CacheStale` coherence patch to the session named by
/// `cache_id`. Returns `true` if the patch was applied; `false` if it
/// was a duplicate (version already seen), addressed an unknown session
/// (evicted locally while the push was in flight — harmless), or failed
/// to apply — in which case the session is retired so the next call
/// reseeds cold rather than computing deltas against a torn graph.
pub(crate) fn client_apply_stale(
    client: &mut ClientNode,
    cache_id: u64,
    version: u64,
    payload: &[u8],
) -> bool {
    let Some(service) = client
        .warm
        .caches
        .iter()
        .find(|(_, c)| c.cache_id == cache_id)
        .map(|(s, _)| s.clone())
    else {
        return false;
    };
    let ClientNode { state, warm } = client;
    let cache = warm.caches.get_mut(&service).expect("found above");
    if version <= cache.stale_version {
        return false;
    }
    let sync_ids: Vec<ObjId> = cache.sync.iter().map(|r| r.id).collect();
    // Merge rule, client half: a pushed patch can race local writes the
    // client has not shipped yet. Positions the client has dirtied —
    // or freed — locally since the last sync keep the client's state
    // (they are still classified dirty, ship with the next request
    // delta, and win on the server); only untouched positions take the
    // server's slots.
    let keep_local: Vec<bool> = cache
        .sync
        .iter()
        .map(|rec| {
            match (
                state.heap.class_if_live(rec.id),
                state.heap.version_if_live(rec.id),
            ) {
                (Some(class), Some(v)) => class != rec.class || v > rec.version,
                _ => true, // freed (or recycled) locally: the free wins
            }
        })
        .collect();
    match apply_invalidation_filtered(payload, &mut state.heap, &sync_ids, &mut |pos| {
        !keep_local[pos as usize]
    }) {
        Ok(applied) => {
            // Re-record the patched positions at their post-patch
            // versions: the server's writes must not classify as OUR
            // dirty state on the next request delta (see [`SyncRecord`]).
            for &pos in &applied.dirty_positions {
                let rec = &mut cache.sync[pos as usize];
                if let Some(v) = state.heap.version_if_live(rec.id) {
                    rec.version = v;
                }
            }
            for &id in &applied.new_objects {
                match state.heap.get(id) {
                    Ok(obj) => cache.sync.push(SyncRecord {
                        id,
                        class: obj.class(),
                        version: obj.version(),
                    }),
                    Err(_) => {
                        warm.caches.remove(&service);
                        return false;
                    }
                }
            }
            cache.stale_version = version;
            true
        }
        Err(_) => {
            warm.caches.remove(&service);
            false
        }
    }
}

/// Receives frames until the call resolves, serving remote-pointer
/// callbacks in the meantime (the same loop the cold path runs).
/// `for_cache` is the in-flight session: a `CacheStale` addressed to it
/// resolves the call; one addressed to any OTHER session is a pushed
/// invalidation for an idle session, applied on the spot.
fn recv_call_outcome(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    stats: &mut CallStats,
    for_cache: u64,
) -> Result<WarmOutcome, NrmiError> {
    loop {
        let frame = transport.recv()?;
        match frame {
            Frame::CallReply { payload } => return Ok(WarmOutcome::Reply(payload)),
            Frame::CacheMiss => return Ok(WarmOutcome::Miss),
            Frame::CacheStale {
                cache_id,
                version,
                payload,
            } => {
                if cache_id == for_cache {
                    return Ok(WarmOutcome::Stale { version, payload });
                }
                stats.reply_bytes += payload.len();
                if client_apply_stale(client, cache_id, version, &payload) {
                    stats.stale_patches += 1;
                }
            }
            Frame::CallError { message } => return Ok(WarmOutcome::Error(message)),
            other => match handle_callback(&mut client.state, &other) {
                Some(reply) => {
                    stats.callbacks_served += 1;
                    transport.send(&reply)?;
                }
                None => {
                    return Err(NrmiError::Protocol(format!(
                        "unexpected frame while awaiting warm reply: {other:?}"
                    )))
                }
            },
        }
    }
}

enum WarmOutcome {
    Reply(Vec<u8>),
    Miss,
    Stale { version: u64, payload: Vec<u8> },
    Error(String),
}

/// Invokes `service.method(args)` through the warm-call protocol,
/// returning the result and per-call statistics. Seeds the session cache
/// on first use (or after any miss/error); ships a request delta
/// otherwise. Falls back to an ordinary cold call when the argument
/// graph cannot travel as a delta (e.g. it contains remote stubs).
///
/// Semantics are exactly [`CallOptions::copy_restore_delta`] — full
/// copy-restore with delta replies; the cold seed payload is
/// byte-identical to the cold path's request.
///
/// # Errors
/// Marshalling, transport, protocol, and remote-exception failures. On
/// any error the session cache is dropped, so the next call reseeds.
pub fn client_invoke_warm_with_stats(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
) -> Result<(Value, CallStats), NrmiError> {
    if client.warm.caches.contains_key(service) {
        // A `None` here is a cache miss: the entry is gone; reseed below.
        if let Some(result) = warm_call(client, transport, service, method, args)? {
            return Ok(result);
        }
    }
    seed_call(client, transport, service, method, args)
}

/// Generation ≥ 1: ship a request delta. Returns `None` on a cache miss
/// (caller reseeds); `Some` on completion. A `CacheStale` answer applies
/// the server's coherence patch and re-issues the call at the same
/// generation, up to [`MAX_STALE_RETRIES`] times.
fn warm_call(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
) -> Result<Option<(Value, CallStats)>, NrmiError> {
    let opts = CallOptions::copy_restore_delta();
    let mut stats = CallStats::default();
    for _attempt in 0..=MAX_STALE_RETRIES {
        let ClientNode { state, warm } = &mut *client;
        let Some(cache) = warm.caches.get(service) else {
            // A pushed patch failed to apply while this call waited and
            // retired the session under us: reseed.
            return Ok(None);
        };
        let (cache_id, generation) = (cache.cache_id, cache.generation);
        let cost = state.profile.cost();

        // Classify every synchronized position: freed (gone, or its slot
        // recycled for a different class) or dirty (mutated since the
        // position was last synchronized). The sync list is read in
        // place — the cache borrow and the heap borrow are disjoint
        // fields of the client.
        let heap = &state.heap;
        let mut sync_ids = Vec::with_capacity(cache.sync.len());
        let mut freed = Vec::new();
        let mut dirty = Vec::new();
        for (pos, rec) in cache.sync.iter().enumerate() {
            sync_ids.push(rec.id);
            // Probe accessors, not `get`: a cached handle may
            // legitimately be stale (freed, or its slot recycled), and
            // under the `sanitize` feature dereferencing such a handle is
            // a trap — classifying it as freed is exactly the
            // non-dereferencing probe we want.
            match heap.class_if_live(rec.id) {
                Some(live_class) if live_class == rec.class => {
                    if heap.version_if_live(rec.id).unwrap_or(u64::MAX) > rec.version {
                        dirty.push(pos as u32);
                    }
                }
                _ => freed.push(pos as u32),
            }
        }

        let encoded = {
            let NodeState { heap, codec, .. } = &mut *state;
            codec.encode_request_delta(heap, &sync_ids, &freed, &dirty, args)
        };
        let enc = match encoded {
            Ok(enc) => enc,
            Err(nrmi_wire::WireError::NotSerializable { .. })
            | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
                // The graph now contains objects a delta cannot carry
                // (e.g. remote stubs). Retire the session and run cold.
                client_evict_warm(client, transport, service)?;
                return client_invoke_with_stats(client, transport, service, method, args, opts)
                    .map(Some);
            }
            Err(e) => return Err(e.into()),
        };
        stats.request_objects += enc.stats.new_count + enc.stats.dirty_count;
        stats.request_bytes += enc.bytes.len();
        client.state.charge_cpu(
            cost.call_overhead_us
                + (enc.stats.new_count + enc.stats.dirty_count) as f64 * cost.ser_per_obj_us
                + enc.bytes.len() as f64 * cost.per_byte_us,
        );

        transport.send(&Frame::CallRequestWarm {
            service: service.to_owned(),
            method: method.to_owned(),
            mode: opts.to_wire(),
            cache_id,
            generation,
            payload: enc.bytes,
        })?;

        let payload = match recv_call_outcome(client, transport, &mut stats, cache_id)? {
            WarmOutcome::Reply(payload) => payload,
            WarmOutcome::Miss => {
                client.warm.caches.remove(service);
                return Ok(None);
            }
            WarmOutcome::Error(message) => {
                client.warm.caches.remove(service);
                return Err(NrmiError::Remote(message));
            }
            WarmOutcome::Stale { version, payload } => {
                // The server repaired our stale view in place instead of
                // discarding the session: apply the patch and re-issue at
                // the SAME generation (no call executed server-side).
                stats.reply_bytes += payload.len();
                client.state.charge_cpu(payload.len() as f64 * cost.per_byte_us);
                if client_apply_stale(client, cache_id, version, &payload) {
                    stats.stale_patches += 1;
                }
                continue;
            }
        };
        stats.reply_bytes += payload.len();

        // Both sides advanced their sync lists identically across the
        // request delta; the reply is relative to that advanced list.
        let sync2 = next_sync(&sync_ids, &enc.freed_positions, &enc.new_objects);

        if payload.starts_with(&nrmi_wire::delta::DELTA_MAGIC) {
            let applied = apply_delta(&payload, &mut client.state.heap, &sync2)?;
            stats.restored_objects = applied.changed_count;
            stats.new_objects = applied.new_objects.len();
            client.state.charge_cpu(
                payload.len() as f64 * cost.per_byte_us
                    + applied.changed_count as f64 * (cost.de_per_obj_us + cost.restore_per_obj_us)
                    + applied.new_objects.len() as f64 * cost.de_per_obj_us,
            );
            let ret = applied
                .roots
                .first()
                .cloned()
                .ok_or_else(|| NrmiError::Protocol("empty warm delta reply".into()))?;
            let mut sync3 = sync2;
            sync3.extend_from_slice(&applied.new_objects);
            let sync = record_sync(&client.state.heap, &sync3)?;
            // A pushed patch may have retired the session while this
            // call was in flight; the call still completed.
            if let Some(cache) = client.warm.caches.get_mut(service) {
                cache.generation += 1;
                cache.sync = sync;
            }
            return Ok(Some((ret, stats)));
        }

        // The server fell back to a full annotated reply (and dropped
        // its cache entry): restore through the advanced sync order,
        // then retire the session so the next call reseeds.
        client.warm.caches.remove(service);
        let state = &mut client.state;
        let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
        let decoded = deserialize_graph_with(&payload, &mut state.heap, &mut hooks)?;
        stats.reply_objects = decoded.object_count();
        let outcome = apply_restore(&mut state.heap, &LinearMap::from_order(sync2), &decoded)?;
        stats.restored_objects = outcome.stats.old_objects;
        stats.new_objects = outcome.stats.new_objects;
        let ret = outcome
            .roots
            .first()
            .cloned()
            .ok_or_else(|| NrmiError::Protocol("empty warm reply".into()))?;
        return Ok(Some((ret, stats)));
    }
    // MAX_STALE_RETRIES consecutive patches without a completed call: a
    // write-heavy peer is outpacing the repairs. Evict and run this call
    // cold; the next call reseeds a fresh session.
    client_evict_warm(client, transport, service)?;
    client_invoke_with_stats(client, transport, service, method, args, opts).map(Some)
}

/// Generation 0: seed the cache with a full graph. The request payload
/// is byte-identical to a cold `copy_restore_delta` request.
fn seed_call(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    args: &[Value],
) -> Result<(Value, CallStats), NrmiError> {
    let opts = CallOptions::copy_restore_delta();
    let mut stats = CallStats::default();
    let cost = client.state.profile.cost();
    let cache_id = client.warm.fresh_id();

    let state = &mut client.state;
    let registry = state.heap.registry_handle().clone();
    let restore_roots = restore_roots_of(&registry, &state.heap, opts, args)?;
    let client_map = LinearMap::build(&state.heap, &restore_roots)?;
    let NodeState {
        heap,
        exports,
        stubs,
        codec,
        ..
    } = &mut *state;
    let mut hooks = NodeHooks::new(exports, stubs);
    let enc = codec.encode_graph(heap, args, None, Some(&mut hooks))?;
    stats.request_objects = enc.object_count();
    stats.request_bytes = enc.byte_len();
    state.charge_cpu(
        cost.call_overhead_us
            + enc.object_count() as f64 * cost.ser_per_obj_us
            + enc.byte_len() as f64 * cost.per_byte_us
            + client_map.len() as f64 * cost.linear_map_per_obj_us,
    );

    transport.send(&Frame::CallRequestWarm {
        service: service.to_owned(),
        method: method.to_owned(),
        mode: opts.to_wire(),
        cache_id,
        generation: 0,
        payload: enc.bytes,
    })?;

    let payload = match recv_call_outcome(client, transport, &mut stats, cache_id)? {
        WarmOutcome::Reply(payload) => payload,
        WarmOutcome::Miss => {
            return Err(NrmiError::Protocol(
                "cache miss answering a seed call".into(),
            ))
        }
        WarmOutcome::Stale { .. } => {
            return Err(NrmiError::Protocol(
                "cache-stale answering a seed call".into(),
            ))
        }
        WarmOutcome::Error(message) => return Err(NrmiError::Remote(message)),
    };
    stats.reply_bytes = payload.len();

    if payload.starts_with(&nrmi_wire::delta::DELTA_MAGIC) {
        let applied = apply_delta(&payload, &mut client.state.heap, client_map.order())?;
        stats.restored_objects = applied.changed_count;
        stats.new_objects = applied.new_objects.len();
        client.state.charge_cpu(
            payload.len() as f64 * cost.per_byte_us
                + applied.changed_count as f64 * (cost.de_per_obj_us + cost.restore_per_obj_us)
                + applied.new_objects.len() as f64 * cost.de_per_obj_us,
        );
        let ret = applied
            .roots
            .first()
            .cloned()
            .ok_or_else(|| NrmiError::Protocol("empty seed delta reply".into()))?;
        let mut sync_ids = client_map.order().to_vec();
        sync_ids.extend_from_slice(&applied.new_objects);
        let sync = record_sync(&client.state.heap, &sync_ids)?;
        client.warm.caches.insert(
            service.to_owned(),
            ClientWarmCache {
                cache_id,
                generation: 1,
                sync,
                stale_version: 0,
            },
        );
        return Ok((ret, stats));
    }

    // Full reply: the server could not encode a delta and established no
    // cache. Restore like a cold call; next invocation seeds again.
    let state = &mut client.state;
    let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
    let decoded = deserialize_graph_with(&payload, &mut state.heap, &mut hooks)?;
    stats.reply_objects = decoded.object_count();
    let outcome = apply_restore(&mut state.heap, &client_map, &decoded)?;
    stats.restored_objects = outcome.stats.old_objects;
    stats.new_objects = outcome.stats.new_objects;
    let ret = outcome
        .roots
        .first()
        .cloned()
        .ok_or_else(|| NrmiError::Protocol("empty seed reply".into()))?;
    Ok((ret, stats))
}

/// Drops the client's warm cache for `service` (if any) and tells the
/// server to free its cached graph.
///
/// # Errors
/// Transport failures sending the eviction notice.
pub fn client_evict_warm(
    client: &mut ClientNode,
    transport: &mut dyn Transport,
    service: &str,
) -> Result<(), NrmiError> {
    if let Some(cache) = client.warm.caches.remove(service) {
        transport.send(&Frame::CacheEvict {
            cache_id: cache.cache_id,
        })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

/// Which warm sessions currently cover which heap objects, across every
/// connection serving one node. Kept on [`ServerNode::leases`] and
/// mirrored by every [`WarmCaches`] built with
/// [`with_leases`](WarmCaches::with_leases): an entry's sync objects are
/// registered when the entry is (re)inserted and unregistered when it is
/// taken out, so an orderly eviction can free exactly the objects no
/// OTHER session still reads — one client disconnecting no longer
/// poisons a second client's warm session by freeing the shared graph
/// out from under it.
///
/// The table is a refcount per object, which is exact under two
/// invariants the [`WarmCaches`] funnel maintains: a sync list never
/// repeats an id (it is a linear-map order), and every
/// [`register`](Self::register) is balanced by exactly one
/// [`unregister`](Self::unregister) of the same list. Counts instead of
/// per-object holder lists keep the steady-state warm call free of
/// allocations — the count map's capacity persists across the per-call
/// take/put cycle.
///
/// Lock discipline: always a leaf. Critical sections are pure map
/// updates; no other lock (and no transport I/O) is ever taken while a
/// lease guard is held, so the only learned order is node → lease-table.
#[derive(Debug, Default)]
pub struct LeaseTable {
    covers: HashMap<ObjId, u32>,
}

/// Builds a fresh shared lease-table handle — one per server heap
/// (normally owned by [`ServerNode::leases`]).
pub fn new_lease_table() -> Arc<TrackedMutex<LeaseTable>> {
    Arc::new(TrackedMutex::new(
        crate::lockcheck::LockClass::LeaseTable,
        LeaseTable::new(),
    ))
}

impl LeaseTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LeaseTable::default()
    }

    fn register(&mut self, ids: &[ObjId]) {
        for &id in ids {
            *self.covers.entry(id).or_insert(0) += 1;
        }
    }

    fn unregister(&mut self, ids: &[ObjId]) {
        for &id in ids {
            if let Some(count) = self.covers.get_mut(&id) {
                *count -= 1;
                if *count == 0 {
                    self.covers.remove(&id);
                }
            }
        }
    }

    /// True if any session currently covers `id`.
    pub fn is_covered(&self, id: ObjId) -> bool {
        self.covers.contains_key(&id)
    }

    /// Number of sessions covering `id`.
    pub fn cover_count(&self, id: ObjId) -> usize {
        self.covers.get(&id).map_or(0, |&c| c as usize)
    }

    /// Number of objects under at least one lease.
    pub fn covered_len(&self) -> usize {
        self.covers.len()
    }

    /// True when no object is leased.
    pub fn is_empty(&self) -> bool {
        self.covers.is_empty()
    }
}

/// One server-side cache entry: the synchronized graph for a warm
/// session.
#[derive(Clone, Debug)]
struct ServerWarmEntry {
    generation: u64,
    sync: Vec<ObjId>,
    /// Per-position mutation version at the entry's last (re)validation,
    /// parallel to `sync`. An object stamped above its recorded version
    /// has been written out-of-band since the session last saw it.
    /// Per-position vectors (not one epoch watermark) matter because
    /// stale entries are *repaired* in place: a patch revalidates
    /// exactly what it shipped, leaving later writes detectable.
    versions: Vec<u64>,
    /// Monotone revalidation counter, carried by every `CacheStale`
    /// frame for this session so the client can order and deduplicate
    /// patch deliveries.
    version: u64,
    /// Pooled pre-call snapshot storage, recaptured per warm call so the
    /// per-object slot buffers are reused instead of reallocated.
    snapshot: GraphSnapshot,
}

/// The warm caches of one server connection. Each connection owns its
/// own set (created by the serve loop), so a client can only ever
/// address caches it seeded itself. Connections serving a node shared
/// with others build the set with [`with_leases`](WarmCaches::with_leases),
/// which coordinates evictions through the node's [`LeaseTable`].
#[derive(Debug, Default)]
pub struct WarmCaches {
    entries: HashMap<u64, ServerWarmEntry>,
    /// Cross-session lease table; `None` keeps the legacy one-owner
    /// behavior (evictions free unconditionally).
    leases: Option<Arc<TrackedMutex<LeaseTable>>>,
}

impl WarmCaches {
    /// Creates an empty cache set with no lease coordination.
    pub fn new() -> Self {
        WarmCaches::default()
    }

    /// Creates an empty cache set registered with a node's lease table
    /// (normally [`ServerNode::leases`]). All cache sets serving the
    /// same node must share one table for eviction safety.
    pub fn with_leases(leases: Arc<TrackedMutex<LeaseTable>>) -> Self {
        WarmCaches {
            entries: HashMap::new(),
            leases: Some(leases),
        }
    }

    /// True if this cache set coordinates evictions through a lease
    /// table.
    pub fn leased(&self) -> bool {
        self.leases.is_some()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no session is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The generation the server will accept next for `cache_id`, if the
    /// session is cached. Exposed so protocol checkers can assert the
    /// client/server generation lockstep invariant.
    pub fn generation_of(&self, cache_id: u64) -> Option<u64> {
        self.entries.get(&cache_id).map(|e| e.generation)
    }

    /// The revalidation version of `cache_id` (bumped once per
    /// `CacheStale` patch). Exposed for protocol checking.
    pub fn version_of(&self, cache_id: u64) -> Option<u64> {
        self.entries.get(&cache_id).map(|e| e.version)
    }

    /// The server-side object ids a cached session synchronizes, if the
    /// session is live. Exposed so checkers can audit eviction/lease
    /// safety: after another connection's teardown, every id here must
    /// still be alive.
    pub fn sync_ids_of(&self, cache_id: u64) -> Option<&[ObjId]> {
        self.entries.get(&cache_id).map(|e| e.sync.as_slice())
    }

    /// Takes an entry out, releasing its leases. Every removal funnels
    /// through here so the lease table mirrors `entries` exactly.
    fn take_entry(&mut self, cache_id: u64) -> Option<ServerWarmEntry> {
        let entry = self.entries.remove(&cache_id)?;
        if let Some(leases) = &self.leases {
            leases.lock().unregister(&entry.sync);
        }
        Some(entry)
    }

    /// Inserts an entry, registering its leases. The twin of
    /// [`take_entry`](Self::take_entry).
    fn put_entry(&mut self, cache_id: u64, entry: ServerWarmEntry) {
        if let Some(leases) = &self.leases {
            leases.lock().register(&entry.sync);
        }
        self.entries.insert(cache_id, entry);
    }

    /// Handles a client eviction notice: frees the cached graph. The
    /// notice asserts the client is done with the session graph (the
    /// warm twin of a DGC clean); slots already freed or never seeded
    /// are ignored.
    pub fn evict(&mut self, heap: &mut Heap, cache_id: u64) {
        let Some(entry) = self.take_entry(cache_id) else {
            return;
        };
        // Free the graph only if every synchronized slot still holds the
        // object the session left there, untouched since validation. Any
        // out-of-band activity — a mutation (server state aliases the
        // graph), a free, or a free-then-recycle (the slot now holds an
        // innocent object, which a blind free would destroy and the
        // sanitize feature traps as NRMI-Z001) — means partial freeing
        // would leave the surviving objects dangling at their freed
        // neighbors, so the entry is dropped unfreed instead. Recycled
        // slots always fail the version-vector test because the tick is
        // monotone: whatever occupies them was allocated after the entry
        // was validated.
        if !coherent(heap, &entry) {
            return;
        }
        match &self.leases {
            None => {
                for id in entry.sync {
                    let _ = heap.free(id);
                }
            }
            Some(leases) => {
                // Free only what no OTHER session still covers: on a
                // shared node, a second client's warm session may read
                // the same graph, and freeing it here would dangle that
                // session's handles (the evict-on-disconnect bug this
                // table exists to fix). Objects left covered are freed
                // by whichever eviction drops the last lease.
                let table = leases.lock();
                for id in entry.sync {
                    if !table.is_covered(id) {
                        let _ = heap.free(id);
                    }
                }
            }
        }
    }

    /// Frees every cached graph (connection teardown).
    pub fn release_all(&mut self, heap: &mut Heap) {
        let ids: Vec<u64> = self.entries.keys().copied().collect();
        for id in ids {
            self.evict(heap, id);
        }
    }
}

/// Probes each sync position's current mutation version; positions whose
/// object is gone probe as `u64::MAX` (always incoherent).
fn versions_of(heap: &Heap, sync: &[ObjId]) -> Vec<u64> {
    sync.iter()
        .map(|&id| heap.version_if_live(id).unwrap_or(u64::MAX))
        .collect()
}

/// True if every synchronized object still exists untouched since the
/// entry was last (re)validated.
fn coherent(heap: &Heap, entry: &ServerWarmEntry) -> bool {
    // Probe, don't dereference: the whole point is that these handles
    // may have gone stale behind the cache's back.
    entry.sync.len() == entry.versions.len()
        && entry
            .sync
            .iter()
            .zip(&entry.versions)
            .all(|(&id, &recorded)| heap.version_if_live(id).is_some_and(|v| v <= recorded))
}

/// How an entry relates to the live heap.
enum Staleness {
    /// Every position matches its recorded version.
    Clean,
    /// Some positions were written out-of-band, but every synchronized
    /// object is still the one the session knows: the dirty positions,
    /// ascending. Repairable by a coherence patch.
    Dirty(Vec<u32>),
    /// A synchronized object was freed, or its slot recycled for a new
    /// object. Version numbers alone cannot tell recycling from
    /// mutation — the allocation stamp ([`born`](nrmi_heap::Object::born))
    /// can, and it matters: patching would ship a stranger object under
    /// the session's position, silently (or as an NRMI-Z001 trap under
    /// `sanitize`).
    Lost,
}

fn classify(heap: &Heap, entry: &ServerWarmEntry) -> Staleness {
    if entry.sync.len() != entry.versions.len() {
        return Staleness::Lost;
    }
    let mut dirty = Vec::new();
    for (pos, (&id, &recorded)) in entry.sync.iter().zip(&entry.versions).enumerate() {
        match (heap.version_if_live(id), heap.born_if_live(id)) {
            (Some(version), Some(born)) => {
                if born > recorded {
                    return Staleness::Lost;
                }
                if version > recorded {
                    dirty.push(pos as u32);
                }
            }
            _ => return Staleness::Lost,
        }
    }
    if dirty.is_empty() {
        Staleness::Clean
    } else {
        Staleness::Dirty(dirty)
    }
}

/// Repairs a stale-but-live entry: encodes a patch of the dirty
/// positions, revalidates the entry at the current heap state (same
/// generation — no call executed), and answers `CacheStale`. Encode
/// failures (a dirty object grew a dangling edge into a freed neighbor,
/// or now references something a patch cannot carry) degrade to the
/// legacy drop: entry out, unfreed, `CacheMiss`.
fn revalidate_entry(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    cache_id: u64,
    mut entry: ServerWarmEntry,
    dirty: &[u32],
) -> Frame {
    let state = &mut server.state;
    let cost = state.profile.cost();
    let enc = match encode_invalidation(&state.heap, &entry.sync, dirty) {
        Ok(enc) => enc,
        Err(_) => return Frame::CacheMiss,
    };
    state.charge_cpu(
        (enc.stats.dirty_count + enc.stats.new_count) as f64 * cost.ser_per_obj_us
            + enc.bytes.len() as f64 * cost.per_byte_us,
    );
    entry.sync.extend_from_slice(&enc.new_objects);
    entry.versions = versions_of(&state.heap, &entry.sync);
    entry.version += 1;
    let version = entry.version;
    caches.put_entry(cache_id, entry);
    Frame::CacheStale {
        cache_id,
        version,
        payload: enc.bytes,
    }
}

/// Scans this connection's sessions for entries gone stale behind their
/// backs and repairs the repairable ones, returning the `CacheStale`
/// frames to push to the (idle) client. Only **pure** patches — no new
/// objects — travel unsolicited: a splicing patch changes the sync-list
/// length, and a request delta already crossing it on the wire would
/// desync; splicing repairs wait for the next call and travel on the
/// reply path instead. Entries whose graphs were freed or recycled
/// out-of-band are dropped (unfreed) — the client discovers the loss as
/// an ordinary `CacheMiss` on its next call.
pub fn collect_stale_pushes(server: &mut ServerNode, caches: &mut WarmCaches) -> Vec<Frame> {
    let mut out = Vec::new();
    let ids: Vec<u64> = caches.entries.keys().copied().collect();
    for cache_id in ids {
        let Some(entry) = caches.entries.get(&cache_id) else {
            continue;
        };
        match classify(&server.state.heap, entry) {
            Staleness::Clean => {}
            Staleness::Dirty(dirty) => {
                let state = &mut server.state;
                let Ok(enc) = encode_invalidation(&state.heap, &entry.sync, &dirty) else {
                    // Unencodable (e.g. a dangling edge): leave the entry
                    // stale; the next warm call degrades to CacheMiss
                    // through the same classification.
                    continue;
                };
                if !enc.new_objects.is_empty() {
                    continue;
                }
                let cost = state.profile.cost();
                state.charge_cpu(
                    enc.stats.dirty_count as f64 * cost.ser_per_obj_us
                        + enc.bytes.len() as f64 * cost.per_byte_us,
                );
                let mut entry = caches.take_entry(cache_id).expect("present above");
                entry.versions = versions_of(&state.heap, &entry.sync);
                entry.version += 1;
                let version = entry.version;
                caches.put_entry(cache_id, entry);
                out.push(Frame::CacheStale {
                    cache_id,
                    version,
                    payload: enc.bytes,
                });
            }
            Staleness::Lost => {
                caches.take_entry(cache_id);
            }
        }
    }
    out
}

/// Dispatches one warm-protocol frame — a warm/seed call or an eviction
/// notice — against an exclusively borrowed node: the shared body of
/// every serve loop's warm arms. Returns the frames to send **in
/// order**: pushed `CacheStale` invalidations for other sessions of this
/// connection that went stale behind their backs (when `push` is set),
/// then the call's own reply. Pushes travel *before* the reply on
/// purpose: a synchronous client consumes everything up to its reply
/// before it can issue another request, so a pushed patch can never
/// cross a request delta computed against pre-patch state.
///
/// An eviction notice produces no reply of its own — and no pushes
/// either, even with `push` set: the client is not necessarily
/// receiving after a fire-and-forget evict, and an unsolicited frame
/// would derail its next non-call exchange (e.g. a lookup). Nothing is
/// lost: an eviction only frees objects *no* session covers, so it
/// cannot stale any session, and staleness predating the evict is
/// pushed with the next warm call's reply.
pub fn dispatch_warm_frame(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    frame: Frame,
    push: bool,
) -> Vec<Frame> {
    let push = push && matches!(frame, Frame::CallRequestWarm { .. });
    let reply = match frame {
        Frame::CallRequestWarm {
            service,
            method,
            mode,
            cache_id,
            generation,
            payload,
        } => Some(server_handle_warm_call(
            server, caches, transport, &service, &method, mode, cache_id, generation, &payload,
        )),
        Frame::CacheEvict { cache_id } => {
            caches.evict(&mut server.state.heap, cache_id);
            None
        }
        other => Some(Frame::CallError {
            message: format!("not a warm-protocol frame: {other:?}"),
        }),
    };
    let mut out = if push {
        collect_stale_pushes(server, caches)
    } else {
        Vec::new()
    };
    out.extend(reply);
    out
}

/// Shared-node variant of [`dispatch_warm_frame`]: locks the node for
/// the whole dispatch, like every big-lock arm does.
pub fn dispatch_warm_frame_shared(
    server: &TrackedMutex<ServerNode>,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    frame: Frame,
    push: bool,
) -> Vec<Frame> {
    dispatch_warm_frame(&mut server.lock(), caches, transport, frame, push)
}

/// Handles one `CallRequestWarm` frame on the server. Returns the frame
/// to send back: `CallReply`, `CacheStale`, `CacheMiss`, or `CallError`.
#[allow(clippy::too_many_arguments)]
pub fn server_handle_warm_call(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    cache_id: u64,
    generation: u64,
    payload: &[u8],
) -> Frame {
    let result = if generation == 0 {
        server_seed_call(
            server, caches, transport, service, method, mode_byte, cache_id, payload,
        )
    } else {
        // Take the entry out up front: every non-success path below must
        // leave it dropped (the client drops its side symmetrically);
        // only a completed call or an in-place repair re-inserts it.
        let Some(entry) = caches.take_entry(cache_id) else {
            return Frame::CacheMiss;
        };
        if entry.generation != generation {
            return Frame::CacheMiss;
        }
        match classify(&server.state.heap, &entry) {
            Staleness::Clean => {}
            Staleness::Dirty(dirty) => {
                // Out-of-band writes, but every synchronized object is
                // still alive: repair the session in place with a
                // targeted patch instead of discarding it. Merge rule:
                // the patch excludes positions this request itself
                // rewrites or frees — the client's slots are already on
                // the wire and win at object granularity; patching them
                // back would silently undo the client's mutation. If
                // the request covers every dirty position (or the
                // payload is malformed — the call path below surfaces
                // the authoritative error), fall through to the call.
                if let Ok(peeked) = nrmi_wire::peek_request_delta(payload, entry.sync.len()) {
                    let patch: Vec<u32> = dirty
                        .iter()
                        .copied()
                        .filter(|&p| !peeked.touches(p))
                        .collect();
                    if !patch.is_empty() {
                        return revalidate_entry(server, caches, cache_id, entry, &patch);
                    }
                }
            }
            Staleness::Lost => {
                // Freed or recycled out-of-band: nothing to patch
                // against. Drop without freeing (the out-of-band
                // activity proves server state aliases the graph).
                return Frame::CacheMiss;
            }
        }
        server_warm_call(
            server, caches, transport, service, method, cache_id, entry, payload,
        )
    };
    match result {
        Ok(frame) => frame,
        Err(NrmiError::Remote(message)) => Frame::CallError { message },
        Err(e) => Frame::CallError {
            message: e.to_string(),
        },
    }
}

/// Seeds a session: full-graph request, delta reply, cache established.
#[allow(clippy::too_many_arguments)]
fn server_seed_call(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    cache_id: u64,
    payload: &[u8],
) -> Result<Frame, NrmiError> {
    let opts = CallOptions::from_wire(mode_byte)?;
    let ServerNode {
        state, services, ..
    } = server;
    let cost = state.profile.cost();
    let registry = state.heap.registry_handle().clone();
    let svc = services
        .get_mut(service)
        .ok_or_else(|| NrmiError::NoSuchService(service.to_owned()))?;

    let mut hooks = NodeHooks::new(&mut state.exports, &mut state.stubs);
    let decoded = deserialize_graph_with(payload, &mut state.heap, &mut hooks)?;
    state.charge_cpu(
        cost.dispatch_overhead_us
            + decoded.object_count() as f64 * cost.de_per_obj_us
            + payload.len() as f64 * cost.per_byte_us,
    );
    let args = decoded.roots.clone();
    let restore_roots = restore_roots_of(&registry, &state.heap, opts, &args)?;
    let server_map = LinearMap::build(&state.heap, &restore_roots)?;
    let snapshot = GraphSnapshot::capture(&state.heap, server_map.order())?;

    let ret = {
        let mut proxy = RemoteHeapProxy::new(state, transport);
        svc.invoke(method, &args, &mut proxy)?
    };

    let outcome = {
        let NodeState { heap, codec, .. } = &mut *state;
        codec.encode_reply_delta(heap, &snapshot, std::slice::from_ref(&ret))
    };
    match outcome {
        Ok(delta) => {
            state.charge_cpu(
                (delta.stats.changed_count + delta.stats.new_count) as f64 * cost.ser_per_obj_us
                    + delta.bytes.len() as f64 * cost.per_byte_us,
            );
            let mut sync = server_map.order().to_vec();
            sync.extend_from_slice(&delta.new_objects);
            let versions = versions_of(&state.heap, &sync);
            caches.put_entry(
                cache_id,
                ServerWarmEntry {
                    generation: 1,
                    sync,
                    versions,
                    version: 0,
                    // The seed's snapshot storage seeds the entry's pool.
                    snapshot,
                },
            );
            Ok(Frame::CallReply {
                payload: delta.bytes,
            })
        }
        Err(nrmi_wire::WireError::NotSerializable { .. })
        | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
            // Cannot delta-encode the result graph: answer a full
            // annotated reply and establish no cache.
            full_reply_fallback(state, server_map.order(), ret)
        }
        Err(e) => Err(e.into()),
    }
}

/// A warm call proper: apply the request delta to the cached graph, run
/// the method, reply with a delta, advance the entry.
#[allow(clippy::too_many_arguments)]
fn server_warm_call(
    server: &mut ServerNode,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    cache_id: u64,
    mut entry: ServerWarmEntry,
    payload: &[u8],
) -> Result<Frame, NrmiError> {
    let ServerNode {
        state, services, ..
    } = server;
    let cost = state.profile.cost();
    let svc = services
        .get_mut(service)
        .ok_or_else(|| NrmiError::NoSuchService(service.to_owned()))?;

    let applied = apply_request_delta(payload, &mut state.heap, &entry.sync)?;
    state.charge_cpu(
        cost.dispatch_overhead_us
            + (applied.changed_count + applied.new_objects.len()) as f64 * cost.de_per_obj_us
            + payload.len() as f64 * cost.per_byte_us,
    );
    let sync2 = next_sync(&entry.sync, &applied.freed_positions, &applied.new_objects);
    // Recapture into the entry's pooled snapshot: in steady state this
    // reuses every per-object slot buffer from the previous call.
    entry.snapshot.recapture(&state.heap, &sync2)?;
    let args = applied.roots;

    let ret = {
        let mut proxy = RemoteHeapProxy::new(state, transport);
        svc.invoke(method, &args, &mut proxy)?
    };

    let outcome = {
        let NodeState { heap, codec, .. } = &mut *state;
        codec.encode_reply_delta(heap, &entry.snapshot, std::slice::from_ref(&ret))
    };
    match outcome {
        Ok(delta) => {
            state.charge_cpu(
                (delta.stats.changed_count + delta.stats.new_count) as f64 * cost.ser_per_obj_us
                    + delta.bytes.len() as f64 * cost.per_byte_us,
            );
            let mut sync = sync2;
            sync.extend_from_slice(&delta.new_objects);
            let versions = versions_of(&state.heap, &sync);
            caches.put_entry(
                cache_id,
                ServerWarmEntry {
                    generation: entry.generation + 1,
                    sync,
                    versions,
                    version: entry.version,
                    snapshot: entry.snapshot,
                },
            );
            Ok(Frame::CallReply {
                payload: delta.bytes,
            })
        }
        Err(nrmi_wire::WireError::NotSerializable { .. })
        | Err(nrmi_wire::WireError::RemoteWithoutHooks { .. }) => {
            // Fall back to a full annotated reply relative to the
            // advanced sync order; the entry stays dropped (the client
            // retires its side on seeing the full reply).
            full_reply_fallback(state, &sync2, ret)
        }
        Err(e) => Err(e.into()),
    }
}

/// Emits a full annotated reply (the cold copy-restore wire form) whose
/// old-index annotations are positions in `sync` — the receiver restores
/// through `LinearMap::from_order(sync)`.
fn full_reply_fallback(
    state: &mut NodeState,
    sync: &[ObjId],
    ret: Value,
) -> Result<Frame, NrmiError> {
    let cost = state.profile.cost();
    let mut old_index = DensePositionMap::new();
    for (i, &id) in sync.iter().enumerate() {
        old_index.insert(id, i as u32);
    }
    let mut reply_roots = vec![ret];
    reply_roots.extend(sync.iter().map(|&id| Value::Ref(id)));
    let NodeState {
        heap,
        exports,
        stubs,
        codec,
        ..
    } = &mut *state;
    let mut hooks = NodeHooks::new(exports, stubs);
    let enc = codec.encode_graph(heap, &reply_roots, Some(&old_index), Some(&mut hooks))?;
    state.charge_cpu(
        enc.object_count() as f64 * cost.ser_per_obj_us + enc.byte_len() as f64 * cost.per_byte_us,
    );
    Ok(Frame::CallReply { payload: enc.bytes })
}

/// Shared-server warm dispatch: locks the node per request, like
/// [`serve_connection_shared`](crate::protocol::serve_connection_shared)
/// does for cold calls. The caches stay per-connection even though the
/// node is shared.
#[allow(clippy::too_many_arguments)]
pub fn server_handle_warm_call_shared(
    server: &crate::lockcheck::TrackedMutex<ServerNode>,
    caches: &mut WarmCaches,
    transport: &mut dyn Transport,
    service: &str,
    method: &str,
    mode_byte: u8,
    cache_id: u64,
    generation: u64,
    payload: &[u8],
) -> Frame {
    server_handle_warm_call(
        &mut server.lock(),
        caches,
        transport,
        service,
        method,
        mode_byte,
        cache_id,
        generation,
        payload,
    )
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    use nrmi_heap::{ClassRegistry, HeapAccess};
    use nrmi_transport::{MachineSpec, TransportError};

    use super::*;
    use crate::service::FnService;

    /// Stands in for the (unused) callback channel of the dispatch.
    struct Sink;

    impl Transport for Sink {
        fn send(&mut self, _frame: &Frame) -> nrmi_transport::Result<()> {
            Ok(())
        }
        fn recv(&mut self) -> nrmi_transport::Result<Frame> {
            Err(TransportError::Disconnected)
        }
        fn recv_timeout(
            &mut self,
            _timeout: std::time::Duration,
        ) -> nrmi_transport::Result<Frame> {
            Err(TransportError::Disconnected)
        }
    }

    /// Client and server joined in process, pushes enabled: `send` runs
    /// the frame through [`dispatch_warm_frame`] and queues everything it
    /// returns — pushed `CacheStale` patches ahead of the reply, exactly
    /// the order the serve loops write to the socket.
    struct Link {
        server: ServerNode,
        caches: WarmCaches,
        replies: VecDeque<Frame>,
    }

    impl Transport for Link {
        fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
            let out = dispatch_warm_frame(
                &mut self.server,
                &mut self.caches,
                &mut Sink,
                frame.clone(),
                true,
            );
            self.replies.extend(out);
            Ok(())
        }
        fn recv(&mut self) -> nrmi_transport::Result<Frame> {
            self.replies.pop_front().ok_or(TransportError::Disconnected)
        }
        fn recv_timeout(
            &mut self,
            _timeout: std::time::Duration,
        ) -> nrmi_transport::Result<Frame> {
            self.recv()
        }
    }

    /// Two warm services on one node: `leak` returns its root's `data`
    /// and leaks the server-side root id; `poke` writes that leaked root
    /// — an out-of-band cross-session write from the leak session's
    /// point of view.
    fn world() -> (ClientNode, Link, ObjId, ObjId) {
        let mut reg = ClassRegistry::new();
        let cell = reg.define("Cell").field_int("data").restorable().register();
        let registry = reg.snapshot();

        let leaked: Arc<Mutex<Option<ObjId>>> = Arc::new(Mutex::new(None));
        let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
        {
            let leaked = Arc::clone(&leaked);
            server.bind(
                "leak",
                Box::new(FnService::new(move |_m, args, heap| {
                    let root = args[0]
                        .as_ref_id()
                        .ok_or_else(|| NrmiError::app("want a ref"))?;
                    *leaked.lock().expect("poisoned") = Some(root);
                    Ok(heap.get_field(root, "data")?)
                })),
            );
        }
        {
            let leaked = Arc::clone(&leaked);
            server.bind(
                "poke",
                Box::new(FnService::new(move |_m, _args, heap| {
                    if let Some(id) = *leaked.lock().expect("poisoned") {
                        let d = heap.get_field(id, "data")?.as_int().unwrap_or(0);
                        heap.set_field(id, "data", Value::Int(d + 100))?;
                    }
                    Ok(Value::Null)
                })),
            );
        }
        let caches = WarmCaches::with_leases(Arc::clone(&server.leases));
        let mut client = ClientNode::new(registry, MachineSpec::fast());
        let leak_root = client
            .state
            .heap
            .alloc(cell, vec![Value::Int(5)])
            .expect("alloc");
        let poke_root = client
            .state
            .heap
            .alloc(cell, vec![Value::Int(0)])
            .expect("alloc");
        (
            client,
            Link {
                server,
                caches,
                replies: VecDeque::new(),
            },
            leak_root,
            poke_root,
        )
    }

    fn call(
        client: &mut ClientNode,
        link: &mut Link,
        service: &str,
        root: ObjId,
    ) -> (Value, CallStats) {
        client_invoke_warm_with_stats(client, link, service, "run", &[Value::Ref(root)])
            .expect("warm call")
    }

    /// Satellite regression: connection teardown (`release_all`) frees
    /// only objects no OTHER connection's session covers. Before the
    /// lease table, A's teardown freed the shared subgraph out from
    /// under B's live cache.
    #[test]
    fn release_all_frees_only_objects_no_other_session_covers() {
        let mut reg = ClassRegistry::new();
        let cell = reg.define("Cell").field_int("data").restorable().register();
        let mut heap = Heap::new(reg.snapshot());
        let x = heap.alloc(cell, vec![Value::Int(1)]).expect("alloc");
        let y = heap.alloc(cell, vec![Value::Int(2)]).expect("alloc");
        let shared = heap.alloc(cell, vec![Value::Int(3)]).expect("alloc");
        let z = heap.alloc(cell, vec![Value::Int(4)]).expect("alloc");

        let leases = new_lease_table();
        let mut conn_a = WarmCaches::with_leases(Arc::clone(&leases));
        let mut conn_b = WarmCaches::with_leases(Arc::clone(&leases));
        let entry = |heap: &Heap, sync: Vec<ObjId>| ServerWarmEntry {
            generation: 1,
            versions: versions_of(heap, &sync),
            sync,
            version: 0,
            snapshot: GraphSnapshot::default(),
        };
        conn_a.put_entry(1, entry(&heap, vec![x, y, shared]));
        conn_b.put_entry(2, entry(&heap, vec![z, shared]));
        assert_eq!(leases.lock().cover_count(shared), 2);

        conn_a.release_all(&mut heap);
        assert!(heap.class_if_live(x).is_none(), "x was A's alone");
        assert!(heap.class_if_live(y).is_none(), "y was A's alone");
        assert!(
            heap.class_if_live(shared).is_some(),
            "shared is still leased by connection B"
        );
        assert!(heap.class_if_live(z).is_some());

        conn_b.evict(&mut heap, 2);
        assert!(heap.class_if_live(shared).is_none(), "last lease released");
        assert!(heap.class_if_live(z).is_none());
        assert!(leases.lock().is_empty());
    }

    /// A cross-session write during another session's call travels as a
    /// pushed `CacheStale` patch ahead of the reply: the idle session's
    /// client graph is repaired inline (counted in
    /// [`CallStats::stale_patches`]), and its next call runs warm at the
    /// same cache — no miss, no cold reseed.
    #[test]
    fn cross_session_write_pushes_a_targeted_patch() {
        let (mut client, mut link, leak_root, poke_root) = world();

        let (v1, s1) = call(&mut client, &mut link, "leak", leak_root);
        assert_eq!(v1, Value::Int(5));
        assert_eq!(s1.stale_patches, 0);

        let (_, s2) = call(&mut client, &mut link, "poke", poke_root);
        assert_eq!(s2.stale_patches, 1, "one pushed patch consumed inline");
        assert_eq!(
            client.state.heap.get_field(leak_root, "data").expect("live"),
            Value::Int(105),
            "the patch repaired exactly the dirty position client-side"
        );

        let gen = client.warm.generation("leak").expect("warm");
        let (v3, s3) = call(&mut client, &mut link, "leak", leak_root);
        assert_eq!(v3, Value::Int(105));
        assert_eq!(s3.stale_patches, 0, "the push already repaired the view");
        assert_eq!(
            client.warm.generation("leak"),
            Some(gen + 1),
            "served from the warm cache, not reseeded"
        );
    }

    /// A patch delivery is idempotent: the monotone `stale_version` gate
    /// refuses versions at or below the last applied one before parsing,
    /// so a patch arriving twice (pushed, then racing a reply) cannot
    /// double-apply.
    #[test]
    fn stale_patch_deliveries_are_deduplicated_by_version() {
        let (mut client, mut link, leak_root, poke_root) = world();
        call(&mut client, &mut link, "leak", leak_root);
        call(&mut client, &mut link, "poke", poke_root);
        let cache_id = client.warm.cache_id("leak").expect("warm");
        assert_eq!(client.warm.stale_version("leak"), Some(1));

        // Replaying version 1 — even with a garbage payload — must be
        // rejected by the version gate alone, leaving the session alive.
        assert!(!client_apply_stale(&mut client, cache_id, 1, b"garbage"));
        assert_eq!(client.warm.cache_id("leak"), Some(cache_id));
        assert_eq!(
            client.state.heap.get_field(leak_root, "data").expect("live"),
            Value::Int(105)
        );
    }

    /// The server half of the merge rule: an out-of-band write to a
    /// position the in-flight request ALSO rewrites is not patched — the
    /// client wins at object granularity and the call proceeds, rather
    /// than a repair clobbering the client's unshipped write.
    #[test]
    fn client_write_wins_over_concurrent_server_write_to_same_object() {
        let (mut client, mut link, leak_root, _poke_root) = world();
        call(&mut client, &mut link, "leak", leak_root);

        // Out-of-band server-side write to the session's root...
        let server_root = link.caches.sync_ids_of(
            client.warm.cache_id("leak").expect("warm"),
        )
        .expect("live")[0];
        link.server
            .state
            .heap
            .set_field(server_root, "data", Value::Int(999))
            .expect("live");
        // ...racing a client-side write to the SAME object.
        client
            .state
            .heap
            .set_field(leak_root, "data", Value::Int(7))
            .expect("live");

        let (v, s) = call(&mut client, &mut link, "leak", leak_root);
        assert_eq!(v, Value::Int(7), "the client's write won");
        assert_eq!(s.stale_patches, 0, "no repair patch for a position the delta rewrites");
        assert_eq!(
            client.state.heap.get_field(leak_root, "data").expect("live"),
            Value::Int(7)
        );
    }

    /// The reply-path repair: an out-of-band write to a position the
    /// request does NOT touch answers `CacheStale`; the client applies
    /// the patch (counted in `stale_patches`), re-issues at the same
    /// generation, and the call completes warm.
    #[test]
    fn untouched_stale_position_is_repaired_on_the_reply_path() {
        let (mut client, mut link, leak_root, _poke_root) = world();
        call(&mut client, &mut link, "leak", leak_root);

        let server_root = link.caches.sync_ids_of(
            client.warm.cache_id("leak").expect("warm"),
        )
        .expect("live")[0];
        link.server
            .state
            .heap
            .set_field(server_root, "data", Value::Int(400))
            .expect("live");

        let (v, s) = call(&mut client, &mut link, "leak", leak_root);
        assert_eq!(v, Value::Int(400), "the call saw the repaired state");
        assert_eq!(s.stale_patches, 1, "one CacheStale reply absorbed");
        assert_eq!(
            client.state.heap.get_field(leak_root, "data").expect("live"),
            Value::Int(400)
        );
    }
}
