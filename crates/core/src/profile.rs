//! Runtime cost profiles: the simulated-time model of middleware CPU work.
//!
//! The paper evaluates four middleware stacks — RMI on JDK 1.3, RMI on
//! JDK 1.4, and NRMI in a *portable* (reflection-based) and an
//! *optimized* (`Unsafe`-based) implementation (§5.3.1). None of those
//! stacks exist here, so their processing costs are modelled: each stack
//! is a [`RuntimeProfile`] yielding a [`CostModel`] of per-call,
//! per-object, and per-byte CPU microseconds. The middleware charges
//! these against the shared [`SimEnv`](nrmi_transport::SimEnv) as the
//! corresponding real work happens (real serialization still runs — the
//! model only prices it in 2003 hardware terms).
//!
//! Constants are calibrated so that the benchmark harness reproduces the
//! *shape* of Tables 1–6: JDK 1.4 roughly 50–60% faster than 1.3,
//! optimized NRMI ≈ 20% over JDK 1.4 RMI-with-restore, portable NRMI
//! ≤ 30% over, and remote references an order of magnitude slower with
//! per-access round trips. EXPERIMENTS.md records the paper-vs-measured
//! comparison.

/// Which JDK generation's RMI stack is being modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JdkGeneration {
    /// JDK 1.3: layered, reflection-heavy serialization.
    Jdk13,
    /// JDK 1.4: flattened implementation with direct memory access.
    Jdk14,
}

/// Which NRMI implementation's restore machinery is being modelled
/// (§5.3.1). Irrelevant for plain RMI calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NrmiFlavor {
    /// Reflection-based traversal with aggressive caching; works on both
    /// JDK generations.
    Portable,
    /// Direct object access via the JVM's `Unsafe`; JDK 1.4 only.
    Optimized,
}

/// Per-operation CPU costs in microseconds (at reference-machine speed;
/// the [`SimEnv`](nrmi_transport::SimEnv) scales them per machine).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed client-side cost per remote call (stub dispatch, connection
    /// handling, security checks).
    pub call_overhead_us: f64,
    /// Fixed server-side cost per remote call (skeleton dispatch).
    pub dispatch_overhead_us: f64,
    /// Serializing one object.
    pub ser_per_obj_us: f64,
    /// Deserializing one object.
    pub de_per_obj_us: f64,
    /// Per-byte marshalling cost (both directions).
    pub per_byte_us: f64,
    /// NRMI only: recording one object in the linear map during
    /// (de)serialization (§5.2.1 — "the overhead is minuscule").
    pub linear_map_per_obj_us: f64,
    /// NRMI only: client-side restore per old object (matching the maps,
    /// overwriting, pointer conversion — steps 4–6).
    pub restore_per_obj_us: f64,
    /// Remote-pointer mode: processing one callback at the object's
    /// owner (unmarshal request, heap access, marshal reply).
    pub callback_owner_us: f64,
    /// Remote-pointer mode: issuing one callback from the server's heap
    /// proxy (marshal request, block, unmarshal reply).
    pub callback_proxy_us: f64,
}

/// A modelled middleware stack: JDK generation plus NRMI flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RuntimeProfile {
    /// The JDK generation being modelled.
    pub jdk: JdkGeneration,
    /// The NRMI implementation being modelled (ignored by plain RMI
    /// paths).
    pub flavor: NrmiFlavor,
}

impl RuntimeProfile {
    /// RMI/NRMI on JDK 1.3 (portable NRMI — the only one that runs there).
    pub fn jdk13() -> Self {
        RuntimeProfile {
            jdk: JdkGeneration::Jdk13,
            flavor: NrmiFlavor::Portable,
        }
    }

    /// RMI/NRMI on JDK 1.4 with the portable NRMI implementation.
    pub fn jdk14_portable() -> Self {
        RuntimeProfile {
            jdk: JdkGeneration::Jdk14,
            flavor: NrmiFlavor::Portable,
        }
    }

    /// RMI/NRMI on JDK 1.4 with the optimized NRMI implementation.
    pub fn jdk14_optimized() -> Self {
        RuntimeProfile {
            jdk: JdkGeneration::Jdk14,
            flavor: NrmiFlavor::Optimized,
        }
    }

    /// The cost model for this stack.
    pub fn cost(&self) -> CostModel {
        // JDK 1.4 base costs, calibrated against Table 2 (one-way RMI):
        // ser+de of a 1024-node tree plus fixed overheads ≈ 33 ms.
        let base = CostModel {
            call_overhead_us: 700.0,
            dispatch_overhead_us: 300.0,
            ser_per_obj_us: 10.0,
            de_per_obj_us: 11.0,
            per_byte_us: 0.02,
            linear_map_per_obj_us: 0.4,
            restore_per_obj_us: match self.flavor {
                // Reflection-driven field updates, mitigated by caching.
                NrmiFlavor::Portable => 12.0,
                // Direct access through Unsafe.
                NrmiFlavor::Optimized => 6.0,
            },
            callback_owner_us: 160.0,
            callback_proxy_us: 160.0,
        };
        match self.jdk {
            JdkGeneration::Jdk14 => base,
            // JDK 1.3: the paper measures 1.4 as 50-60% faster overall;
            // serialization-heavy costs scale up accordingly, and the
            // portable NRMI reflection path is pricier still.
            JdkGeneration::Jdk13 => CostModel {
                call_overhead_us: base.call_overhead_us * 1.6,
                dispatch_overhead_us: base.dispatch_overhead_us * 1.6,
                ser_per_obj_us: base.ser_per_obj_us * 1.8,
                de_per_obj_us: base.de_per_obj_us * 1.8,
                per_byte_us: base.per_byte_us * 2.0,
                linear_map_per_obj_us: base.linear_map_per_obj_us * 2.0,
                restore_per_obj_us: 13.0,
                callback_owner_us: base.callback_owner_us * 1.3,
                callback_proxy_us: base.callback_proxy_us * 1.3,
            },
        }
    }
}

impl Default for RuntimeProfile {
    fn default() -> Self {
        RuntimeProfile::jdk14_optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jdk13_is_uniformly_slower_for_marshalling() {
        let c13 = RuntimeProfile::jdk13().cost();
        let c14 = RuntimeProfile::jdk14_optimized().cost();
        assert!(c13.ser_per_obj_us > c14.ser_per_obj_us);
        assert!(c13.de_per_obj_us > c14.de_per_obj_us);
        assert!(c13.call_overhead_us > c14.call_overhead_us);
    }

    #[test]
    fn optimized_restore_beats_portable() {
        let portable = RuntimeProfile::jdk14_portable().cost();
        let optimized = RuntimeProfile::jdk14_optimized().cost();
        assert!(optimized.restore_per_obj_us < portable.restore_per_obj_us);
        // Only the NRMI-specific path differs between flavors on 1.4.
        assert_eq!(optimized.ser_per_obj_us, portable.ser_per_obj_us);
    }

    #[test]
    fn linear_map_overhead_is_minuscule() {
        // §5.2.1: the map is a by-product of serialization; its cost must
        // be a small fraction of serialization itself.
        let c = RuntimeProfile::default().cost();
        assert!(c.linear_map_per_obj_us < c.ser_per_obj_us / 10.0);
    }

    #[test]
    fn default_is_modern_optimized() {
        assert_eq!(RuntimeProfile::default(), RuntimeProfile::jdk14_optimized());
    }
}
