//! In-process client/server sessions: the main entry point for
//! applications, tests, and benchmarks.
//!
//! A [`Session`] spawns the server on its own thread, connected to the
//! client by an in-process channel transport (optionally accounting
//! simulated time). TCP helpers ([`serve_tcp`], [`Session::connect_tcp`])
//! run the identical protocol across real sockets for genuine
//! distribution.

use std::thread::JoinHandle;

use nrmi_heap::{DenseObjSet, Heap, LinearMap, ObjId, SharedRegistry, Value};
use nrmi_transport::{
    channel_pair, ChannelTransport, Frame, LinkSpec, MachineSpec, SimEnv, TcpListenerTransport,
    TcpTransport, Transport,
};

use crate::error::NrmiError;
use crate::node::{ClientNode, ServerNode};
use crate::profile::RuntimeProfile;
use crate::protocol::{
    client_invoke_on_object_with_stats, client_invoke_with_stats, serve_connection, CallStats,
};
use crate::semantics::CallOptions;
use crate::service::RemoteService;

/// Configures and launches a [`Session`].
pub struct SessionBuilder {
    registry: SharedRegistry,
    services: Vec<(String, Box<dyn RemoteService>)>,
    class_services: Vec<(nrmi_heap::ClassId, Box<dyn RemoteService>)>,
    env: Option<SimEnv>,
    link: LinkSpec,
    client_machine: MachineSpec,
    server_machine: MachineSpec,
    profile: RuntimeProfile,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("services", &self.services.len())
            .field("link", &self.link)
            .finish()
    }
}

impl SessionBuilder {
    /// Binds `service` under `name` on the server.
    pub fn serve(mut self, name: impl Into<String>, service: Box<dyn RemoteService>) -> Self {
        self.services.push((name.into(), service));
        self
    }

    /// Binds `service` as the behavior of remote-marked `class` on the
    /// server: method calls on exported instances (via
    /// [`Session::call_on`]) dispatch to it with the receiver prepended
    /// as `args[0]`.
    pub fn serve_class(
        mut self,
        class: nrmi_heap::ClassId,
        service: Box<dyn RemoteService>,
    ) -> Self {
        self.class_services.push((class, service));
        self
    }

    /// Enables simulated-time accounting: transfers over `link`, CPU on
    /// the given machines, middleware costs from `profile`.
    pub fn simulated(
        mut self,
        env: SimEnv,
        link: LinkSpec,
        client_machine: MachineSpec,
        server_machine: MachineSpec,
        profile: RuntimeProfile,
    ) -> Self {
        self.env = Some(env);
        self.link = link;
        self.client_machine = client_machine;
        self.server_machine = server_machine;
        self.profile = profile;
        self
    }

    /// Launches the server thread and returns the connected session.
    pub fn build(self) -> Session {
        let (client_t, mut server_t) = channel_pair(self.env.clone(), self.link);
        let mut server = ServerNode::new(self.registry.clone(), self.server_machine);
        if let Some(env) = &self.env {
            server.state.env = Some(env.clone());
            server.state.profile = self.profile;
        }
        for (name, service) in self.services {
            server.bind(name, service);
        }
        for (class, service) in self.class_services {
            server.bind_class(class, service);
        }
        let handle = std::thread::spawn(move || {
            // Orderly disconnects end the loop; a protocol error from a
            // misbehaving peer also ends it (the node is returned for
            // inspection either way).
            let _ = serve_connection(&mut server, &mut server_t);
            server
        });
        let mut client = ClientNode::new(self.registry, self.client_machine);
        if let Some(env) = &self.env {
            client.state.env = Some(env.clone());
            client.state.profile = self.profile;
        }
        Session {
            client,
            transport: client_t,
            server_thread: Some(handle),
            tracer: crate::trace::Tracer::new(),
        }
    }
}

/// A connected client with its in-process server.
///
/// ```
/// use nrmi_core::{FnService, Session};
/// use nrmi_heap::{ClassRegistry, Value};
///
/// # fn main() -> Result<(), nrmi_core::NrmiError> {
/// let reg = ClassRegistry::new();
/// let mut session = Session::builder(reg.snapshot())
///     .serve(
///         "adder",
///         Box::new(FnService::new(|_m, args, _h| {
///             let (a, b) = (args[0].as_int().unwrap_or(0), args[1].as_int().unwrap_or(0));
///             Ok(Value::Int(a + b))
///         })),
///     )
///     .build();
/// let sum = session.call("adder", "add", &[Value::Int(2), Value::Int(40)])?;
/// assert_eq!(sum, Value::Int(42));
/// # Ok(())
/// # }
/// ```
pub struct Session {
    client: ClientNode,
    transport: ChannelTransport,
    server_thread: Option<JoinHandle<ServerNode>>,
    tracer: crate::trace::Tracer,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("client", &self.client)
            .finish()
    }
}

impl Session {
    /// Starts configuring a session over a shared class registry.
    pub fn builder(registry: SharedRegistry) -> SessionBuilder {
        SessionBuilder {
            registry,
            services: Vec::new(),
            class_services: Vec::new(),
            env: None,
            link: LinkSpec::free(),
            client_machine: MachineSpec::fast(),
            server_machine: MachineSpec::slow(),
            profile: RuntimeProfile::default(),
        }
    }

    /// The client-side heap (where applications build argument graphs).
    pub fn heap(&mut self) -> &mut Heap {
        &mut self.client.state.heap
    }

    /// The client node (heap plus export/stub tables).
    pub fn client(&mut self) -> &mut ClientNode {
        &mut self.client
    }

    /// Invokes a remote method with marker-driven semantics
    /// ([`CallOptions::auto`]).
    ///
    /// # Errors
    /// Marshalling, transport, protocol, and remote-exception failures.
    pub fn call(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_with(service, method, args, CallOptions::auto())
    }

    /// Invokes a remote method with explicit options.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call_with(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, NrmiError> {
        self.call_with_stats(service, method, args, opts)
            .map(|(v, _)| v)
    }

    /// Invokes a remote method and returns per-call statistics alongside
    /// the result.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call_with_stats(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<(Value, CallStats), NrmiError> {
        let started = std::time::Instant::now();
        let result = client_invoke_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
            opts,
        );
        if self.tracer.is_enabled() {
            let (error, stats) = match &result {
                Ok((_, stats)) => (None, *stats),
                Err(e) => (Some(e.to_string()), CallStats::default()),
            };
            self.tracer.record(
                format!("{service}.{method}"),
                opts,
                error,
                stats,
                started.elapsed(),
            );
        }
        result
    }

    /// Invokes a remote method through the warm-call protocol: the first
    /// call per service seeds a server-side cache of the argument graph;
    /// later calls ship only a request delta (objects mutated, freed, or
    /// newly reachable since the previous call). Semantics are full
    /// copy-restore with delta replies. See [`crate::warm`].
    ///
    /// # Errors
    /// As [`Session::call`]; any error retires the session cache, so the
    /// next call reseeds.
    pub fn call_warm(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_warm_with_stats(service, method, args)
            .map(|(v, _)| v)
    }

    /// [`Session::call_warm`] returning per-call statistics (request and
    /// reply bytes reflect the delta sizes).
    ///
    /// # Errors
    /// As [`Session::call_warm`].
    pub fn call_warm_with_stats(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<(Value, CallStats), NrmiError> {
        let started = std::time::Instant::now();
        let result = crate::warm::client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
        );
        if self.tracer.is_enabled() {
            let (error, stats) = match &result {
                Ok((_, stats)) => (None, *stats),
                Err(e) => (Some(e.to_string()), CallStats::default()),
            };
            self.tracer.record(
                format!("{service}.{method}"),
                CallOptions::copy_restore_delta(),
                error,
                stats,
                started.elapsed(),
            );
        }
        result
    }

    /// Retires the warm session for `service`: drops the client cache
    /// and tells the server to free its cached graph. A no-op if no
    /// session is established.
    ///
    /// # Errors
    /// Transport failures sending the eviction notice.
    pub fn evict_warm(&mut self, service: &str) -> Result<(), NrmiError> {
        crate::warm::client_evict_warm(&mut self.client, &mut self.transport, service)
    }

    /// The generation the next warm call to `service` will carry
    /// (`None` before the first call and after eviction; 1 right after
    /// seeding; +1 per completed warm call).
    pub fn warm_generation(&self, service: &str) -> Option<u64> {
        self.client.warm.generation(service)
    }

    /// Starts recording a [`CallTrace`](crate::trace::CallTrace) per
    /// invocation; inspect with [`Session::tracer`].
    pub fn enable_tracing(&mut self) {
        self.tracer.enable();
    }

    /// The session's call log.
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.tracer
    }

    /// Mutable access to the call log (e.g. to clear it between phases).
    pub fn tracer_mut(&mut self) -> &mut crate::trace::Tracer {
        &mut self.tracer
    }

    /// Invokes a method ON a remote object this client holds a stub for
    /// (obtained from an earlier call's return value or a marshalled
    /// graph) — the RMI factory pattern: look up a factory service, get
    /// back a remote object, call methods on it directly.
    ///
    /// # Errors
    /// [`NrmiError::InvalidArgument`] if `stub` is not a stub; the usual
    /// call failures otherwise.
    pub fn call_on(
        &mut self,
        stub: ObjId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_on_with(stub, method, args, CallOptions::auto())
    }

    /// [`Session::call_on`] with explicit options.
    ///
    /// # Errors
    /// As [`Session::call_on`].
    pub fn call_on_with(
        &mut self,
        stub: ObjId,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, NrmiError> {
        let started = std::time::Instant::now();
        let result = client_invoke_on_object_with_stats(
            &mut self.client,
            &mut self.transport,
            stub,
            method,
            args,
            opts,
        );
        if self.tracer.is_enabled() {
            let (error, stats) = match &result {
                Ok((_, stats)) => (None, *stats),
                Err(e) => (Some(e.to_string()), CallStats::default()),
            };
            self.tracer.record(
                format!("{stub}.{method}"),
                opts,
                error,
                stats,
                started.elapsed(),
            );
        }
        result.map(|(v, _)| v)
    }

    /// Queries the server's registry for `name` (the `Naming.lookup`
    /// analogue).
    ///
    /// # Errors
    /// Transport failures or protocol violations.
    pub fn lookup(&mut self, name: &str) -> Result<bool, NrmiError> {
        self.transport.send(&Frame::Lookup {
            name: name.to_owned(),
        })?;
        match self.transport.recv()? {
            Frame::LookupReply { found } => Ok(found),
            other => Err(NrmiError::Protocol(format!(
                "expected LookupReply, got {other:?}"
            ))),
        }
    }

    /// Releases a stub held by the client: sends the DGC clean message
    /// for its key and drops the local stub object. The analogue of the
    /// client-side GC detecting an unreachable remote reference.
    ///
    /// # Errors
    /// Transport failures, or heap errors if `stub` is not a live stub.
    pub fn release_stub(&mut self, stub: ObjId) -> Result<(), NrmiError> {
        let key = self
            .client
            .state
            .heap
            .stub_key(stub)?
            .ok_or_else(|| NrmiError::InvalidArgument(format!("{stub} is not a stub")))?;
        self.transport.send(&Frame::DgcClean { key })?;
        self.client.state.stubs.remove(&key);
        self.client.state.heap.free(stub)?;
        Ok(())
    }

    /// Runs a client-side garbage collection: everything unreachable
    /// from `roots` (plus objects pinned by the peer's stubs, which are
    /// GC roots) is freed, and a DGC clean message is sent for every
    /// stub that became unreachable — the full RMI DGC loop. Returns
    /// `(objects_freed, cleans_sent)`.
    ///
    /// Acyclic cross-heap garbage is reclaimed by this mechanism;
    /// distributed *cycles* are not (each side's stub is pinned by the
    /// other side's object), which is exactly the paper's Table 6 leak.
    ///
    /// # Errors
    /// Transport failures while sending cleans; heap errors.
    pub fn collect_garbage(&mut self, roots: &[ObjId]) -> Result<(usize, usize), NrmiError> {
        let state = &mut self.client.state;
        // Objects the PEER holds references to must survive local GC.
        let mut gc_roots: Vec<ObjId> = roots.to_vec();
        gc_roots.extend(state.exports.roots());
        let mut reachable = DenseObjSet::new();
        for &id in LinearMap::build(&state.heap, &gc_roots)?.order() {
            reachable.insert(id);
        }
        // Unreachable stubs: release the peer's export before freeing.
        let doomed: Vec<(u64, ObjId)> = state
            .stubs
            .iter()
            .filter(|(_, stub)| !reachable.contains(**stub))
            .map(|(&key, &stub)| (key, stub))
            .collect();
        let mut cleans = 0;
        for (key, stub) in doomed {
            self.transport.send(&Frame::DgcClean { key })?;
            self.client.state.stubs.remove(&key);
            cleans += 1;
            let _ = stub; // freed by the sweep below
        }
        let freed = nrmi_heap::gc::mark_sweep(&mut self.client.state.heap, &gc_roots)?;
        Ok((freed, cleans))
    }

    /// Shuts the server down and returns its final state for inspection
    /// (tests assert on server heaps, export tables, and statistics).
    ///
    /// # Errors
    /// Transport failures during shutdown; a panicked server thread.
    pub fn shutdown(mut self) -> Result<ServerNode, NrmiError> {
        self.transport.send(&Frame::Shutdown)?;
        let handle = self.server_thread.take().expect("shutdown called once");
        handle
            .join()
            .map_err(|_| NrmiError::Protocol("server thread panicked".into()))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(handle) = self.server_thread.take() {
            let _ = self.transport.send(&Frame::Shutdown);
            let _ = handle.join();
        }
    }
}

/// Serves connections accepted from `listener` until `max_connections`
/// have been handled (servers in examples/tests typically serve one).
/// Each connection runs the full protocol against the same server node —
/// sequential, like a single-threaded RMI dispatch queue.
///
/// # Errors
/// Socket or protocol failures.
pub fn serve_tcp(
    server: &mut ServerNode,
    listener: &TcpListenerTransport,
    max_connections: usize,
) -> Result<(), NrmiError> {
    for _ in 0..max_connections {
        let mut transport = listener.accept()?;
        serve_connection(server, &mut transport)?;
    }
    Ok(())
}

/// Serves `max_connections` connections **concurrently**: each accepted
/// client gets its own thread, all dispatching into one shared
/// [`ServerNode`] (per-request locking). Returns the server node once
/// every connection has ended.
///
/// # Errors
/// Socket failures on accept; per-connection protocol errors end that
/// connection only.
pub fn serve_tcp_concurrent(
    server: ServerNode,
    listener: &TcpListenerTransport,
    max_connections: usize,
) -> Result<ServerNode, NrmiError> {
    let shared = parking_lot::Mutex::new(server);
    std::thread::scope(|scope| -> Result<(), NrmiError> {
        for _ in 0..max_connections {
            let mut transport = listener.accept()?;
            let shared = &shared;
            scope.spawn(move || {
                let _ = crate::protocol::serve_connection_shared(shared, &mut transport);
            });
        }
        Ok(())
    })?;
    Ok(shared.into_inner())
}

/// A client connected over an arbitrary [`Transport`] — the generic twin
/// of [`Session`] for real sockets (TCP, Unix-domain) or custom pipes.
pub struct RemoteSession<T: Transport> {
    client: ClientNode,
    transport: T,
}

/// A client connected over TCP.
pub type TcpSession = RemoteSession<TcpTransport>;

impl<T: Transport> std::fmt::Debug for RemoteSession<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSession").finish()
    }
}

impl Session {
    /// Connects a TCP client to a server reachable at `addr`.
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect_tcp(
        registry: SharedRegistry,
        addr: impl std::net::ToSocketAddrs,
    ) -> Result<TcpSession, NrmiError> {
        let transport = TcpTransport::connect(addr)?;
        Ok(RemoteSession::over(registry, transport))
    }

    /// Connects a TCP client with at-most-once call delivery: every call
    /// is stamped with a call id and retried per `policy` — the server
    /// suppresses duplicates from its reply cache, and lost connections
    /// re-dial transparently.
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect_tcp_reliable(
        registry: SharedRegistry,
        addr: impl std::net::ToSocketAddrs,
        policy: crate::reliable::RetryPolicy,
    ) -> Result<RemoteSession<crate::reliable::ReliableTransport<TcpTransport>>, NrmiError> {
        let transport = TcpTransport::connect(addr)?;
        Ok(RemoteSession::over(
            registry,
            crate::reliable::ReliableTransport::new(transport, policy),
        ))
    }

    /// Connects over a Unix-domain socket with at-most-once call
    /// delivery (see [`Session::connect_tcp_reliable`]).
    ///
    /// # Errors
    /// Socket failures.
    #[cfg(unix)]
    pub fn connect_uds_reliable(
        registry: SharedRegistry,
        path: impl AsRef<std::path::Path>,
        policy: crate::reliable::RetryPolicy,
    ) -> Result<
        RemoteSession<crate::reliable::ReliableTransport<nrmi_transport::UdsTransport>>,
        NrmiError,
    > {
        let transport = nrmi_transport::UdsTransport::connect(path)?;
        Ok(RemoteSession::over(
            registry,
            crate::reliable::ReliableTransport::new(transport, policy),
        ))
    }

    /// Connects over a Unix-domain socket at `path`.
    ///
    /// # Errors
    /// Socket failures.
    #[cfg(unix)]
    pub fn connect_uds(
        registry: SharedRegistry,
        path: impl AsRef<std::path::Path>,
    ) -> Result<RemoteSession<nrmi_transport::UdsTransport>, NrmiError> {
        let transport = nrmi_transport::UdsTransport::connect(path)?;
        Ok(RemoteSession::over(registry, transport))
    }
}

impl<T: Transport> RemoteSession<T> {
    /// Wraps an already-connected transport as a client session.
    pub fn over(registry: SharedRegistry, transport: T) -> Self {
        RemoteSession {
            client: ClientNode::new(registry, MachineSpec::fast()),
            transport,
        }
    }

    /// The client-side heap.
    pub fn heap(&mut self) -> &mut Heap {
        &mut self.client.state.heap
    }

    /// The client node (heap plus export/stub tables).
    pub fn client(&mut self) -> &mut ClientNode {
        &mut self.client
    }

    /// Invokes a remote method with marker-driven semantics.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_with(service, method, args, CallOptions::auto())
    }

    /// Invokes a remote method with explicit options.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call_with(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, NrmiError> {
        client_invoke_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
            opts,
        )
        .map(|(v, _)| v)
    }

    /// Invokes a method on a remote object this client holds a stub for.
    ///
    /// # Errors
    /// As [`Session::call_on`].
    pub fn call_on(
        &mut self,
        stub: ObjId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        client_invoke_on_object_with_stats(
            &mut self.client,
            &mut self.transport,
            stub,
            method,
            args,
            CallOptions::auto(),
        )
        .map(|(v, _)| v)
    }

    /// Invokes a remote method through the warm-call protocol
    /// (see [`Session::call_warm`]).
    ///
    /// # Errors
    /// As [`Session::call_warm`].
    pub fn call_warm(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        crate::warm::client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
        )
        .map(|(v, _)| v)
    }

    /// [`RemoteSession::call_warm`] returning per-call statistics.
    ///
    /// # Errors
    /// As [`Session::call_warm`].
    pub fn call_warm_with_stats(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<(Value, CallStats), NrmiError> {
        crate::warm::client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
        )
    }

    /// Retires the warm session for `service`
    /// (see [`Session::evict_warm`]).
    ///
    /// # Errors
    /// Transport failures sending the eviction notice.
    pub fn evict_warm(&mut self, service: &str) -> Result<(), NrmiError> {
        crate::warm::client_evict_warm(&mut self.client, &mut self.transport, service)
    }

    /// The generation the next warm call to `service` will carry.
    pub fn warm_generation(&self, service: &str) -> Option<u64> {
        self.client.warm.generation(service)
    }

    /// Ends the connection (the server moves on to its next client).
    ///
    /// # Errors
    /// Socket failures.
    pub fn close(mut self) -> Result<(), NrmiError> {
        self.transport.send(&Frame::Shutdown)?;
        Ok(())
    }
}
