//! In-process client/server sessions: the main entry point for
//! applications, tests, and benchmarks.
//!
//! A [`Session`] spawns the server on its own thread, connected to the
//! client by an in-process channel transport (optionally accounting
//! simulated time). TCP helpers ([`serve_tcp`], [`Session::connect_tcp`])
//! run the identical protocol across real sockets for genuine
//! distribution.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nrmi_heap::{DenseObjSet, Heap, LinearMap, ObjId, SharedRegistry, Value};
use nrmi_transport::{
    channel_pair, ChannelTransport, Frame, LinkSpec, Listener, MachineSpec, SimEnv,
    TcpListenerTransport, TcpTransport, Transport, TransportError,
};

use crate::error::NrmiError;
use crate::lockcheck::{LockClass, TrackedMutex};
use crate::node::{ClientNode, ServerNode};
use crate::profile::RuntimeProfile;
use crate::protocol::{
    client_invoke_on_object_with_stats, client_invoke_pipelined, client_invoke_with_stats,
    serve_connection, CallStats, PipelinedCall,
};
use crate::semantics::CallOptions;
use crate::service::RemoteService;

/// Configures and launches a [`Session`].
pub struct SessionBuilder {
    registry: SharedRegistry,
    services: Vec<(String, Box<dyn RemoteService>)>,
    class_services: Vec<(nrmi_heap::ClassId, Box<dyn RemoteService>)>,
    env: Option<SimEnv>,
    link: LinkSpec,
    client_machine: MachineSpec,
    server_machine: MachineSpec,
    profile: RuntimeProfile,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("services", &self.services.len())
            .field("link", &self.link)
            .finish()
    }
}

impl SessionBuilder {
    /// Binds `service` under `name` on the server.
    pub fn serve(mut self, name: impl Into<String>, service: Box<dyn RemoteService>) -> Self {
        self.services.push((name.into(), service));
        self
    }

    /// Binds `service` as the behavior of remote-marked `class` on the
    /// server: method calls on exported instances (via
    /// [`Session::call_on`]) dispatch to it with the receiver prepended
    /// as `args[0]`.
    pub fn serve_class(
        mut self,
        class: nrmi_heap::ClassId,
        service: Box<dyn RemoteService>,
    ) -> Self {
        self.class_services.push((class, service));
        self
    }

    /// Enables simulated-time accounting: transfers over `link`, CPU on
    /// the given machines, middleware costs from `profile`.
    pub fn simulated(
        mut self,
        env: SimEnv,
        link: LinkSpec,
        client_machine: MachineSpec,
        server_machine: MachineSpec,
        profile: RuntimeProfile,
    ) -> Self {
        self.env = Some(env);
        self.link = link;
        self.client_machine = client_machine;
        self.server_machine = server_machine;
        self.profile = profile;
        self
    }

    /// Launches the server thread and returns the connected session.
    pub fn build(self) -> Session {
        let (client_t, mut server_t) = channel_pair(self.env.clone(), self.link);
        let mut server = ServerNode::new(self.registry.clone(), self.server_machine);
        if let Some(env) = &self.env {
            server.state.env = Some(env.clone());
            server.state.profile = self.profile;
        }
        for (name, service) in self.services {
            server.bind(name, service);
        }
        for (class, service) in self.class_services {
            server.bind_class(class, service);
        }
        let handle = std::thread::spawn(move || {
            // Orderly disconnects end the loop with Ok; a protocol error
            // from a misbehaving peer also ends it. Either way the node
            // is returned for inspection, and the serve result rides
            // along so `shutdown` can surface what ended the loop
            // instead of swallowing it.
            let result = serve_connection(&mut server, &mut server_t);
            (server, result)
        });
        let mut client = ClientNode::new(self.registry, self.client_machine);
        if let Some(env) = &self.env {
            client.state.env = Some(env.clone());
            client.state.profile = self.profile;
        }
        Session {
            client,
            transport: client_t,
            server_thread: Some(handle),
            tracer: crate::trace::Tracer::new(),
        }
    }
}

/// A connected client with its in-process server.
///
/// ```
/// use nrmi_core::{FnService, Session};
/// use nrmi_heap::{ClassRegistry, Value};
///
/// # fn main() -> Result<(), nrmi_core::NrmiError> {
/// let reg = ClassRegistry::new();
/// let mut session = Session::builder(reg.snapshot())
///     .serve(
///         "adder",
///         Box::new(FnService::new(|_m, args, _h| {
///             let (a, b) = (args[0].as_int().unwrap_or(0), args[1].as_int().unwrap_or(0));
///             Ok(Value::Int(a + b))
///         })),
///     )
///     .build();
/// let sum = session.call("adder", "add", &[Value::Int(2), Value::Int(40)])?;
/// assert_eq!(sum, Value::Int(42));
/// # Ok(())
/// # }
/// ```
pub struct Session {
    client: ClientNode,
    transport: ChannelTransport,
    server_thread: Option<JoinHandle<(ServerNode, Result<(), NrmiError>)>>,
    tracer: crate::trace::Tracer,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("client", &self.client)
            .finish()
    }
}

impl Session {
    /// Starts configuring a session over a shared class registry.
    pub fn builder(registry: SharedRegistry) -> SessionBuilder {
        SessionBuilder {
            registry,
            services: Vec::new(),
            class_services: Vec::new(),
            env: None,
            link: LinkSpec::free(),
            client_machine: MachineSpec::fast(),
            server_machine: MachineSpec::slow(),
            profile: RuntimeProfile::default(),
        }
    }

    /// The client-side heap (where applications build argument graphs).
    pub fn heap(&mut self) -> &mut Heap {
        &mut self.client.state.heap
    }

    /// The client node (heap plus export/stub tables).
    pub fn client(&mut self) -> &mut ClientNode {
        &mut self.client
    }

    /// Invokes a remote method with marker-driven semantics
    /// ([`CallOptions::auto`]).
    ///
    /// # Errors
    /// Marshalling, transport, protocol, and remote-exception failures.
    pub fn call(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_with(service, method, args, CallOptions::auto())
    }

    /// Invokes a remote method with explicit options.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call_with(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, NrmiError> {
        self.call_with_stats(service, method, args, opts)
            .map(|(v, _)| v)
    }

    /// Invokes a remote method and returns per-call statistics alongside
    /// the result.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call_with_stats(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<(Value, CallStats), NrmiError> {
        let started = std::time::Instant::now();
        let result = client_invoke_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
            opts,
        );
        if self.tracer.is_enabled() {
            let (error, stats) = match &result {
                Ok((_, stats)) => (None, *stats),
                Err(e) => (Some(e.to_string()), CallStats::default()),
            };
            self.tracer.record(
                format!("{service}.{method}"),
                opts,
                error,
                stats,
                started.elapsed(),
            );
        }
        result
    }

    /// Issues a batch of calls back to back on the connection before
    /// collecting any reply — pipelining: one network round trip of
    /// latency is paid for the whole batch instead of per call. Results
    /// come back in issue order, each slot carrying its own outcome
    /// (a remote exception or per-call deadline failure in one slot
    /// does not poison its neighbors).
    ///
    /// Remote-reference calls cannot be batched (their mid-call
    /// callbacks interleave with the reply stream); see
    /// [`client_invoke_pipelined`].
    ///
    /// # Errors
    /// Marshalling failures, transport loss, and protocol violations
    /// fail the whole batch; per-call failures come back in that call's
    /// slot.
    pub fn call_pipelined(
        &mut self,
        calls: &[PipelinedCall],
    ) -> Result<Vec<Result<Value, NrmiError>>, NrmiError> {
        client_invoke_pipelined(&mut self.client, &mut self.transport, calls)
    }

    /// Invokes a remote method through the warm-call protocol: the first
    /// call per service seeds a server-side cache of the argument graph;
    /// later calls ship only a request delta (objects mutated, freed, or
    /// newly reachable since the previous call). Semantics are full
    /// copy-restore with delta replies. See [`crate::warm`].
    ///
    /// # Errors
    /// As [`Session::call`]; any error retires the session cache, so the
    /// next call reseeds.
    pub fn call_warm(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_warm_with_stats(service, method, args)
            .map(|(v, _)| v)
    }

    /// [`Session::call_warm`] returning per-call statistics (request and
    /// reply bytes reflect the delta sizes).
    ///
    /// # Errors
    /// As [`Session::call_warm`].
    pub fn call_warm_with_stats(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<(Value, CallStats), NrmiError> {
        let started = std::time::Instant::now();
        let result = crate::warm::client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
        );
        if self.tracer.is_enabled() {
            let (error, stats) = match &result {
                Ok((_, stats)) => (None, *stats),
                Err(e) => (Some(e.to_string()), CallStats::default()),
            };
            self.tracer.record(
                format!("{service}.{method}"),
                CallOptions::copy_restore_delta(),
                error,
                stats,
                started.elapsed(),
            );
        }
        result
    }

    /// Retires the warm session for `service`: drops the client cache
    /// and tells the server to free its cached graph. A no-op if no
    /// session is established.
    ///
    /// # Errors
    /// Transport failures sending the eviction notice.
    pub fn evict_warm(&mut self, service: &str) -> Result<(), NrmiError> {
        crate::warm::client_evict_warm(&mut self.client, &mut self.transport, service)
    }

    /// The generation the next warm call to `service` will carry
    /// (`None` before the first call and after eviction; 1 right after
    /// seeding; +1 per completed warm call).
    pub fn warm_generation(&self, service: &str) -> Option<u64> {
        self.client.warm.generation(service)
    }

    /// Starts recording a [`CallTrace`](crate::trace::CallTrace) per
    /// invocation; inspect with [`Session::tracer`].
    pub fn enable_tracing(&mut self) {
        self.tracer.enable();
    }

    /// The session's call log.
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.tracer
    }

    /// Mutable access to the call log (e.g. to clear it between phases).
    pub fn tracer_mut(&mut self) -> &mut crate::trace::Tracer {
        &mut self.tracer
    }

    /// Invokes a method ON a remote object this client holds a stub for
    /// (obtained from an earlier call's return value or a marshalled
    /// graph) — the RMI factory pattern: look up a factory service, get
    /// back a remote object, call methods on it directly.
    ///
    /// # Errors
    /// [`NrmiError::InvalidArgument`] if `stub` is not a stub; the usual
    /// call failures otherwise.
    pub fn call_on(
        &mut self,
        stub: ObjId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_on_with(stub, method, args, CallOptions::auto())
    }

    /// [`Session::call_on`] with explicit options.
    ///
    /// # Errors
    /// As [`Session::call_on`].
    pub fn call_on_with(
        &mut self,
        stub: ObjId,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, NrmiError> {
        let started = std::time::Instant::now();
        let result = client_invoke_on_object_with_stats(
            &mut self.client,
            &mut self.transport,
            stub,
            method,
            args,
            opts,
        );
        if self.tracer.is_enabled() {
            let (error, stats) = match &result {
                Ok((_, stats)) => (None, *stats),
                Err(e) => (Some(e.to_string()), CallStats::default()),
            };
            self.tracer.record(
                format!("{stub}.{method}"),
                opts,
                error,
                stats,
                started.elapsed(),
            );
        }
        result.map(|(v, _)| v)
    }

    /// Queries the server's registry for `name` (the `Naming.lookup`
    /// analogue).
    ///
    /// # Errors
    /// Transport failures or protocol violations.
    pub fn lookup(&mut self, name: &str) -> Result<bool, NrmiError> {
        self.transport.send(&Frame::Lookup {
            name: name.to_owned(),
        })?;
        match self.transport.recv()? {
            Frame::LookupReply { found } => Ok(found),
            other => Err(NrmiError::Protocol(format!(
                "expected LookupReply, got {other:?}"
            ))),
        }
    }

    /// Releases a stub held by the client: sends the DGC clean message
    /// for its key and drops the local stub object. The analogue of the
    /// client-side GC detecting an unreachable remote reference.
    ///
    /// # Errors
    /// Transport failures, or heap errors if `stub` is not a live stub.
    pub fn release_stub(&mut self, stub: ObjId) -> Result<(), NrmiError> {
        let key = self
            .client
            .state
            .heap
            .stub_key(stub)?
            .ok_or_else(|| NrmiError::InvalidArgument(format!("{stub} is not a stub")))?;
        self.transport.send(&Frame::DgcClean { key })?;
        self.client.state.stubs.remove(&key);
        self.client.state.heap.free(stub)?;
        Ok(())
    }

    /// Runs a client-side garbage collection: everything unreachable
    /// from `roots` (plus objects pinned by the peer's stubs, which are
    /// GC roots) is freed, and a DGC clean message is sent for every
    /// stub that became unreachable — the full RMI DGC loop. Returns
    /// `(objects_freed, cleans_sent)`.
    ///
    /// Acyclic cross-heap garbage is reclaimed by this mechanism;
    /// distributed *cycles* are not (each side's stub is pinned by the
    /// other side's object), which is exactly the paper's Table 6 leak.
    ///
    /// # Errors
    /// Transport failures while sending cleans; heap errors.
    pub fn collect_garbage(&mut self, roots: &[ObjId]) -> Result<(usize, usize), NrmiError> {
        let state = &mut self.client.state;
        // Objects the PEER holds references to must survive local GC.
        let mut gc_roots: Vec<ObjId> = roots.to_vec();
        gc_roots.extend(state.exports.roots());
        let mut reachable = DenseObjSet::new();
        for &id in LinearMap::build(&state.heap, &gc_roots)?.order() {
            reachable.insert(id);
        }
        // Unreachable stubs: release the peer's export before freeing.
        let doomed: Vec<(u64, ObjId)> = state
            .stubs
            .iter()
            .filter(|(_, stub)| !reachable.contains(**stub))
            .map(|(&key, &stub)| (key, stub))
            .collect();
        let mut cleans = 0;
        for (key, stub) in doomed {
            self.transport.send(&Frame::DgcClean { key })?;
            self.client.state.stubs.remove(&key);
            cleans += 1;
            let _ = stub; // freed by the sweep below
        }
        let freed = nrmi_heap::gc::mark_sweep(&mut self.client.state.heap, &gc_roots)?;
        Ok((freed, cleans))
    }

    /// Shuts the server down and returns its final state for inspection
    /// (tests assert on server heaps, export tables, and statistics).
    ///
    /// # Errors
    /// Transport failures during shutdown; a panicked server thread; the
    /// error that ended the serve loop, if it ended on one (a protocol
    /// violation mid-session would otherwise be silently discarded —
    /// the pooled path surfaces worker failures the same way).
    pub fn shutdown(mut self) -> Result<ServerNode, NrmiError> {
        // If the serve loop already ended (say, on a protocol error),
        // the channel is closed and this send fails; hold the result so
        // the serve error below isn't masked by the failed goodbye.
        let sent = self.transport.send(&Frame::Shutdown);
        let handle = self.server_thread.take().expect("shutdown called once");
        match handle.join() {
            Ok((node, Ok(()))) => {
                sent?;
                Ok(node)
            }
            Ok((_, Err(e))) => Err(e),
            Err(_) => Err(NrmiError::Protocol("server thread panicked".into())),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if let Some(handle) = self.server_thread.take() {
            let _ = self.transport.send(&Frame::Shutdown);
            let _ = handle.join();
        }
    }
}

/// Serves connections accepted from `listener` until `max_connections`
/// have been handled (servers in examples/tests typically serve one).
/// Each connection runs the full protocol against the same server node —
/// sequential, like a single-threaded RMI dispatch queue.
///
/// # Errors
/// Socket or protocol failures.
pub fn serve_tcp(
    server: &mut ServerNode,
    listener: &TcpListenerTransport,
    max_connections: usize,
) -> Result<(), NrmiError> {
    for _ in 0..max_connections {
        let mut transport = listener.accept()?;
        serve_connection(server, &mut transport)?;
    }
    Ok(())
}

/// Serves `max_connections` connections **concurrently** over the
/// lock-split [`SharedServer`](crate::server::SharedServer), then
/// returns the server node once every connection has ended. A
/// compatibility wrapper over [`ServerPool`] for callers that know
/// their connection count up front; everyone else should hold a
/// [`ServeHandle`] and call [`ServeHandle::shutdown`] when done.
///
/// # Errors
/// Socket failures on accept (surfaced after in-flight connections
/// drain, without tearing them down); per-connection protocol errors
/// end that connection only.
pub fn serve_tcp_concurrent(
    server: ServerNode,
    listener: TcpListenerTransport,
    max_connections: usize,
) -> Result<ServerNode, NrmiError> {
    ServerPool::new()
        .max_live_connections(max_connections.max(1))
        .max_total_connections(max_connections)
        .serve(server, listener)
        .join()
}

/// Configures and launches a multi-client serve loop: an accept thread
/// plus one worker thread per live connection, all dispatching into the
/// lock-split [`SharedServer`](crate::server::SharedServer) — no
/// one-big-lock [`ServerNode`], so independent clients execute
/// concurrently and a client stalled mid-call cannot freeze the others.
///
/// ```no_run
/// use nrmi_core::{ServerNode, ServerPool};
/// use nrmi_transport::TcpListenerTransport;
/// # use nrmi_heap::ClassRegistry;
/// # use nrmi_transport::MachineSpec;
/// # fn main() -> Result<(), nrmi_core::NrmiError> {
/// # let server = ServerNode::new(ClassRegistry::new().snapshot(), MachineSpec::fast());
/// let listener = TcpListenerTransport::bind("127.0.0.1:0")?;
/// let handle = ServerPool::new().serve(server, listener);
/// // ... clients come and go ...
/// let server = handle.shutdown()?; // unblocks accept, drains workers
/// # let _ = server; Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ServerPool {
    max_live: usize,
    max_total: Option<usize>,
    accept_poll: Duration,
    reactor_workers: usize,
}

impl Default for ServerPool {
    fn default() -> Self {
        ServerPool::new()
    }
}

const REACTOR_WORKER_DEFAULT: usize = crate::reactor::REACTOR_WORKERS;

impl ServerPool {
    /// Default configuration: up to 64 live connections, no total
    /// limit, shutdown flag polled every 25 ms.
    pub fn new() -> Self {
        ServerPool {
            max_live: 64,
            max_total: None,
            accept_poll: Duration::from_millis(25),
            reactor_workers: REACTOR_WORKER_DEFAULT,
        }
    }

    /// Caps concurrently served connections; the accept loop waits
    /// (leaving further clients in the listen backlog) while at the cap.
    pub fn max_live_connections(mut self, n: usize) -> Self {
        self.max_live = n.max(1);
        self
    }

    /// Stops accepting after `n` connections in total — the accept loop
    /// then exits on its own and [`ServeHandle::join`] returns once the
    /// last of them disconnects.
    pub fn max_total_connections(mut self, n: usize) -> Self {
        self.max_total = Some(n);
        self
    }

    /// How long each accept wait lasts before the loop rechecks the
    /// shutdown flag — the latency bound on [`ServeHandle::shutdown`]
    /// unblocking `accept`. (The reactor mode needs no poll: its
    /// shutdown wakes the poller directly.)
    pub fn accept_poll(mut self, poll: Duration) -> Self {
        self.accept_poll = poll.max(Duration::from_millis(1));
        self
    }

    /// Worker threads executing cold calls for the whole reactor in
    /// [`ServerPool::serve_reactor`] mode (default 4) — fixed regardless
    /// of connection count. Ignored by thread-per-connection
    /// [`ServerPool::serve`].
    pub fn reactor_workers(mut self, n: usize) -> Self {
        self.reactor_workers = n.max(1);
        self
    }

    /// Splits `server` into shared state, spawns the accept loop on its
    /// own thread, and returns the handle controlling it. Works over
    /// any [`Listener`] (TCP, Unix-domain).
    pub fn serve<L>(self, server: ServerNode, listener: L) -> ServeHandle
    where
        L: Listener + Send + 'static,
    {
        let shared = Arc::new(crate::server::SharedServer::from_node(server));
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));
        let workers: Arc<TrackedMutex<Vec<JoinHandle<()>>>> =
            Arc::new(TrackedMutex::new(LockClass::Control, Vec::new()));
        let accept_error: Arc<TrackedMutex<Option<String>>> =
            Arc::new(TrackedMutex::new(LockClass::Control, None));

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let live = Arc::clone(&live);
            let served = Arc::clone(&served);
            let workers = Arc::clone(&workers);
            let accept_error = Arc::clone(&accept_error);
            std::thread::spawn(move || -> Result<(), NrmiError> {
                let mut accepted = 0usize;
                loop {
                    if stop.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if self.max_total.is_some_and(|n| accepted >= n) {
                        return Ok(());
                    }
                    if live.load(Ordering::SeqCst) >= self.max_live {
                        std::thread::sleep(self.accept_poll);
                        continue;
                    }
                    match listener.accept_timeout(self.accept_poll) {
                        Ok(mut transport) => {
                            accepted += 1;
                            served.fetch_add(1, Ordering::SeqCst);
                            live.fetch_add(1, Ordering::SeqCst);
                            let shared = Arc::clone(&shared);
                            let live = Arc::clone(&live);
                            let worker = std::thread::spawn(move || {
                                // Decrement on every exit path, panics
                                // included, so the accept loop's cap
                                // can't wedge.
                                let _guard = LiveGuard(live);
                                let _ =
                                    crate::server::serve_connection_pooled(&shared, &mut transport);
                            });
                            workers.lock().push(worker);
                        }
                        Err(TransportError::Timeout) => continue,
                        Err(e) => {
                            // An accept failure ends only the accept
                            // loop; live connections keep running. The
                            // message is visible immediately via
                            // `ServeHandle::accept_error`, the error
                            // itself from `join`/`shutdown`.
                            let err = NrmiError::from(e);
                            *accept_error.lock() = Some(err.to_string());
                            return Err(err);
                        }
                    }
                }
            })
        };

        ServeHandle {
            shared: Some(shared),
            stop,
            accept_thread: Some(accept_thread),
            accept_error,
            workers,
            live,
            served,
            #[cfg(unix)]
            waker: None,
        }
    }

    /// Launches the **reactor** serve core instead of a thread per
    /// connection: one event-loop thread owns every socket in
    /// non-blocking mode (a handwritten `poll(2)` loop — see
    /// [`reactor`](crate::reactor)), answering cached/lookup traffic
    /// inline and handing fresh pipelineable cold calls to
    /// [`ServerPool::reactor_workers`] shared worker threads. Exclusive
    /// traffic (warm, object, and remote-reference calls) escalates that
    /// connection to a dedicated blocking thread with PR 5/6 semantics
    /// intact, so the modes are behaviorally interchangeable — this one
    /// holds thousands of mostly-idle connections at a fixed thread
    /// count.
    ///
    /// The returned handle is the same [`ServeHandle`];
    /// [`ServeHandle::shutdown`] wakes the poller directly (no
    /// accept-poll latency).
    ///
    /// # Errors
    /// Failure to construct the poller's wake channel.
    #[cfg(unix)]
    pub fn serve_reactor<L>(self, server: ServerNode, listener: L) -> Result<ServeHandle, NrmiError>
    where
        L: nrmi_transport::PollableListener + Send + 'static,
        L::Conn: nrmi_transport::ReactorIo + Send + 'static,
    {
        let shared = Arc::new(crate::server::SharedServer::from_node(server));
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));
        let workers: Arc<TrackedMutex<Vec<JoinHandle<()>>>> =
            Arc::new(TrackedMutex::new(LockClass::Control, Vec::new()));
        let accept_error: Arc<TrackedMutex<Option<String>>> =
            Arc::new(TrackedMutex::new(LockClass::Control, None));

        let poller = nrmi_transport::Poller::new()?;
        let waker = poller.waker();
        let config = crate::reactor::ReactorConfig {
            workers: self.reactor_workers,
            max_live: self.max_live,
            max_total: self.max_total,
        };
        let ctl = crate::reactor::ReactorShared {
            stop: Arc::clone(&stop),
            live: Arc::clone(&live),
            served: Arc::clone(&served),
            escalated: Arc::clone(&workers),
            accept_error: Arc::clone(&accept_error),
        };
        let reactor_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                crate::reactor::run_reactor(shared, listener, poller, config, ctl)
            })
        };

        Ok(ServeHandle {
            shared: Some(shared),
            stop,
            accept_thread: Some(reactor_thread),
            accept_error,
            workers,
            live,
            served,
            waker: Some(waker),
        })
    }
}

/// Decrements the live-connection counter when a worker exits — by any
/// path, including a panic unwinding through the serve loop.
pub(crate) struct LiveGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Control handle for a running [`ServerPool`]: inspect progress, and
/// end serving with [`ServeHandle::shutdown`] (which unblocks the
/// accept loop — no dummy connection needed) or wait for a configured
/// total-connection limit with [`ServeHandle::join`].
#[derive(Debug)]
pub struct ServeHandle {
    shared: Option<Arc<crate::server::SharedServer>>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<Result<(), NrmiError>>>,
    accept_error: Arc<TrackedMutex<Option<String>>>,
    workers: Arc<TrackedMutex<Vec<JoinHandle<()>>>>,
    live: Arc<AtomicUsize>,
    served: Arc<AtomicUsize>,
    /// `Some` in reactor mode: shutdown wakes the poller out of its
    /// indefinite wait instead of relying on an accept-poll interval.
    #[cfg(unix)]
    waker: Option<nrmi_transport::Waker>,
}

impl ServeHandle {
    /// Connections currently being served.
    pub fn live_connections(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Connections accepted since the pool started.
    pub fn connections_served(&self) -> usize {
        self.served.load(Ordering::SeqCst)
    }

    /// The accept loop's failure message, available the moment the
    /// failure happens — while healthy connections are still being
    /// served. `None` while the loop is healthy (or ended cleanly).
    pub fn accept_error(&self) -> Option<String> {
        self.accept_error.lock().clone()
    }

    /// Stops accepting (the accept loop notices within its poll
    /// interval — no dummy connection required), waits for in-flight
    /// connections to disconnect, and returns the reassembled server
    /// node.
    ///
    /// # Errors
    /// An accept-loop failure recorded before shutdown.
    pub fn shutdown(mut self) -> Result<ServerNode, NrmiError> {
        self.stop.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        self.finish()
    }

    /// Waits for the accept loop to end on its own (a configured
    /// [`ServerPool::max_total_connections`] limit, or an accept
    /// failure) and for every connection to drain, then returns the
    /// server node. Blocks forever on an unlimited pool — use
    /// [`ServeHandle::shutdown`] for those.
    ///
    /// # Errors
    /// The accept loop's failure, surfaced after in-flight connections
    /// drain.
    pub fn join(mut self) -> Result<ServerNode, NrmiError> {
        self.finish()
    }

    fn finish(&mut self) -> Result<ServerNode, NrmiError> {
        let accept_result = self
            .accept_thread
            .take()
            .map(|handle| handle.join())
            .unwrap_or(Ok(Ok(())));
        // The accept thread has exited: no further workers will be
        // registered, so draining the list here joins every connection.
        let handles = std::mem::take(&mut *self.workers.lock());
        let mut worker_panicked = false;
        for handle in handles {
            worker_panicked |= handle.join().is_err();
        }
        let shared = self
            .shared
            .take()
            .expect("finish runs once (shutdown/join consume the handle)");
        let node = match Arc::try_unwrap(shared) {
            Ok(shared) => shared.into_node(),
            Err(_) => {
                return Err(NrmiError::Protocol(
                    "server workers still hold the shared state".into(),
                ))
            }
        };
        match accept_result {
            Ok(Ok(())) if worker_panicked => {
                Err(NrmiError::Protocol("a connection worker panicked".into()))
            }
            Ok(Ok(())) => Ok(node),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(NrmiError::Protocol("accept thread panicked".into())),
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        // Dropping the handle without shutdown/join: tell the accept
        // loop to stop and detach. Joining here could block forever on
        // connections whose clients never disconnect.
        self.stop.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        if let Some(waker) = &self.waker {
            waker.wake();
        }
    }
}

/// A client connected over an arbitrary [`Transport`] — the generic twin
/// of [`Session`] for real sockets (TCP, Unix-domain) or custom pipes.
pub struct RemoteSession<T: Transport> {
    client: ClientNode,
    transport: T,
}

/// A client connected over TCP.
pub type TcpSession = RemoteSession<TcpTransport>;

impl<T: Transport> std::fmt::Debug for RemoteSession<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSession").finish()
    }
}

impl Session {
    /// Connects a TCP client to a server reachable at `addr`.
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect_tcp(
        registry: SharedRegistry,
        addr: impl std::net::ToSocketAddrs,
    ) -> Result<TcpSession, NrmiError> {
        let transport = TcpTransport::connect(addr)?;
        Ok(RemoteSession::over(registry, transport))
    }

    /// Connects a TCP client with at-most-once call delivery: every call
    /// is stamped with a call id and retried per `policy` — the server
    /// suppresses duplicates from its reply cache, and lost connections
    /// re-dial transparently.
    ///
    /// # Errors
    /// Socket failures.
    pub fn connect_tcp_reliable(
        registry: SharedRegistry,
        addr: impl std::net::ToSocketAddrs,
        policy: crate::reliable::RetryPolicy,
    ) -> Result<RemoteSession<crate::reliable::ReliableTransport<TcpTransport>>, NrmiError> {
        let transport = TcpTransport::connect(addr)?;
        Ok(RemoteSession::over(
            registry,
            crate::reliable::ReliableTransport::new(transport, policy),
        ))
    }

    /// Connects over a Unix-domain socket with at-most-once call
    /// delivery (see [`Session::connect_tcp_reliable`]).
    ///
    /// # Errors
    /// Socket failures.
    #[cfg(unix)]
    pub fn connect_uds_reliable(
        registry: SharedRegistry,
        path: impl AsRef<std::path::Path>,
        policy: crate::reliable::RetryPolicy,
    ) -> Result<
        RemoteSession<crate::reliable::ReliableTransport<nrmi_transport::UdsTransport>>,
        NrmiError,
    > {
        let transport = nrmi_transport::UdsTransport::connect(path)?;
        Ok(RemoteSession::over(
            registry,
            crate::reliable::ReliableTransport::new(transport, policy),
        ))
    }

    /// Connects over a Unix-domain socket at `path`.
    ///
    /// # Errors
    /// Socket failures.
    #[cfg(unix)]
    pub fn connect_uds(
        registry: SharedRegistry,
        path: impl AsRef<std::path::Path>,
    ) -> Result<RemoteSession<nrmi_transport::UdsTransport>, NrmiError> {
        let transport = nrmi_transport::UdsTransport::connect(path)?;
        Ok(RemoteSession::over(registry, transport))
    }
}

impl<T: Transport> RemoteSession<T> {
    /// Wraps an already-connected transport as a client session.
    pub fn over(registry: SharedRegistry, transport: T) -> Self {
        RemoteSession {
            client: ClientNode::new(registry, MachineSpec::fast()),
            transport,
        }
    }

    /// The client-side heap.
    pub fn heap(&mut self) -> &mut Heap {
        &mut self.client.state.heap
    }

    /// The client node (heap plus export/stub tables).
    pub fn client(&mut self) -> &mut ClientNode {
        &mut self.client
    }

    /// Invokes a remote method with marker-driven semantics.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        self.call_with(service, method, args, CallOptions::auto())
    }

    /// Invokes a remote method with explicit options.
    ///
    /// # Errors
    /// As [`Session::call`].
    pub fn call_with(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
        opts: CallOptions,
    ) -> Result<Value, NrmiError> {
        client_invoke_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
            opts,
        )
        .map(|(v, _)| v)
    }

    /// Issues a batch of calls back to back before collecting any reply
    /// (see [`Session::call_pipelined`]). Over a reliable transport the
    /// batch is multiplexed by call id, so replies may complete out of
    /// order on the wire and are still delivered in issue order here.
    ///
    /// # Errors
    /// As [`Session::call_pipelined`].
    pub fn call_pipelined(
        &mut self,
        calls: &[PipelinedCall],
    ) -> Result<Vec<Result<Value, NrmiError>>, NrmiError> {
        client_invoke_pipelined(&mut self.client, &mut self.transport, calls)
    }

    /// Invokes a method on a remote object this client holds a stub for.
    ///
    /// # Errors
    /// As [`Session::call_on`].
    pub fn call_on(
        &mut self,
        stub: ObjId,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        client_invoke_on_object_with_stats(
            &mut self.client,
            &mut self.transport,
            stub,
            method,
            args,
            CallOptions::auto(),
        )
        .map(|(v, _)| v)
    }

    /// Invokes a remote method through the warm-call protocol
    /// (see [`Session::call_warm`]).
    ///
    /// # Errors
    /// As [`Session::call_warm`].
    pub fn call_warm(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, NrmiError> {
        crate::warm::client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
        )
        .map(|(v, _)| v)
    }

    /// [`RemoteSession::call_warm`] returning per-call statistics.
    ///
    /// # Errors
    /// As [`Session::call_warm`].
    pub fn call_warm_with_stats(
        &mut self,
        service: &str,
        method: &str,
        args: &[Value],
    ) -> Result<(Value, CallStats), NrmiError> {
        crate::warm::client_invoke_warm_with_stats(
            &mut self.client,
            &mut self.transport,
            service,
            method,
            args,
        )
    }

    /// Retires the warm session for `service`
    /// (see [`Session::evict_warm`]).
    ///
    /// # Errors
    /// Transport failures sending the eviction notice.
    pub fn evict_warm(&mut self, service: &str) -> Result<(), NrmiError> {
        crate::warm::client_evict_warm(&mut self.client, &mut self.transport, service)
    }

    /// The generation the next warm call to `service` will carry.
    pub fn warm_generation(&self, service: &str) -> Option<u64> {
        self.client.warm.generation(service)
    }

    /// Ends the connection (the server moves on to its next client).
    ///
    /// # Errors
    /// Socket failures.
    pub fn close(mut self) -> Result<(), NrmiError> {
        self.transport.send(&Frame::Shutdown)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FnService;
    use nrmi_heap::ClassRegistry;

    fn adder_session() -> Session {
        Session::builder(ClassRegistry::new().snapshot())
            .serve(
                "adder",
                Box::new(FnService::new(|_m, args, _h| {
                    let (a, b) = (args[0].as_int().unwrap_or(0), args[1].as_int().unwrap_or(0));
                    Ok(Value::Int(a + b))
                })),
            )
            .build()
    }

    #[test]
    fn shutdown_returns_the_node_on_clean_exit() {
        let mut session = adder_session();
        let sum = session
            .call("adder", "add", &[Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(sum, Value::Int(3));
        session.shutdown().unwrap();
    }

    #[test]
    fn shutdown_surfaces_the_error_that_ended_the_serve_loop() {
        let mut session = adder_session();
        // A reply frame arriving at the server is a protocol violation.
        // The serve loop errors out; the old code discarded that error
        // and shutdown reported nothing but a dead channel.
        session
            .transport
            .send(&Frame::LookupReply { found: true })
            .unwrap();
        let err = session.shutdown().unwrap_err();
        assert!(
            err.to_string().contains("unexpected frame"),
            "expected the serve loop's protocol error, got: {err}"
        );
    }

    #[test]
    fn call_pipelined_delivers_results_in_issue_order() {
        let mut session = adder_session();
        let calls: Vec<PipelinedCall> = (0..5)
            .map(|i| PipelinedCall::new("adder", "add", vec![Value::Int(i), Value::Int(10 * i)]))
            .collect();
        let results = session.call_pipelined(&calls).unwrap();
        assert_eq!(results.len(), 5);
        for (i, slot) in results.into_iter().enumerate() {
            assert_eq!(slot.unwrap(), Value::Int(11 * i as i32));
        }
        session.shutdown().unwrap();
    }

    #[test]
    fn call_pipelined_isolates_per_call_remote_errors() {
        let mut session = Session::builder(ClassRegistry::new().snapshot())
            .serve(
                "picky",
                Box::new(FnService::new(|_m, args, _h| match args[0].as_int() {
                    Some(n) if n >= 0 => Ok(Value::Int(n)),
                    _ => Err(NrmiError::app("negative input")),
                })),
            )
            .build();
        let calls = vec![
            PipelinedCall::new("picky", "id", vec![Value::Int(7)]),
            PipelinedCall::new("picky", "id", vec![Value::Int(-1)]),
            PipelinedCall::new("picky", "id", vec![Value::Int(9)]),
        ];
        let results = session.call_pipelined(&calls).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &Value::Int(7));
        assert!(
            matches!(results[1], Err(NrmiError::Remote(_))),
            "the failing slot carries its own error: {:?}",
            results[1]
        );
        assert_eq!(results[2].as_ref().unwrap(), &Value::Int(9));
        session.shutdown().unwrap();
    }
}
