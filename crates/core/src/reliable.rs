//! At-most-once delivery: call ids, client retry, and the server reply
//! cache.
//!
//! NRMI's pitch is that a remote call behaves like a local call — but a
//! local call never executes twice. A naive retry after a lost reply
//! re-runs the remote routine, and under copy-restore that re-applies
//! the routine's mutations to the caller's graph: the one failure mode
//! worse than failing. This module closes that hole with the classic
//! at-most-once construction (Birrell & Nelson's RPC, RFC-style
//! request ids):
//!
//! * every call frame is wrapped in [`Frame::Tagged`] with a call id —
//!   a per-session random `nonce` plus a monotone `seq`;
//! * the server remembers the reply for each executed id in a bounded
//!   [`ReplyCache`]; a retransmitted id is answered from the cache
//!   ([`Frame::ReplyCached`]) *without re-executing*;
//! * the client's [`ReliableTransport`] retries per a [`RetryPolicy`]
//!   (deadline, capped exponential backoff with jitter, max attempts)
//!   and transparently reconnects socket transports, so the caller sees
//!   either exactly-once-effect success or a
//!   [`TransportError::DeadlineExceeded`] — never a duplicate effect.
//!
//! The reply cache is byte-capped. When a retransmission arrives for a
//! call whose reply was evicted, the server answers with a definite
//! error ([`REPLY_EVICTED`]) rather than re-executing: at-most-once is
//! preserved at the price of an explicit failure, the same trade RMI's
//! DGC makes under lease expiry. A duplicate that lands on a *second*
//! connection while the original is still executing (a reconnect
//! retransmission) is held off by an in-progress marker
//! ([`ReplyCache::begin`]) — dropped, never run a second time.
//!
//! Retry is sound for the copy semantics (copy, copy-restore, DCE,
//! warm deltas): the request payload is immutable once marshalled, and
//! the effect lands only when a reply is applied. It is *not* offered
//! for remote-reference calls mid-flight callbacks mutate the caller —
//! resending those is application-level replay, which no transport can
//! make safe.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use nrmi_transport::{Frame, Transport, TransportError};

/// Error message a server sends when a retransmitted call already
/// executed but its cached reply was evicted. The effect happened
/// exactly once; only the reply is gone.
pub const REPLY_EVICTED: &str =
    "call executed but its reply was evicted from the at-most-once cache";

/// Client retry schedule for [`ReliableTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Overall per-call budget: once this much wall-clock time has
    /// passed since the request was first sent, the call fails with
    /// [`TransportError::DeadlineExceeded`].
    pub deadline: Duration,
    /// How long to wait for a reply before retransmitting.
    pub attempt_timeout: Duration,
    /// Maximum send attempts (first send included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Randomize each backoff to 50–100% of its nominal value, so a
    /// fleet of clients recovering from one outage does not
    /// retransmit in lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline: Duration::from_secs(30),
            attempt_timeout: Duration::from_secs(2),
            max_attempts: 8,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A fast-failing policy for tests and in-process links: short
    /// waits, no backoff sleep.
    pub fn aggressive() -> Self {
        RetryPolicy {
            deadline: Duration::from_secs(2),
            attempt_timeout: Duration::from_millis(50),
            max_attempts: 6,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        }
    }

    /// Nominal backoff before attempt `attempt + 1` (0-based completed
    /// attempts), jittered into `[half, full]` when enabled.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        let nominal = self
            .base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff);
        if !self.jitter {
            return nominal;
        }
        // 50–100% of nominal, from a self-contained xorshift stream.
        let r = xorshift64(rng) % 512;
        nominal.mul_f64(0.5 + (r as f64) / 1024.0)
    }
}

fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Allocates a session nonce, without pulling in an RNG dependency.
///
/// The nonce mixes two independently keyed `RandomState` (SipHash)
/// outputs over a process-wide counter; the entropy comes from the
/// OS-randomized hasher keys. Within one process, the counter makes
/// nonces distinct. Across processes, collisions are birthday-bounded:
/// two concurrently tracked sessions collide with probability about
/// `n^2 / 2^65`, under one in a billion for tens of thousands of
/// sessions — and the server only tracks the most recent
/// [`DEFAULT_REPLY_CACHE_NONCES`] sessions at all.
///
/// A collision is not a safety hole for execution (seqs still advance
/// per client) but can cross-deliver one client's cached reply — or a
/// spurious [`REPLY_EVICTED`] error — to the other. Deployments that
/// cannot tolerate that at scale should mint nonces from a real CSPRNG
/// (or a connection-scoped identity) and pass them through
/// [`ReliableTransport::with_nonce`].
pub fn fresh_nonce() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x6e72_6d69); // "nrmi"
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut h1 = RandomState::new().build_hasher();
    h1.write_u64(tick);
    let mut h2 = RandomState::new().build_hasher();
    h2.write_u64(tick ^ 0x9e37_79b9_7f4a_7c15);
    let n = h1.finish() ^ h2.finish().rotate_left(32);
    // A zero nonce would seed a degenerate xorshift stream.
    if n == 0 {
        1
    } else {
        n
    }
}

/// Counters a [`ReliableTransport`] accumulates, for benchmarks and
/// assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Call requests issued (unique calls, not attempts).
    pub calls: u64,
    /// Retransmissions (attempts beyond the first, across all calls).
    pub retries: u64,
    /// Replies served from the server's duplicate-suppression cache.
    pub replays: u64,
    /// Stale envelopes (late replies to abandoned attempts) discarded.
    pub stale_discarded: u64,
    /// Successful transport reconnects.
    pub reconnects: u64,
    /// Calls that failed with a deadline error.
    pub deadline_failures: u64,
}

/// One request awaiting its reply.
#[derive(Debug)]
struct InFlight {
    /// The full `Tagged` envelope, kept verbatim for retransmission.
    request: Frame,
    deadline: Instant,
    attempts: u32,
    /// True when the last send failed (or timed out) and the request
    /// must be retransmitted before waiting again.
    needs_send: bool,
    /// Earliest instant a pending retransmission may go out (backoff).
    next_send: Instant,
    /// When the request last reached the wire (drives the attempt
    /// window).
    last_sent: Instant,
}

/// A resolved call whose reply has not been collected yet.
#[derive(Debug)]
enum Outcome {
    Reply(Frame),
    Deadline { attempts: u32 },
}

/// A [`Transport`] decorator that makes every call at-most-once with a
/// deadline — and multiplexes any number of concurrent calls over one
/// connection.
///
/// Call frames (`CallRequest`, `CallObject`, `CallRequestWarm`) are
/// stamped with a call id on send and entered into a request map keyed
/// by seq; the receive path is a demux that routes every incoming
/// `Tagged`/[`Frame::ReplyCached`] envelope to the matching pending
/// call, so N calls can be in flight at once ([`send_call`] issues,
/// [`recv_reply`] collects a specific one, out of order). Per-call
/// deadlines, attempt windows, capped backoff, and transparent
/// reconnect are preserved per entry in the map.
///
/// `recv`/`recv_timeout` keep their historical single-call contract:
/// they collect the *oldest* uncollected call. A `recv_timeout` whose
/// window closes while the call still has budget returns
/// [`TransportError::Timeout`] with the call kept in flight — a
/// recoverable poll; the next `recv` resumes it. Only a call's own
/// deadline or attempt budget yields
/// [`TransportError::DeadlineExceeded`], which abandons that call (and
/// only that call). Asking for a reply no call is pending — or one
/// already consumed — is a typed [`TransportError::NoPendingCall`]
/// error, never a panic. All other frames (callback replies, lookups,
/// shutdown, DGC) pass through untouched, so the decorated transport
/// drops into every existing client path unchanged.
///
/// [`send_call`]: ReliableTransport::send_call
/// [`recv_reply`]: ReliableTransport::recv_reply
pub struct ReliableTransport<T> {
    inner: T,
    policy: RetryPolicy,
    nonce: u64,
    next_seq: u64,
    /// Requests still awaiting a reply, keyed by seq.
    pending: HashMap<u64, InFlight>,
    /// Issue order of every call not yet collected (pending or
    /// completed) — what plain `recv` walks.
    order: VecDeque<u64>,
    /// Replies (and per-call deadline failures) that resolved while the
    /// caller was waiting on a different seq.
    completed: HashMap<u64, Outcome>,
    /// Earliest instant any pending call could need pump attention
    /// (retransmission due, attempt window lapse, or deadline), refreshed
    /// by every full [`pump_sends`](Self::pump_sends) walk. Lets the
    /// receive loop's per-reply pump return in O(1) while every event is
    /// still in the future. `None` means stale — the next pump must walk.
    /// Invariant: when `Some`, it is ≤ the true earliest event (events
    /// only move later between walks; mutations that could move one
    /// earlier reset this to `None`).
    next_pump: Option<Instant>,
    rng: u64,
    stats: RetryStats,
}

impl<T: std::fmt::Debug> std::fmt::Debug for ReliableTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableTransport")
            .field("inner", &self.inner)
            .field("nonce", &self.nonce)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<T: Transport> ReliableTransport<T> {
    /// Wraps `inner` with a fresh session nonce.
    pub fn new(inner: T, policy: RetryPolicy) -> Self {
        let nonce = fresh_nonce();
        ReliableTransport::with_nonce(inner, policy, nonce)
    }

    /// Wraps `inner` with an explicit nonce (deterministic tests and the
    /// model checker).
    pub fn with_nonce(inner: T, policy: RetryPolicy, nonce: u64) -> Self {
        ReliableTransport {
            inner,
            policy,
            nonce,
            next_seq: 0,
            pending: HashMap::new(),
            order: VecDeque::new(),
            completed: HashMap::new(),
            next_pump: None,
            rng: nonce | 1,
            stats: RetryStats::default(),
        }
    }

    /// Accumulated retry counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The session nonce stamped on every call.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// Borrows the decorated transport (e.g. to inspect link state).
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the decorated transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn is_call(frame: &Frame) -> bool {
        matches!(
            frame,
            Frame::CallRequest { .. } | Frame::CallObject { .. } | Frame::CallRequestWarm { .. }
        )
    }

    /// Sends a frame, tagging call frames with a fresh call id and
    /// entering them into the request map. Returns the call's seq
    /// (collect it with [`recv_reply`](ReliableTransport::recv_reply)),
    /// or `None` for non-call traffic, which passes through untagged.
    ///
    /// Any number of calls may be outstanding at once; this is the
    /// pipelined issue path. A `Disconnected` on the initial send is
    /// absorbed (reconnect, then retransmit from the receive loop), the
    /// same as every later attempt.
    ///
    /// # Errors
    /// Connection-fatal send errors (not `Disconnected`); the call is
    /// not entered into the map.
    pub fn send_call(&mut self, frame: &Frame) -> Result<Option<u64>, TransportError> {
        if !Self::is_call(frame) {
            self.inner.send(frame)?;
            return Ok(None);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = Frame::Tagged {
            nonce: self.nonce,
            seq,
            frame: Box::new(frame.clone()),
        };
        self.stats.calls += 1;
        let now = Instant::now();
        let mut fl = InFlight {
            request,
            deadline: now + self.policy.deadline,
            attempts: 1,
            needs_send: false,
            next_send: now,
            last_sent: now,
        };
        match self.inner.send(&fl.request) {
            Ok(()) => {}
            Err(TransportError::Disconnected) => {
                // Defer to the receive loop: reconnect here and
                // retransmit there. The caller always follows a call
                // send with a receive.
                if matches!(self.inner.reconnect(), Ok(true)) {
                    self.stats.reconnects += 1;
                }
                let pause = self.policy.backoff(fl.attempts, &mut self.rng);
                fl.needs_send = true;
                fl.next_send = now + pause;
            }
            Err(e) => return Err(e),
        }
        self.pending.insert(seq, fl);
        self.order.push_back(seq);
        self.next_pump = None;
        Ok(Some(seq))
    }

    /// Pipelined issue path for a whole train of calls: every frame is
    /// tagged and entered into the request map exactly as
    /// [`send_call`](ReliableTransport::send_call) would, but the train
    /// reaches the wire through one [`Transport::send_batch`] — a single
    /// vectored write on socket transports. Returns the seqs in issue
    /// order.
    ///
    /// A `Disconnected` on the batch send is absorbed the same way as a
    /// single call's lost first send: reconnect, queue the *entire*
    /// train for retransmission, and let the receive loop resend (the
    /// at-most-once ids make the retransmission safe even if a prefix
    /// of the train reached the peer before the connection died).
    /// Trains containing non-call traffic fall back to per-frame sends
    /// so ordering against untagged frames is preserved.
    ///
    /// # Errors
    /// Connection-fatal send errors (not `Disconnected`); the train is
    /// not entered into the map.
    pub fn send_call_batch(&mut self, frames: &[&Frame]) -> Result<Vec<u64>, TransportError> {
        if frames.iter().any(|f| !Self::is_call(f)) {
            let mut seqs = Vec::new();
            for frame in frames {
                if let Some(seq) = self.send_call(frame)? {
                    seqs.push(seq);
                }
            }
            return Ok(seqs);
        }
        let now = Instant::now();
        let mut seqs = Vec::with_capacity(frames.len());
        for frame in frames {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.calls += 1;
            let request = Frame::Tagged {
                nonce: self.nonce,
                seq,
                frame: Box::new((*frame).clone()),
            };
            self.pending.insert(
                seq,
                InFlight {
                    request,
                    deadline: now + self.policy.deadline,
                    attempts: 1,
                    needs_send: false,
                    next_send: now,
                    last_sent: now,
                },
            );
            self.order.push_back(seq);
            seqs.push(seq);
        }
        let result = {
            let batch: Vec<&Frame> = seqs.iter().map(|s| &self.pending[s].request).collect();
            self.inner.send_batch(&batch)
        };
        match result {
            Ok(()) => {}
            Err(TransportError::Disconnected) => {
                if matches!(self.inner.reconnect(), Ok(true)) {
                    self.stats.reconnects += 1;
                }
                for seq in &seqs {
                    if let Some(fl) = self.pending.get_mut(seq) {
                        let pause = self.policy.backoff(fl.attempts, &mut self.rng);
                        fl.needs_send = true;
                        fl.next_send = now + pause;
                    }
                }
            }
            Err(e) => {
                for seq in &seqs {
                    self.pending.remove(seq);
                }
                self.order.retain(|s| !seqs.contains(s));
                return Err(e);
            }
        }
        self.next_pump = None;
        Ok(seqs)
    }

    /// Calls issued and not yet collected (pending or already resolved
    /// and waiting for their [`recv_reply`](ReliableTransport::recv_reply)).
    pub fn pending_calls(&self) -> usize {
        self.order.len()
    }

    /// Blocks until the call issued as `seq` resolves, running the
    /// retry machinery for *every* pending call while it waits: replies
    /// for other calls are routed to their map entries (collected later,
    /// out of order), retransmissions go out when any call's attempt
    /// window lapses, and a call that exhausts its budget resolves to a
    /// per-call [`TransportError::DeadlineExceeded`] without disturbing
    /// its neighbors.
    ///
    /// # Errors
    /// [`TransportError::NoPendingCall`] if `seq` was never issued or
    /// its reply was already consumed; per-call deadline errors;
    /// connection-fatal transport errors (which abandon all pending
    /// calls).
    pub fn recv_reply(&mut self, seq: u64) -> Result<Frame, TransportError> {
        self.recv_reply_inner(seq, None)
    }

    /// [`recv_reply`](ReliableTransport::recv_reply) with a caller-side
    /// poll window: when it closes first, returns a recoverable
    /// [`TransportError::Timeout`] with the call still in flight.
    ///
    /// # Errors
    /// As [`recv_reply`](ReliableTransport::recv_reply), plus
    /// [`TransportError::Timeout`] when the window closes.
    pub fn recv_reply_timeout(
        &mut self,
        seq: u64,
        timeout: Duration,
    ) -> Result<Frame, TransportError> {
        self.recv_reply_inner(seq, Some(timeout))
    }

    /// The demux loop behind [`recv_reply`](ReliableTransport::recv_reply):
    /// waits for `seq` while pumping sends and routing every incoming
    /// envelope to its map entry. Returns mid-call callback frames
    /// (non-envelope traffic) to the caller, who answers them and calls
    /// again.
    fn recv_reply_inner(
        &mut self,
        seq: u64,
        extra: Option<Duration>,
    ) -> Result<Frame, TransportError> {
        let poll_deadline = extra.map(|t| Instant::now() + t);
        loop {
            if let Some(outcome) = self.completed.remove(&seq) {
                self.order.retain(|&s| s != seq);
                return match outcome {
                    Outcome::Reply(frame) => Ok(frame),
                    Outcome::Deadline { attempts } => {
                        Err(TransportError::DeadlineExceeded { attempts })
                    }
                };
            }
            if !self.pending.contains_key(&seq) {
                return Err(TransportError::NoPendingCall { seq: Some(seq) });
            }
            let now = Instant::now();
            self.pump_sends(now)?;
            if self.completed.contains_key(&seq) || !self.pending.contains_key(&seq) {
                continue;
            }
            if poll_deadline.is_some_and(|p| now >= p) {
                // The caller's poll window closed; this is the caller's
                // timeout, not the server's — every call stays in
                // flight, resumable by a later receive.
                return Err(TransportError::Timeout);
            }
            let wait = self.next_wait(now, poll_deadline);
            match self.inner.recv_timeout(wait) {
                Ok(Frame::Tagged {
                    nonce,
                    seq: rseq,
                    frame,
                }) => self.route_reply(nonce, rseq, *frame, false),
                Ok(Frame::ReplyCached {
                    nonce,
                    seq: rseq,
                    frame,
                }) => self.route_reply(nonce, rseq, *frame, true),
                // A mid-call frame from the server (remote-pointer
                // callback): hand it up; the caller's loop answers it
                // through us and keeps waiting.
                Ok(other) => return Ok(other),
                // Quiet window: the next pump_sends marks and
                // retransmits whatever lapsed.
                Err(TransportError::Timeout) => {}
                Err(TransportError::Disconnected) => {
                    if matches!(self.inner.reconnect(), Ok(true)) {
                        self.stats.reconnects += 1;
                    }
                    // A lost connection loses every unanswered request:
                    // queue them all for retransmission.
                    let now = Instant::now();
                    for fl in self.pending.values_mut() {
                        fl.needs_send = true;
                        fl.next_send = now;
                    }
                    self.next_pump = None;
                }
                Err(e) => return self.fail_all(e),
            }
        }
    }

    /// Walks every pending call once: marks lapsed attempt windows for
    /// retransmission, resolves calls that exhausted their deadline or
    /// attempt budget into per-call failures, and puts due
    /// retransmissions on the wire (issue order).
    ///
    /// # Errors
    /// Connection-fatal send errors, which abandon all pending calls.
    fn pump_sends(&mut self, now: Instant) -> Result<(), TransportError> {
        // Every event the walk acts on is at or after `next_pump`; while
        // that instant is still in the future the whole walk is a no-op,
        // so the per-reply pump in the receive loop costs one comparison
        // instead of an allocation and a scan of every pending call.
        if self.next_pump.is_some_and(|np| now < np) {
            return Ok(());
        }
        let mut next_pump: Option<Instant> = None;
        let seqs: Vec<u64> = self
            .order
            .iter()
            .copied()
            .filter(|s| self.pending.contains_key(s))
            .collect();
        for seq in seqs {
            let Some(mut fl) = self.pending.remove(&seq) else {
                continue;
            };
            if !fl.needs_send && now.duration_since(fl.last_sent) >= self.policy.attempt_timeout {
                fl.needs_send = true;
                fl.next_send = now + self.policy.backoff(fl.attempts, &mut self.rng);
            }
            let exhausted = now >= fl.deadline
                || (fl.needs_send
                    && (fl.attempts >= self.policy.max_attempts || fl.next_send >= fl.deadline));
            if exhausted {
                self.stats.deadline_failures += 1;
                self.completed.insert(
                    seq,
                    Outcome::Deadline {
                        attempts: fl.attempts,
                    },
                );
                continue;
            }
            if fl.needs_send && now >= fl.next_send {
                fl.attempts += 1;
                if fl.attempts > 1 {
                    self.stats.retries += 1;
                }
                match self.inner.send(&fl.request) {
                    Ok(()) => {
                        fl.needs_send = false;
                        fl.last_sent = now;
                    }
                    Err(TransportError::Disconnected) => {
                        if matches!(self.inner.reconnect(), Ok(true)) {
                            self.stats.reconnects += 1;
                        }
                        // Still needs_send: the next pump retries after
                        // a backoff (bounded by max_attempts and the
                        // deadline).
                        fl.next_send = now + self.policy.backoff(fl.attempts, &mut self.rng);
                    }
                    Err(e) => {
                        self.pending.insert(seq, fl);
                        return self.fail_all(e).map(|_| ());
                    }
                }
            }
            let event = if fl.needs_send {
                fl.next_send
            } else {
                fl.last_sent + self.policy.attempt_timeout
            }
            .min(fl.deadline);
            next_pump = Some(next_pump.map_or(event, |np| np.min(event)));
            self.pending.insert(seq, fl);
        }
        self.next_pump = next_pump;
        Ok(())
    }

    /// A connection-fatal error: every pending call is lost. Resolved
    /// outcomes already in `completed` stay collectable.
    fn fail_all(&mut self, e: TransportError) -> Result<Frame, TransportError> {
        self.pending.clear();
        let completed = &self.completed;
        self.order.retain(|s| completed.contains_key(s));
        Err(e)
    }

    /// Routes an incoming reply envelope to its map entry; anything not
    /// matching a pending call (wrong nonce, abandoned or already
    /// resolved seq) is a stale late arrival and is discarded.
    fn route_reply(&mut self, nonce: u64, rseq: u64, frame: Frame, cached: bool) {
        if nonce != self.nonce || !self.pending.contains_key(&rseq) {
            self.stats.stale_discarded += 1;
            return;
        }
        self.pending.remove(&rseq);
        if cached {
            self.stats.replays += 1;
        }
        self.completed.insert(rseq, Outcome::Reply(frame));
    }

    /// How long the demux may block in `recv_timeout` before something
    /// needs attention: the earliest pending retransmission, attempt
    /// window, or deadline — capped by the caller's poll window.
    fn next_wait(&self, now: Instant, poll_deadline: Option<Instant>) -> Duration {
        let mut earliest: Option<Instant> = poll_deadline;
        if let Some(np) = self.next_pump {
            // The pump just refreshed (or validated) its cache; it is a
            // lower bound on every pending event, so the scan below
            // would only ever find something later.
            earliest = Some(earliest.map_or(np, |e| e.min(np)));
        } else {
            for fl in self.pending.values() {
                let event = if fl.needs_send {
                    fl.next_send
                } else {
                    fl.last_sent + self.policy.attempt_timeout
                };
                let event = event.min(fl.deadline);
                earliest = Some(match earliest {
                    Some(e) => e.min(event),
                    None => event,
                });
            }
        }
        let wait = earliest
            .map(|e| e.saturating_duration_since(now))
            .unwrap_or(self.policy.attempt_timeout);
        // Floor so a just-elapsed event cannot spin recv_timeout(0);
        // the next pump resolves it.
        wait.max(Duration::from_millis(1))
    }

    /// Passthrough receive for non-call traffic, discarding stale
    /// envelopes (late replies to calls already abandoned or resolved).
    fn recv_passthrough(&mut self, timeout: Option<Duration>) -> Result<Frame, TransportError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            let frame = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(TransportError::Timeout);
                    }
                    self.inner.recv_timeout(d - now)?
                }
                None => self.inner.recv()?,
            };
            match frame {
                Frame::Tagged { .. } | Frame::ReplyCached { .. } => {
                    self.stats.stale_discarded += 1;
                }
                other => return Ok(other),
            }
        }
    }
}

impl<T: Transport> Transport for ReliableTransport<T> {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.send_call(frame).map(|_| ())
    }

    fn send_batch(&mut self, frames: &[&Frame]) -> Result<(), TransportError> {
        self.send_call_batch(frames).map(|_| ())
    }

    /// Collects the *oldest* uncollected call — the single-in-flight
    /// contract every pre-pipelining caller wrote against — or, with no
    /// call outstanding, passes non-call traffic through (the lookup
    /// and shutdown flows).
    fn recv(&mut self) -> Result<Frame, TransportError> {
        match self.order.front().copied() {
            Some(seq) => self.recv_reply_inner(seq, None),
            None => self.recv_passthrough(None),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, TransportError> {
        match self.order.front().copied() {
            Some(seq) => self.recv_reply_inner(seq, Some(timeout)),
            None => self.recv_passthrough(Some(timeout)),
        }
    }

    fn reconnect(&mut self) -> Result<bool, TransportError> {
        self.inner.reconnect()
    }
}

/// What the server should do with a tagged request.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplyDecision {
    /// First sighting of this id: execute and [`ReplyCache::store`].
    Fresh,
    /// Already executed; retransmit this recorded reply.
    Replay(Frame),
    /// Already executed, but the recorded reply was evicted. Answer
    /// with a [`REPLY_EVICTED`] error — never re-execute.
    Evicted,
    /// Currently executing on another connection ([`ReplyCache::begin`]
    /// was issued but [`ReplyCache::store`] has not run yet): a
    /// reconnect retransmission racing the original execution. Neither
    /// execute nor reply — drop the duplicate; the client retransmits
    /// and finds the stored reply.
    InProgress,
}

/// Default reply-cache budget (4 MiB of encoded reply bytes).
pub const DEFAULT_REPLY_CACHE_BYTES: usize = 4 << 20;

/// Default bound on distinct session nonces whose executed watermarks
/// the cache tracks (see [`ReplyCache::with_limits`]).
pub const DEFAULT_REPLY_CACHE_NONCES: usize = 4096;

/// Server-side duplicate-suppression cache: recorded replies keyed by
/// call id, LRU-evicted under a byte cap.
///
/// The `executed` watermark (highest seq seen per nonce) outlives
/// reply eviction, which is what keeps the at-most-once promise after
/// the reply itself is gone: a late retransmission of an evicted call
/// gets a definite error, not a second execution.
///
/// The watermark map itself is bounded too (`max_nonces` sessions,
/// LRU by activity), so a long-lived node — or a hostile peer spraying
/// random nonces — cannot grow it without limit. Evicting a nonce
/// forgets that session's watermarks and drops its cached replies:
/// a client that stays idle while `max_nonces` newer sessions pass and
/// *then* retransmits an old call can re-execute it. That window is the
/// price of bounded memory, the same trade DGC makes under lease
/// expiry; size `max_nonces` above the node's plausible concurrent
/// session count.
#[derive(Debug)]
pub struct ReplyCache {
    max_bytes: usize,
    bytes: usize,
    entries: HashMap<(u64, u64), Frame>,
    /// LRU order, least-recent first.
    order: VecDeque<(u64, u64)>,
    executed: HashMap<u64, u64>,
    /// Nonce LRU, least-recently-active first — bounds `executed`.
    nonce_order: VecDeque<u64>,
    max_nonces: usize,
    /// Ids a [`begin`](ReplyCache::begin) classified `Fresh` whose
    /// reply has not been stored yet: the cross-connection duplicate
    /// barrier.
    executing: HashSet<(u64, u64)>,
}

impl Default for ReplyCache {
    fn default() -> Self {
        ReplyCache::new(DEFAULT_REPLY_CACHE_BYTES)
    }
}

impl ReplyCache {
    /// Creates a cache holding at most `max_bytes` of encoded replies,
    /// tracking at most [`DEFAULT_REPLY_CACHE_NONCES`] sessions.
    pub fn new(max_bytes: usize) -> Self {
        ReplyCache::with_limits(max_bytes, DEFAULT_REPLY_CACHE_NONCES)
    }

    /// Creates a cache holding at most `max_bytes` of encoded replies
    /// and at most `max_nonces` per-session executed watermarks.
    pub fn with_limits(max_bytes: usize, max_nonces: usize) -> Self {
        ReplyCache {
            max_bytes,
            bytes: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            executed: HashMap::new(),
            nonce_order: VecDeque::new(),
            max_nonces: max_nonces.max(1),
            executing: HashSet::new(),
        }
    }

    /// Classifies an incoming call id. `Replay` touches the entry's LRU
    /// position.
    pub fn decision(&mut self, nonce: u64, seq: u64) -> ReplyDecision {
        if self.executing.contains(&(nonce, seq)) {
            return ReplyDecision::InProgress;
        }
        if let Some(reply) = self.entries.get(&(nonce, seq)) {
            let reply = reply.clone();
            self.touch(nonce, seq);
            self.touch_nonce(nonce);
            return ReplyDecision::Replay(reply);
        }
        match self.executed.get(&nonce) {
            Some(&max) if seq <= max => {
                self.touch_nonce(nonce);
                ReplyDecision::Evicted
            }
            _ => ReplyDecision::Fresh,
        }
    }

    /// Classifies an id AND, when it is `Fresh`, marks it as executing
    /// in the same step, so a duplicate racing in on another connection
    /// (a reconnect retransmission) observes [`InProgress`] rather than
    /// a second `Fresh`. Serve loops whose execute step releases the
    /// node lock (the warm-call path) must use this instead of
    /// [`decision`](ReplyCache::decision); the marker is cleared by
    /// [`store`](ReplyCache::store).
    ///
    /// [`InProgress`]: ReplyDecision::InProgress
    pub fn begin(&mut self, nonce: u64, seq: u64) -> ReplyDecision {
        let decision = self.decision(nonce, seq);
        if decision == ReplyDecision::Fresh {
            self.executing.insert((nonce, seq));
        }
        decision
    }

    /// Records the reply for an executed call, clears its executing
    /// marker, and advances the nonce's executed watermark. Evicts
    /// least-recently-used entries while over the byte cap (the entry
    /// just stored is never evicted by its own insertion) and
    /// least-recently-active sessions while over the nonce cap.
    pub fn store(&mut self, nonce: u64, seq: u64, reply: &Frame) {
        let key = (nonce, seq);
        self.executing.remove(&key);
        if self.executed.contains_key(&nonce) {
            self.touch_nonce(nonce);
        } else {
            self.nonce_order.push_back(nonce);
        }
        let max = self.executed.entry(nonce).or_insert(seq);
        if seq > *max {
            *max = seq;
        }
        if !self.entries.contains_key(&key) {
            self.bytes += reply.wire_size();
            self.entries.insert(key, reply.clone());
            self.order.push_back(key);
            while self.bytes > self.max_bytes && self.order.len() > 1 {
                let victim = self.order.pop_front().expect("len > 1");
                if let Some(evicted) = self.entries.remove(&victim) {
                    self.bytes -= evicted.wire_size();
                }
            }
        }
        while self.executed.len() > self.max_nonces {
            let Some(victim) = self.pick_idle_nonce() else {
                break;
            };
            self.evict_nonce(victim);
        }
    }

    /// Cached replies currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no replies are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encoded bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Distinct session nonces whose executed watermarks are tracked.
    pub fn tracked_nonces(&self) -> usize {
        self.executed.len()
    }

    fn touch(&mut self, nonce: u64, seq: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == (nonce, seq)) {
            self.order.remove(pos);
            self.order.push_back((nonce, seq));
        }
    }

    fn touch_nonce(&mut self, nonce: u64) {
        if let Some(pos) = self.nonce_order.iter().position(|&n| n == nonce) {
            self.nonce_order.remove(pos);
            self.nonce_order.push_back(nonce);
        }
    }

    /// The least-recently-active nonce with no call still executing
    /// (evicting mid-execution would re-open the duplicate window).
    fn pick_idle_nonce(&mut self) -> Option<u64> {
        let pos = (0..self.nonce_order.len()).find(|&i| {
            !self
                .executing
                .iter()
                .any(|&(n, _)| n == self.nonce_order[i])
        })?;
        self.nonce_order.remove(pos)
    }

    fn evict_nonce(&mut self, nonce: u64) {
        self.executed.remove(&nonce);
        let entries = &mut self.entries;
        let bytes = &mut self.bytes;
        self.order.retain(|&(n, s)| {
            if n != nonce {
                return true;
            }
            if let Some(evicted) = entries.remove(&(n, s)) {
                *bytes -= evicted.wire_size();
            }
            false
        });
    }
}

/// The error reply for a [`ReplyDecision::Evicted`] retransmission.
pub fn evicted_reply() -> Frame {
    Frame::CallError {
        message: REPLY_EVICTED.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_transport::{channel_pair, ChannelTransport, LinkSpec};

    fn call_frame(tag: u8) -> Frame {
        Frame::CallRequest {
            service: "svc".into(),
            method: "m".into(),
            mode: 2,
            payload: vec![tag],
        }
    }

    fn reply_frame(tag: u8) -> Frame {
        Frame::CallReply {
            payload: vec![tag; 8],
        }
    }

    fn reliable(policy: RetryPolicy) -> (ReliableTransport<ChannelTransport>, ChannelTransport) {
        let (a, b) = channel_pair(None, LinkSpec::free());
        (ReliableTransport::with_nonce(a, policy, 77), b)
    }

    #[test]
    fn tags_calls_and_matches_replies() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&call_frame(1)).unwrap();
        let Frame::Tagged { nonce, seq, frame } = server.recv().unwrap() else {
            panic!("call must travel tagged");
        };
        assert_eq!((nonce, seq), (77, 0));
        assert_eq!(*frame, call_frame(1));
        server
            .send(&Frame::Tagged {
                nonce,
                seq,
                frame: Box::new(reply_frame(9)),
            })
            .unwrap();
        assert_eq!(client.recv().unwrap(), reply_frame(9));
        assert_eq!(client.stats().calls, 1);
        assert_eq!(client.stats().retries, 0);
    }

    #[test]
    fn non_call_frames_pass_through_untagged() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&Frame::Lookup { name: "x".into() }).unwrap();
        assert_eq!(server.recv().unwrap(), Frame::Lookup { name: "x".into() });
        server.send(&Frame::LookupReply { found: true }).unwrap();
        assert_eq!(client.recv().unwrap(), Frame::LookupReply { found: true });
    }

    #[test]
    fn retransmits_on_timeout_until_reply() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&call_frame(1)).unwrap();
        // Server stays silent through two attempt windows, then answers
        // the latest retransmission.
        let t = std::thread::spawn(move || {
            let mut seen = 0u32;
            let (nonce, seq) = loop {
                if let Frame::Tagged { nonce, seq, .. } = server.recv().unwrap() {
                    seen += 1;
                    if seen == 3 {
                        break (nonce, seq);
                    }
                }
            };
            server
                .send(&Frame::Tagged {
                    nonce,
                    seq,
                    frame: Box::new(reply_frame(5)),
                })
                .unwrap();
            seen
        });
        assert_eq!(client.recv().unwrap(), reply_frame(5));
        assert_eq!(t.join().unwrap(), 3, "two retransmissions reached the peer");
        assert_eq!(client.stats().retries, 2);
    }

    #[test]
    fn deadline_exceeded_after_max_attempts() {
        let (mut client, _server) = reliable(RetryPolicy {
            deadline: Duration::from_secs(5),
            attempt_timeout: Duration::from_millis(5),
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        });
        client.send(&call_frame(1)).unwrap();
        let err = client.recv().unwrap_err();
        assert!(
            matches!(err, TransportError::DeadlineExceeded { attempts: 3 }),
            "{err:?}"
        );
        assert_eq!(client.stats().deadline_failures, 1);
    }

    #[test]
    fn deadline_bounds_total_wait() {
        let (mut client, _server) = reliable(RetryPolicy {
            deadline: Duration::from_millis(60),
            attempt_timeout: Duration::from_millis(20),
            max_attempts: 1000,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        });
        let start = Instant::now();
        client.send(&call_frame(1)).unwrap();
        let err = client.recv().unwrap_err();
        assert!(
            matches!(err, TransportError::DeadlineExceeded { .. }),
            "{err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "client hung past its deadline: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn stale_replies_discarded() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&call_frame(1)).unwrap();
        let Frame::Tagged { nonce, seq, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        // A late reply for some other call id arrives first.
        server
            .send(&Frame::Tagged {
                nonce,
                seq: seq + 100,
                frame: Box::new(reply_frame(1)),
            })
            .unwrap();
        server
            .send(&Frame::ReplyCached {
                nonce: nonce ^ 1,
                seq,
                frame: Box::new(reply_frame(2)),
            })
            .unwrap();
        server
            .send(&Frame::Tagged {
                nonce,
                seq,
                frame: Box::new(reply_frame(3)),
            })
            .unwrap();
        assert_eq!(client.recv().unwrap(), reply_frame(3));
        assert_eq!(client.stats().stale_discarded, 2);
    }

    #[test]
    fn callback_frames_pass_up_mid_call() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&call_frame(1)).unwrap();
        let Frame::Tagged { nonce, seq, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        server.send(&Frame::GetField { key: 3, field: 0 }).unwrap();
        assert_eq!(
            client.recv().unwrap(),
            Frame::GetField { key: 3, field: 0 },
            "callbacks surface to the caller"
        );
        server
            .send(&Frame::Tagged {
                nonce,
                seq,
                frame: Box::new(reply_frame(4)),
            })
            .unwrap();
        assert_eq!(client.recv().unwrap(), reply_frame(4));
    }

    #[test]
    fn reply_cache_replays_without_reexecution() {
        let mut cache = ReplyCache::new(1 << 20);
        assert_eq!(cache.decision(7, 0), ReplyDecision::Fresh);
        cache.store(7, 0, &reply_frame(1));
        assert_eq!(
            cache.decision(7, 0),
            ReplyDecision::Replay(reply_frame(1)),
            "duplicate id replays the recorded reply"
        );
        assert_eq!(
            cache.decision(7, 1),
            ReplyDecision::Fresh,
            "next seq is new"
        );
        assert_eq!(
            cache.decision(8, 0),
            ReplyDecision::Fresh,
            "other nonce is new"
        );
    }

    #[test]
    fn reply_cache_eviction_is_an_error_not_a_rerun() {
        // Cap small enough that the second store evicts the first.
        let reply = reply_frame(1);
        let mut cache = ReplyCache::new(reply.wire_size() + 2);
        cache.store(7, 0, &reply);
        cache.store(7, 1, &reply_frame(2));
        assert_eq!(cache.len(), 1, "byte cap evicted the older entry");
        assert_eq!(
            cache.decision(7, 0),
            ReplyDecision::Evicted,
            "an executed-but-evicted id must NOT be Fresh"
        );
        assert_eq!(cache.decision(7, 1), ReplyDecision::Replay(reply_frame(2)));
    }

    #[test]
    fn reply_cache_lru_touch_on_replay() {
        let reply = reply_frame(1);
        let unit = reply.wire_size();
        let mut cache = ReplyCache::new(2 * unit + 1);
        cache.store(7, 0, &reply_frame(1));
        cache.store(7, 1, &reply_frame(2));
        // Touch seq 0; storing a third entry must now evict seq 1.
        assert!(matches!(cache.decision(7, 0), ReplyDecision::Replay(_)));
        cache.store(7, 2, &reply_frame(3));
        assert!(matches!(cache.decision(7, 0), ReplyDecision::Replay(_)));
        assert_eq!(cache.decision(7, 1), ReplyDecision::Evicted);
    }

    #[test]
    fn poll_timeout_keeps_the_call_in_flight() {
        // A caller-side recv_timeout window closing is a recoverable
        // poll, not call abandonment: the call must survive it and be
        // resumable by a later recv.
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&call_frame(1)).unwrap();
        let err = client.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "{err:?}");
        assert_eq!(
            client.stats().deadline_failures,
            0,
            "a poll timeout is not a deadline failure"
        );
        let Frame::Tagged { nonce, seq, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        server
            .send(&Frame::Tagged {
                nonce,
                seq,
                frame: Box::new(reply_frame(9)),
            })
            .unwrap();
        assert_eq!(client.recv().unwrap(), reply_frame(9), "call resumed");
    }

    #[test]
    fn poll_timeout_still_honors_the_call_deadline() {
        let (mut client, _server) = reliable(RetryPolicy {
            deadline: Duration::from_millis(30),
            attempt_timeout: Duration::from_millis(10),
            max_attempts: 100,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        });
        client.send(&call_frame(1)).unwrap();
        // Poll until the call's own deadline takes over.
        let err = loop {
            match client.recv_timeout(Duration::from_millis(5)) {
                Err(TransportError::Timeout) => continue,
                Err(e) => break e,
                Ok(f) => panic!("unexpected reply {f:?}"),
            }
        };
        assert!(
            matches!(err, TransportError::DeadlineExceeded { .. }),
            "{err:?}"
        );
        assert_eq!(client.stats().deadline_failures, 1);
    }

    #[test]
    fn recv_reply_without_a_pending_call_is_a_typed_error() {
        // The old single-slot implementation `expect`-panicked when its
        // receive path ran without an in-flight call; asking for a
        // reply nobody is waiting on must be a typed error instead.
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        let err = client.recv_reply(42).unwrap_err();
        assert!(
            matches!(err, TransportError::NoPendingCall { seq: Some(42) }),
            "{err:?}"
        );
        // And after a reply is consumed, its seq is no longer pending.
        let seq = client.send_call(&call_frame(1)).unwrap().expect("a call");
        let Frame::Tagged { nonce, seq: s, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        server
            .send(&Frame::Tagged {
                nonce,
                seq: s,
                frame: Box::new(reply_frame(9)),
            })
            .unwrap();
        assert_eq!(client.recv_reply(seq).unwrap(), reply_frame(9));
        let err = client.recv_reply(seq).unwrap_err();
        assert!(
            matches!(err, TransportError::NoPendingCall { seq: Some(s) } if s == seq),
            "{err:?}"
        );
        assert_eq!(client.pending_calls(), 0);
    }

    #[test]
    fn pipelined_replies_route_out_of_order() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        let s0 = client.send_call(&call_frame(1)).unwrap().expect("a call");
        let s1 = client.send_call(&call_frame(2)).unwrap().expect("a call");
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(client.pending_calls(), 2);
        let Frame::Tagged { nonce, seq: r0, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        let Frame::Tagged { seq: r1, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        // Server answers the second call first.
        server
            .send(&Frame::Tagged {
                nonce,
                seq: r1,
                frame: Box::new(reply_frame(2)),
            })
            .unwrap();
        server
            .send(&Frame::Tagged {
                nonce,
                seq: r0,
                frame: Box::new(reply_frame(1)),
            })
            .unwrap();
        // Collecting the first call routes the second's reply to its
        // map entry on the way; collecting the second finds it waiting.
        assert_eq!(client.recv_reply(s0).unwrap(), reply_frame(1));
        assert_eq!(client.recv_reply(s1).unwrap(), reply_frame(2));
        assert_eq!(client.stats().calls, 2);
        assert_eq!(client.stats().stale_discarded, 0, "nothing was discarded");
    }

    #[test]
    fn batched_calls_tag_and_route_like_sequential_sends() {
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        let frames = [call_frame(1), call_frame(2), call_frame(3)];
        let refs: Vec<&Frame> = frames.iter().collect();
        let seqs = client.send_call_batch(&refs).unwrap();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(client.pending_calls(), 3);
        assert_eq!(client.stats().calls, 3);
        let mut nonce = 0;
        for (i, frame) in frames.iter().enumerate() {
            let Frame::Tagged {
                nonce: n,
                seq,
                frame: inner,
            } = server.recv().unwrap()
            else {
                panic!("batched calls must travel tagged");
            };
            nonce = n;
            assert_eq!(seq, i as u64, "train preserves issue order");
            assert_eq!(*inner, *frame);
        }
        // Answer out of order; each seq routes to its own entry.
        for &seq in seqs.iter().rev() {
            server
                .send(&Frame::Tagged {
                    nonce,
                    seq,
                    frame: Box::new(reply_frame(seq as u8)),
                })
                .unwrap();
        }
        for &seq in &seqs {
            assert_eq!(client.recv_reply(seq).unwrap(), reply_frame(seq as u8));
        }
        assert_eq!(client.pending_calls(), 0);
    }

    #[test]
    fn batched_calls_absorb_disconnect_and_retransmit() {
        // The peer is gone before the batch goes out: the whole train
        // must queue for retransmission, not error out.
        let (a, b) = channel_pair(None, LinkSpec::free());
        drop(b);
        let mut client = ReliableTransport::with_nonce(a, RetryPolicy::aggressive(), 77);
        let frames = [call_frame(1), call_frame(2)];
        let refs: Vec<&Frame> = frames.iter().collect();
        let seqs = client.send_call_batch(&refs).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(client.pending_calls(), 2, "train stays in flight");
        // With nobody to reconnect to, both calls fail their own
        // budgets — proving they were tracked, not dropped.
        for &seq in &seqs {
            let err = client.recv_reply(seq).unwrap_err();
            assert!(
                matches!(err, TransportError::DeadlineExceeded { .. }),
                "{err:?}"
            );
        }
    }

    #[test]
    fn per_call_deadlines_are_isolated() {
        // Two calls in flight; the server answers only the second. The
        // first must fail with its own DeadlineExceeded without
        // dragging the answered call down with it.
        let (mut client, mut server) = reliable(RetryPolicy {
            deadline: Duration::from_secs(5),
            attempt_timeout: Duration::from_millis(5),
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: false,
        });
        let s0 = client.send_call(&call_frame(1)).unwrap().expect("a call");
        let s1 = client.send_call(&call_frame(2)).unwrap().expect("a call");
        let Frame::Tagged { nonce, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        server
            .send(&Frame::Tagged {
                nonce,
                seq: s1,
                frame: Box::new(reply_frame(2)),
            })
            .unwrap();
        let err = client.recv_reply(s0).unwrap_err();
        assert!(
            matches!(err, TransportError::DeadlineExceeded { attempts: 3 }),
            "{err:?}"
        );
        assert_eq!(client.stats().deadline_failures, 1);
        assert_eq!(
            client.recv_reply(s1).unwrap(),
            reply_frame(2),
            "the answered call survives its neighbor's deadline"
        );
    }

    #[test]
    fn plain_recv_collects_calls_oldest_first() {
        // Transport-trait compatibility: `recv` with several calls in
        // flight resolves them in issue order, whatever order the
        // replies arrived in.
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        client.send(&call_frame(1)).unwrap();
        client.send(&call_frame(2)).unwrap();
        let Frame::Tagged { nonce, seq: r0, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        let Frame::Tagged { seq: r1, .. } = server.recv().unwrap() else {
            panic!("tagged");
        };
        server
            .send(&Frame::Tagged {
                nonce,
                seq: r1,
                frame: Box::new(reply_frame(2)),
            })
            .unwrap();
        server
            .send(&Frame::Tagged {
                nonce,
                seq: r0,
                frame: Box::new(reply_frame(1)),
            })
            .unwrap();
        assert_eq!(client.recv().unwrap(), reply_frame(1));
        assert_eq!(client.recv().unwrap(), reply_frame(2));
    }

    #[test]
    fn pipelined_retransmits_cover_every_pending_call() {
        // Both calls outstanding, server silent for one attempt window:
        // the retry pump must retransmit *both*, not just the one being
        // collected.
        let (mut client, mut server) = reliable(RetryPolicy::aggressive());
        let s0 = client.send_call(&call_frame(1)).unwrap().expect("a call");
        let s1 = client.send_call(&call_frame(2)).unwrap().expect("a call");
        let t = std::thread::spawn(move || {
            let mut seen: Vec<(u64, u64)> = Vec::new();
            let nonce = loop {
                if let Frame::Tagged { nonce, seq, .. } = server.recv().unwrap() {
                    seen.push((nonce, seq));
                    // First sends + one retransmission of each.
                    let retrans_0 = seen.iter().filter(|&&(_, s)| s == 0).count();
                    let retrans_1 = seen.iter().filter(|&&(_, s)| s == 1).count();
                    if retrans_0 >= 2 && retrans_1 >= 2 {
                        break nonce;
                    }
                }
            };
            for seq in [0, 1] {
                server
                    .send(&Frame::Tagged {
                        nonce,
                        seq,
                        frame: Box::new(reply_frame(seq as u8 + 1)),
                    })
                    .unwrap();
            }
        });
        assert_eq!(client.recv_reply(s0).unwrap(), reply_frame(1));
        assert_eq!(client.recv_reply(s1).unwrap(), reply_frame(2));
        t.join().unwrap();
        assert!(
            client.stats().retries >= 2,
            "each silent call retransmitted: {:?}",
            client.stats()
        );
    }

    #[test]
    fn begin_blocks_a_concurrent_duplicate() {
        let mut cache = ReplyCache::new(1 << 20);
        assert_eq!(cache.begin(7, 0), ReplyDecision::Fresh);
        // The same id again, before store: the reconnect-retransmission
        // race. It must NOT read Fresh.
        assert_eq!(cache.begin(7, 0), ReplyDecision::InProgress);
        assert_eq!(cache.decision(7, 0), ReplyDecision::InProgress);
        cache.store(7, 0, &reply_frame(1));
        assert_eq!(
            cache.begin(7, 0),
            ReplyDecision::Replay(reply_frame(1)),
            "after store the duplicate replays"
        );
    }

    #[test]
    fn executed_watermarks_are_bounded() {
        let mut cache = ReplyCache::with_limits(1 << 20, 4);
        for n in 0..100u64 {
            cache.store(n, 0, &reply_frame(1));
        }
        assert_eq!(cache.tracked_nonces(), 4, "nonce map is capped");
        assert_eq!(cache.len(), 4, "evicted sessions drop their replies");
        assert!(matches!(cache.decision(99, 0), ReplyDecision::Replay(_)));
        // The documented window: a session idle past the cap is
        // forgotten entirely — its old id reads Fresh again.
        assert_eq!(cache.decision(0, 0), ReplyDecision::Fresh);
    }

    #[test]
    fn nonce_eviction_spares_executing_sessions() {
        let mut cache = ReplyCache::with_limits(1 << 20, 2);
        assert_eq!(cache.begin(1, 0), ReplyDecision::Fresh);
        // Flood past the cap while nonce 1 is mid-execution.
        cache.store(2, 0, &reply_frame(2));
        cache.store(3, 0, &reply_frame(3));
        cache.store(4, 0, &reply_frame(4));
        assert_eq!(cache.decision(1, 0), ReplyDecision::InProgress);
        cache.store(1, 0, &reply_frame(1));
        assert_eq!(
            cache.decision(1, 0),
            ReplyDecision::Replay(reply_frame(1)),
            "the executing session must not be evicted mid-call"
        );
        assert!(cache.tracked_nonces() <= 2);
    }

    #[test]
    fn reply_cache_byte_accounting() {
        let mut cache = ReplyCache::new(1 << 20);
        let r = reply_frame(1);
        cache.store(1, 0, &r);
        cache.store(1, 0, &r); // duplicate store is idempotent
        assert_eq!(cache.bytes(), r.wire_size());
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn fresh_nonces_are_distinct() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter: false,
            ..RetryPolicy::default()
        };
        let mut rng = 1;
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(40));
        assert_eq!(policy.backoff(4, &mut rng), Duration::from_millis(80));
        assert_eq!(policy.backoff(10, &mut rng), Duration::from_millis(80));
        let jittered = RetryPolicy {
            jitter: true,
            ..policy
        };
        for attempt in 1..6 {
            let b = jittered.backoff(attempt, &mut rng);
            let nominal = policy.backoff(attempt, &mut rng);
            assert!(
                b >= nominal.mul_f64(0.5) && b <= nominal,
                "{b:?} vs {nominal:?}"
            );
        }
    }
}
