//! The restore phase: steps 4–6 of the paper's algorithm (Section 3).
//!
//! By the time this module runs, steps 1–3 are done: the client built a
//! linear map of everything reachable from the restorable parameters
//! (step 1), shipped the graph to the server which executed the method
//! (step 2), and received back the server's post-call graph, serialized
//! from the server's linear map so that even objects *unreachable from
//! the parameters* travel home (step 3). Each returned object carries an
//! `old_index` annotation — its position in the original linear map — or
//! none, marking it as allocated by the remote routine.
//!
//! This module then:
//!
//! * **Step 4 — match.** Pair each annotated ("modified old") object
//!   with the caller's original at the same linear-map position.
//! * **Step 5 — overwrite.** Copy each modified old object's slots over
//!   its original *in place* (so every caller-side alias sees the
//!   changes), converting references to modified-old objects into
//!   references to the corresponding originals.
//! * **Step 6 — fix new objects.** Rewrite the new objects' references
//!   from modified-old objects to originals.
//!
//! Afterwards the modified-old copies are garbage and are freed
//! (Figure 7: "all modified old objects and their linear representation
//! can now be deallocated"). New objects stay — spliced into the
//! caller's graph exactly where the server put them.
//!
//! # Atomicity
//!
//! Restore is all-or-nothing with respect to the caller's pre-call
//! graph. Every annotation and handle in the reply is validated *before*
//! the first original is touched (old index in range and unique, matching
//! class, compatible arity); if anything is malformed, every object the
//! decode materialized is freed and the heap is left byte-identical to
//! its pre-call state — a corrupt or mismatched reply can never
//! half-restore. Only after the whole reply validates does the overwrite
//! pass run, and by then none of its operations can fail on reply input.

use nrmi_heap::{DenseIdMap, Heap, LinearMap, ObjId, Value};
use nrmi_wire::DecodedGraph;

use crate::error::NrmiError;

/// Accounting from one restore pass (drives the simulated cost model and
/// the benchmark reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Old objects matched and overwritten in place.
    pub old_objects: usize,
    /// Server-allocated objects spliced into the caller's graph.
    pub new_objects: usize,
}

/// The outcome of a restore: translated reply roots plus accounting.
#[derive(Clone, Debug, Default)]
pub struct RestoreOutcome {
    /// The reply's root values with modified-old references translated
    /// to the caller's originals (e.g. a return value that aliases an
    /// argument ends up aliasing the caller's original object).
    pub roots: Vec<Value>,
    /// Accounting.
    pub stats: RestoreStats,
}

/// Applies steps 4–6 to `decoded` (the unmarshalled server reply) against
/// `client_map` (the caller's step-1 linear map), mutating `heap` in
/// place.
///
/// Handles both full copy-restore replies (every old object present) and
/// DCE-RPC replies (only parameter-reachable objects present): the
/// algorithm is indifferent to *which* old objects came back — it
/// restores exactly those that did.
///
/// # Errors
/// [`NrmiError::Protocol`] if an `old_index` annotation falls outside the
/// caller's linear map, repeats a position, or pairs objects of different
/// classes or incompatible arities (a corrupt or mismatched reply). On
/// any such error the heap is left byte-identical to its pre-call state:
/// no original is touched and every decoded object is freed.
pub fn apply_restore(
    heap: &mut Heap,
    client_map: &LinearMap,
    decoded: &DecodedGraph,
) -> Result<RestoreOutcome, NrmiError> {
    match plan_restore(heap, client_map, decoded) {
        Ok(plan) => commit_restore(heap, decoded, plan),
        Err(e) => {
            // Transactional abort: undo the decode so the reply leaves no
            // trace. Everything in `decoded.linear` was freshly allocated
            // by this reply's unmarshalling (imported stubs are resolved
            // through hooks and never enter the linear map).
            for &temp in &decoded.linear {
                let _ = heap.free(temp);
            }
            Err(e)
        }
    }
}

/// The validated step-4 match, ready to commit.
struct RestorePlan {
    /// Returned modified-old object → caller's original, stored densely
    /// by the temp's arena index (the value is the original's raw index).
    modified_to_original: DenseIdMap<u32>,
    /// `(temp, original)` pairs in traversal order.
    modified_old: Vec<(ObjId, ObjId)>,
    /// Server-allocated objects.
    new_objects: Vec<ObjId>,
}

impl RestorePlan {
    /// The caller's original for a returned modified-old object, if any.
    fn original_of(&self, temp: ObjId) -> Option<ObjId> {
        self.modified_to_original.get(temp).map(ObjId::from_index)
    }
}

/// Step 4 plus up-front validation of everything the overwrite pass will
/// rely on. Read-only: the heap is not mutated.
fn plan_restore(
    heap: &Heap,
    client_map: &LinearMap,
    decoded: &DecodedGraph,
) -> Result<RestorePlan, NrmiError> {
    let mut modified_to_original: DenseIdMap<u32> = DenseIdMap::new();
    let mut modified_old: Vec<(ObjId, ObjId)> = Vec::new();
    let mut new_objects: Vec<ObjId> = Vec::new();
    // Duplicate-annotation detection, dense by linear-map position.
    let mut seen_positions = vec![false; client_map.len()];
    for (temp, old_index) in decoded.iter_with_old() {
        match old_index {
            Some(pos) => {
                let original = client_map.at(pos).ok_or_else(|| {
                    NrmiError::Protocol(format!(
                        "reply annotates old index {pos}, but the call's linear map has {} entries",
                        client_map.len()
                    ))
                })?;
                if std::mem::replace(&mut seen_positions[pos as usize], true) {
                    return Err(NrmiError::Protocol(format!(
                        "reply annotates old index {pos} twice"
                    )));
                }
                // The overwrite pass must not be able to fail: reject
                // class or arity mismatches now, while nothing has been
                // touched, instead of tripping a heap error mid-restore.
                let temp_obj = heap.get(temp)?;
                let original_obj = heap.get(original).map_err(|_| {
                    NrmiError::Protocol(format!(
                        "reply annotates old index {pos}, but the caller's original is gone"
                    ))
                })?;
                if temp_obj.class() != original_obj.class() {
                    return Err(NrmiError::Protocol(format!(
                        "reply object at old index {pos} has class {:?}, original has {:?}",
                        temp_obj.class(),
                        original_obj.class()
                    )));
                }
                let is_array = heap.registry_handle().get(temp_obj.class())?.flags().array;
                if !is_array && temp_obj.body().len() != original_obj.body().len() {
                    return Err(NrmiError::Protocol(format!(
                        "reply object at old index {pos} has {} slots, original has {}",
                        temp_obj.body().len(),
                        original_obj.body().len()
                    )));
                }
                modified_to_original.insert(temp, original.index());
                modified_old.push((temp, original));
            }
            None => new_objects.push(temp),
        }
    }
    Ok(RestorePlan {
        modified_to_original,
        modified_old,
        new_objects,
    })
}

/// Steps 5–6 plus temp deallocation. Only runs on a validated plan, so
/// none of these operations can fail on reply input.
fn commit_restore(
    heap: &mut Heap,
    decoded: &DecodedGraph,
    plan: RestorePlan,
) -> Result<RestoreOutcome, NrmiError> {
    // Step 5: overwrite each original with its modified version's data,
    // converting pointers to modified-old objects into pointers to the
    // corresponding originals. Pointers to new objects pass through
    // untouched — the new objects live in the caller's heap already.
    for &(temp, original) in &plan.modified_old {
        let slots: Vec<Value> = heap
            .slots_of(temp)?
            .into_iter()
            .map(|v| match v {
                Value::Ref(id) => Value::Ref(plan.original_of(id).unwrap_or(id)),
                other => other,
            })
            .collect();
        heap.overwrite_slots(original, slots)?;
    }

    // Step 6: new objects' pointers to modified-old objects become
    // pointers to the originals.
    for &temp in &plan.new_objects {
        heap.rewrite_refs_with(temp, |id| plan.original_of(id))?;
    }

    // Translate the reply roots the same way.
    let roots: Vec<Value> = decoded
        .roots
        .iter()
        .map(|v| match v {
            Value::Ref(id) => Value::Ref(plan.original_of(*id).unwrap_or(*id)),
            other => other.clone(),
        })
        .collect();

    // Figure 7: deallocate the modified versions.
    for &(temp, _) in &plan.modified_old {
        heap.free(temp)?;
    }

    Ok(RestoreOutcome {
        roots,
        stats: RestoreStats {
            old_objects: plan.modified_old.len(),
            new_objects: plan.new_objects.len(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, DensePositionMap, HeapAccess, HeapSnapshot};
    use nrmi_wire::{deserialize_graph, serialize_graph, serialize_graph_with};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    /// Simulates the full six-step pipeline in-process: client graph →
    /// server copy → `mutate` runs remotely → reply marshalled from the
    /// server linear map → restore on the client.
    fn copy_restore_roundtrip(
        client: &mut Heap,
        root: ObjId,
        mutate: impl FnOnce(&mut Heap, ObjId),
    ) -> RestoreOutcome {
        // Steps 1-2: client linear map + ship to server.
        let client_map = LinearMap::build(client, &[root]).unwrap();
        let request = serialize_graph(client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        // Server linear map (matches the client's by construction).
        let server_map = LinearMap::build(&server, &[server_root]).unwrap();
        assert_eq!(server_map.len(), client_map.len());

        mutate(&mut server, server_root);

        // Step 3: reply = every old object (by linear map) as roots, with
        // old-index annotations.
        let reply_roots: Vec<Value> = server_map
            .order()
            .iter()
            .map(|&id| Value::Ref(id))
            .collect();
        let reply =
            serialize_graph_with(&server, &reply_roots, Some(server_map.position_map()), None)
                .unwrap();

        // Steps 4-6 on the client.
        let decoded = deserialize_graph(&reply.bytes, client).unwrap();
        apply_restore(client, &client_map, &decoded).unwrap()
    }

    #[test]
    fn running_example_restores_to_figure_2() {
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        let live_before = client.live_count();
        let outcome = copy_restore_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        assert_eq!(
            outcome.stats.old_objects, 7,
            "all 7 original nodes restored"
        );
        assert_eq!(outcome.stats.new_objects, 1, "foo allocates one node");
        let violations = tree::figure2_violations(&mut client, &ex).unwrap();
        assert!(
            violations.is_empty(),
            "copy-restore violated figure 2: {violations:?}"
        );
        // Temp copies freed: exactly one net new object (foo's temp).
        assert_eq!(client.live_count(), live_before + 1);
    }

    #[test]
    fn unreachable_but_aliased_data_is_restored() {
        // The crux of the paper: t.left is unlinked by the call, yet its
        // mutation (data = 0) must be restored because alias1 sees it.
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        copy_restore_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        assert_eq!(
            client.get_field(ex.alias1_target, "data").unwrap(),
            Value::Int(0),
            "alias1 must observe the write to the unlinked subtree"
        );
        assert_eq!(
            client.get_field(ex.alias2_target, "data").unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn object_identity_is_preserved() {
        // Restore must overwrite originals, never replace them: the
        // caller's handles (aliases!) keep pointing at the same ObjIds.
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        copy_restore_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        // The original RR node (now t.right.left through the new node)
        // must be the SAME ObjId.
        let new_right = client.get_ref(ex.root, "right").unwrap().unwrap();
        let reached = client.get_ref(new_right, "left").unwrap().unwrap();
        assert_eq!(
            reached, ex.rr,
            "identity of old objects preserved through restore"
        );
    }

    #[test]
    fn no_change_restore_is_identity() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 64, 8).unwrap();
        let before: Vec<Value> = tree::collect_nodes(&client, root)
            .unwrap()
            .iter()
            .map(|&n| client.get_field(n, "data").unwrap())
            .collect();
        let outcome = copy_restore_roundtrip(&mut client, root, |_, _| {});
        assert_eq!(outcome.stats.old_objects, 64);
        assert_eq!(outcome.stats.new_objects, 0);
        let after: Vec<Value> = tree::collect_nodes(&client, root)
            .unwrap()
            .iter()
            .map(|&n| client.get_field(n, "data").unwrap())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn return_value_aliasing_argument_translates_to_original() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 8, 3).unwrap();
        let client_map = LinearMap::build(&client, &[root]).unwrap();
        let request = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        let server_map = LinearMap::build(&server, &[server_root]).unwrap();
        // Reply: [return value = the root itself] ++ linear map.
        let mut reply_roots = vec![Value::Ref(server_root)];
        reply_roots.extend(server_map.order().iter().map(|&id| Value::Ref(id)));
        let reply =
            serialize_graph_with(&server, &reply_roots, Some(server_map.position_map()), None)
                .unwrap();
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let outcome = apply_restore(&mut client, &client_map, &decoded).unwrap();
        assert_eq!(
            outcome.roots[0],
            Value::Ref(root),
            "returned alias of the argument resolves to the caller's original"
        );
    }

    #[test]
    fn corrupt_old_index_rejected() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 4, 2).unwrap();
        let client_map = LinearMap::build(&client, &[root]).unwrap();
        // Craft a reply annotated against a BIGGER map than the client's.
        let mut server = Heap::new(client.registry_handle().clone());
        let request = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        let mut bogus = DensePositionMap::new();
        bogus.insert(server_root, 99);
        let reply =
            serialize_graph_with(&server, &[Value::Ref(server_root)], Some(&bogus), None).unwrap();
        let before = HeapSnapshot::capture(&client);
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let err = apply_restore(&mut client, &client_map, &decoded).unwrap_err();
        assert!(matches!(err, NrmiError::Protocol(_)), "{err}");
        let diff = before.diff(&HeapSnapshot::capture(&client));
        assert!(
            diff.is_empty(),
            "rejected reply must leave the heap untouched: {diff:?}"
        );
    }

    /// The transactional-restore regression: a reply whose first k-1
    /// entries are valid (and carry real changes) but whose k-th entry is
    /// corrupt must leave the caller's heap byte-identical — no
    /// half-restored originals, no leaked temp copies.
    #[test]
    fn corrupt_entry_at_position_k_leaves_heap_byte_identical() {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        // A second class with a different arity, so a mis-annotated entry
        // is a class/arity mismatch rather than a bad index.
        let named = reg
            .define("Named")
            .field_str("name")
            .serializable()
            .register();
        let mut client = Heap::new(reg.snapshot());
        let node = client
            .alloc(classes.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let tag = client.alloc(named, vec![Value::Str("tag".into())]).unwrap();
        let client_map = LinearMap::build(&client, &[node, tag]).unwrap();

        // Server copy, with a real mutation to the tree node so entry 0
        // of the reply genuinely differs from the caller's original.
        let mut server = Heap::new(client.registry_handle().clone());
        let request = serialize_graph(&client, &[Value::Ref(node), Value::Ref(tag)]).unwrap();
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let s_node = decoded_req.roots[0].as_ref_id().unwrap();
        let s_tag = decoded_req.roots[1].as_ref_id().unwrap();
        server.set_field(s_node, "data", Value::Int(777)).unwrap();

        // Corrupt annotations: entry 0 (the tree node) is correct, but
        // entry k=1 (the Named object) claims the tree node's old index —
        // a duplicate position AND a class mismatch. Before restore was
        // transactional, entry 0 was overwritten before the corruption at
        // entry 1 was discovered.
        let mut corrupt = DensePositionMap::new();
        corrupt.insert(s_node, 0);
        corrupt.insert(s_tag, 0);
        let reply = serialize_graph_with(
            &server,
            &[Value::Ref(s_node), Value::Ref(s_tag)],
            Some(&corrupt),
            None,
        )
        .unwrap();

        let before = HeapSnapshot::capture(&client);
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let err = apply_restore(&mut client, &client_map, &decoded).unwrap_err();
        assert!(matches!(err, NrmiError::Protocol(_)), "{err}");
        let diff = before.diff(&HeapSnapshot::capture(&client));
        assert!(
            diff.is_empty(),
            "corrupt reply must be all-or-nothing: no half-restore, no leaked temps: {diff:?}"
        );
        assert_eq!(
            client.get_field(node, "data").unwrap(),
            Value::Int(1),
            "the valid entry before the corruption must NOT have been applied"
        );
    }

    /// Same property for a class-mismatch-only corruption (positions all
    /// distinct and in range, but one entry pairs objects of different
    /// classes).
    #[test]
    fn class_mismatch_reply_leaves_heap_byte_identical() {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        let named = reg
            .define("Named")
            .field_str("name")
            .serializable()
            .register();
        let mut client = Heap::new(reg.snapshot());
        let node = client
            .alloc(classes.tree, vec![Value::Int(5), Value::Null, Value::Null])
            .unwrap();
        let tag = client.alloc(named, vec![Value::Str("x".into())]).unwrap();
        let client_map = LinearMap::build(&client, &[node, tag]).unwrap();

        let mut server = Heap::new(client.registry_handle().clone());
        let request = serialize_graph(&client, &[Value::Ref(node), Value::Ref(tag)]).unwrap();
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let s_node = decoded_req.roots[0].as_ref_id().unwrap();
        let s_tag = decoded_req.roots[1].as_ref_id().unwrap();
        server.set_field(s_node, "data", Value::Int(6)).unwrap();

        // Swapped annotations: each entry claims the OTHER's old index.
        let mut swapped = DensePositionMap::new();
        swapped.insert(s_node, 1);
        swapped.insert(s_tag, 0);
        let reply = serialize_graph_with(
            &server,
            &[Value::Ref(s_node), Value::Ref(s_tag)],
            Some(&swapped),
            None,
        )
        .unwrap();

        let before = HeapSnapshot::capture(&client);
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let err = apply_restore(&mut client, &client_map, &decoded).unwrap_err();
        assert!(matches!(err, NrmiError::Protocol(_)), "{err}");
        let diff = before.diff(&HeapSnapshot::capture(&client));
        assert!(
            diff.is_empty(),
            "swapped-class reply must leave the heap untouched: {diff:?}"
        );
    }

    #[test]
    fn partial_reply_restores_subset_only() {
        // DCE-style replies contain only some old objects; the others
        // must remain untouched.
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        let client_map = LinearMap::build(&client, &[ex.root]).unwrap();
        let request = serialize_graph(&client, &[Value::Ref(ex.root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        let _server_map = LinearMap::build(&server, &[server_root]).unwrap();
        // Server mutates root and left child...
        let s_left = server.get_ref(server_root, "left").unwrap().unwrap();
        server
            .set_field(server_root, "data", Value::Int(100))
            .unwrap();
        server.set_field(s_left, "data", Value::Int(200)).unwrap();
        // ...but the reply only ships the ROOT (as if left had become
        // parameter-unreachable under DCE rules).
        let mut old_index = DensePositionMap::new();
        old_index.insert(server_root, 0);
        // Note: serializing the root would drag children along; detach
        // them first to model a minimal partial reply.
        server.set_field(server_root, "left", Value::Null).unwrap();
        server.set_field(server_root, "right", Value::Null).unwrap();
        let reply =
            serialize_graph_with(&server, &[Value::Ref(server_root)], Some(&old_index), None)
                .unwrap();
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let outcome = apply_restore(&mut client, &client_map, &decoded).unwrap();
        assert_eq!(outcome.stats.old_objects, 1);
        assert_eq!(client.get_field(ex.root, "data").unwrap(), Value::Int(100));
        assert_eq!(
            client.get_field(ex.left, "data").unwrap(),
            Value::Int(3),
            "object absent from the reply keeps its pre-call value"
        );
    }
}
