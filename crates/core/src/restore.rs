//! The restore phase: steps 4–6 of the paper's algorithm (Section 3).
//!
//! By the time this module runs, steps 1–3 are done: the client built a
//! linear map of everything reachable from the restorable parameters
//! (step 1), shipped the graph to the server which executed the method
//! (step 2), and received back the server's post-call graph, serialized
//! from the server's linear map so that even objects *unreachable from
//! the parameters* travel home (step 3). Each returned object carries an
//! `old_index` annotation — its position in the original linear map — or
//! none, marking it as allocated by the remote routine.
//!
//! This module then:
//!
//! * **Step 4 — match.** Pair each annotated ("modified old") object
//!   with the caller's original at the same linear-map position.
//! * **Step 5 — overwrite.** Copy each modified old object's slots over
//!   its original *in place* (so every caller-side alias sees the
//!   changes), converting references to modified-old objects into
//!   references to the corresponding originals.
//! * **Step 6 — fix new objects.** Rewrite the new objects' references
//!   from modified-old objects to originals.
//!
//! Afterwards the modified-old copies are garbage and are freed
//! (Figure 7: "all modified old objects and their linear representation
//! can now be deallocated"). New objects stay — spliced into the
//! caller's graph exactly where the server put them.

use std::collections::HashMap;

use nrmi_heap::{Heap, LinearMap, ObjId, Value};
use nrmi_wire::DecodedGraph;

use crate::error::NrmiError;

/// Accounting from one restore pass (drives the simulated cost model and
/// the benchmark reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Old objects matched and overwritten in place.
    pub old_objects: usize,
    /// Server-allocated objects spliced into the caller's graph.
    pub new_objects: usize,
}

/// The outcome of a restore: translated reply roots plus accounting.
#[derive(Clone, Debug, Default)]
pub struct RestoreOutcome {
    /// The reply's root values with modified-old references translated
    /// to the caller's originals (e.g. a return value that aliases an
    /// argument ends up aliasing the caller's original object).
    pub roots: Vec<Value>,
    /// Accounting.
    pub stats: RestoreStats,
}

/// Applies steps 4–6 to `decoded` (the unmarshalled server reply) against
/// `client_map` (the caller's step-1 linear map), mutating `heap` in
/// place.
///
/// Handles both full copy-restore replies (every old object present) and
/// DCE-RPC replies (only parameter-reachable objects present): the
/// algorithm is indifferent to *which* old objects came back — it
/// restores exactly those that did.
///
/// # Errors
/// [`NrmiError::Protocol`] if an `old_index` annotation falls outside the
/// caller's linear map (a corrupt or mismatched reply); heap errors on
/// dangling handles.
pub fn apply_restore(
    heap: &mut Heap,
    client_map: &LinearMap,
    decoded: &DecodedGraph,
) -> Result<RestoreOutcome, NrmiError> {
    // Step 4: match up the two linear maps. `modified_to_original` maps
    // each returned modified-old object to the caller's original.
    let mut modified_to_original: HashMap<ObjId, ObjId> = HashMap::new();
    let mut modified_old: Vec<(ObjId, ObjId)> = Vec::new(); // (temp, original)
    let mut new_objects: Vec<ObjId> = Vec::new();
    for (temp, old_index) in decoded.iter_with_old() {
        match old_index {
            Some(pos) => {
                let original = client_map.at(pos).ok_or_else(|| {
                    NrmiError::Protocol(format!(
                        "reply annotates old index {pos}, but the call's linear map has {} entries",
                        client_map.len()
                    ))
                })?;
                modified_to_original.insert(temp, original);
                modified_old.push((temp, original));
            }
            None => new_objects.push(temp),
        }
    }

    // Step 5: overwrite each original with its modified version's data,
    // converting pointers to modified-old objects into pointers to the
    // corresponding originals. Pointers to new objects pass through
    // untouched — the new objects live in the caller's heap already.
    for &(temp, original) in &modified_old {
        let slots: Vec<Value> = heap
            .slots_of(temp)?
            .into_iter()
            .map(|v| match v {
                Value::Ref(id) => Value::Ref(*modified_to_original.get(&id).unwrap_or(&id)),
                other => other,
            })
            .collect();
        heap.overwrite_slots(original, slots)?;
    }

    // Step 6: new objects' pointers to modified-old objects become
    // pointers to the originals.
    for &temp in &new_objects {
        heap.rewrite_refs(temp, &modified_to_original)?;
    }

    // Translate the reply roots the same way.
    let roots: Vec<Value> = decoded
        .roots
        .iter()
        .map(|v| match v {
            Value::Ref(id) => Value::Ref(*modified_to_original.get(id).unwrap_or(id)),
            other => other.clone(),
        })
        .collect();

    // Figure 7: deallocate the modified versions.
    for &(temp, _) in &modified_old {
        heap.free(temp)?;
    }

    Ok(RestoreOutcome {
        roots,
        stats: RestoreStats { old_objects: modified_old.len(), new_objects: new_objects.len() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::tree::{self, TreeClasses};
    use nrmi_heap::{ClassRegistry, HeapAccess};
    use nrmi_wire::{deserialize_graph, serialize_graph, serialize_graph_with};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    /// Simulates the full six-step pipeline in-process: client graph →
    /// server copy → `mutate` runs remotely → reply marshalled from the
    /// server linear map → restore on the client.
    fn copy_restore_roundtrip(
        client: &mut Heap,
        root: ObjId,
        mutate: impl FnOnce(&mut Heap, ObjId),
    ) -> RestoreOutcome {
        // Steps 1-2: client linear map + ship to server.
        let client_map = LinearMap::build(client, &[root]).unwrap();
        let request = serialize_graph(client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        // Server linear map (matches the client's by construction).
        let server_map = LinearMap::build(&server, &[server_root]).unwrap();
        assert_eq!(server_map.len(), client_map.len());

        mutate(&mut server, server_root);

        // Step 3: reply = every old object (by linear map) as roots, with
        // old-index annotations.
        let old_index: HashMap<ObjId, u32> =
            server_map.iter().map(|(pos, id)| (id, pos)).collect();
        let reply_roots: Vec<Value> =
            server_map.order().iter().map(|&id| Value::Ref(id)).collect();
        let reply =
            serialize_graph_with(&server, &reply_roots, Some(&old_index), None).unwrap();

        // Steps 4-6 on the client.
        let decoded = deserialize_graph(&reply.bytes, client).unwrap();
        apply_restore(client, &client_map, &decoded).unwrap()
    }

    #[test]
    fn running_example_restores_to_figure_2() {
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        let live_before = client.live_count();
        let outcome = copy_restore_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        assert_eq!(outcome.stats.old_objects, 7, "all 7 original nodes restored");
        assert_eq!(outcome.stats.new_objects, 1, "foo allocates one node");
        let violations = tree::figure2_violations(&mut client, &ex).unwrap();
        assert!(violations.is_empty(), "copy-restore violated figure 2: {violations:?}");
        // Temp copies freed: exactly one net new object (foo's temp).
        assert_eq!(client.live_count(), live_before + 1);
    }

    #[test]
    fn unreachable_but_aliased_data_is_restored() {
        // The crux of the paper: t.left is unlinked by the call, yet its
        // mutation (data = 0) must be restored because alias1 sees it.
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        copy_restore_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        assert_eq!(
            client.get_field(ex.alias1_target, "data").unwrap(),
            Value::Int(0),
            "alias1 must observe the write to the unlinked subtree"
        );
        assert_eq!(client.get_field(ex.alias2_target, "data").unwrap(), Value::Int(9));
    }

    #[test]
    fn object_identity_is_preserved() {
        // Restore must overwrite originals, never replace them: the
        // caller's handles (aliases!) keep pointing at the same ObjIds.
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        copy_restore_roundtrip(&mut client, ex.root, |server, r| {
            tree::run_foo(server, r).unwrap();
        });
        // The original RR node (now t.right.left through the new node)
        // must be the SAME ObjId.
        let new_right = client.get_ref(ex.root, "right").unwrap().unwrap();
        let reached = client.get_ref(new_right, "left").unwrap().unwrap();
        assert_eq!(reached, ex.rr, "identity of old objects preserved through restore");
    }

    #[test]
    fn no_change_restore_is_identity() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 64, 8).unwrap();
        let before: Vec<Value> = tree::collect_nodes(&client, root)
            .unwrap()
            .iter()
            .map(|&n| client.get_field(n, "data").unwrap())
            .collect();
        let outcome = copy_restore_roundtrip(&mut client, root, |_, _| {});
        assert_eq!(outcome.stats.old_objects, 64);
        assert_eq!(outcome.stats.new_objects, 0);
        let after: Vec<Value> = tree::collect_nodes(&client, root)
            .unwrap()
            .iter()
            .map(|&n| client.get_field(n, "data").unwrap())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn return_value_aliasing_argument_translates_to_original() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 8, 3).unwrap();
        let client_map = LinearMap::build(&client, &[root]).unwrap();
        let request = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        let server_map = LinearMap::build(&server, &[server_root]).unwrap();
        let old_index: HashMap<ObjId, u32> =
            server_map.iter().map(|(pos, id)| (id, pos)).collect();
        // Reply: [return value = the root itself] ++ linear map.
        let mut reply_roots = vec![Value::Ref(server_root)];
        reply_roots.extend(server_map.order().iter().map(|&id| Value::Ref(id)));
        let reply = serialize_graph_with(&server, &reply_roots, Some(&old_index), None).unwrap();
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let outcome = apply_restore(&mut client, &client_map, &decoded).unwrap();
        assert_eq!(
            outcome.roots[0],
            Value::Ref(root),
            "returned alias of the argument resolves to the caller's original"
        );
    }

    #[test]
    fn corrupt_old_index_rejected() {
        let (mut client, classes) = setup();
        let root = tree::build_random_tree(&mut client, &classes, 4, 2).unwrap();
        let client_map = LinearMap::build(&client, &[root]).unwrap();
        // Craft a reply annotated against a BIGGER map than the client's.
        let mut server = Heap::new(client.registry_handle().clone());
        let request = serialize_graph(&client, &[Value::Ref(root)]).unwrap();
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        let bogus: HashMap<ObjId, u32> = [(server_root, 99u32)].into_iter().collect();
        let reply =
            serialize_graph_with(&server, &[Value::Ref(server_root)], Some(&bogus), None).unwrap();
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let err = apply_restore(&mut client, &client_map, &decoded).unwrap_err();
        assert!(matches!(err, NrmiError::Protocol(_)), "{err}");
    }

    #[test]
    fn partial_reply_restores_subset_only() {
        // DCE-style replies contain only some old objects; the others
        // must remain untouched.
        let (mut client, classes) = setup();
        let ex = tree::build_running_example(&mut client, &classes).unwrap();
        let client_map = LinearMap::build(&client, &[ex.root]).unwrap();
        let request = serialize_graph(&client, &[Value::Ref(ex.root)]).unwrap();
        let mut server = Heap::new(client.registry_handle().clone());
        let decoded_req = deserialize_graph(&request.bytes, &mut server).unwrap();
        let server_root = decoded_req.roots[0].as_ref_id().unwrap();
        let _server_map = LinearMap::build(&server, &[server_root]).unwrap();
        // Server mutates root and left child...
        let s_left = server.get_ref(server_root, "left").unwrap().unwrap();
        server.set_field(server_root, "data", Value::Int(100)).unwrap();
        server.set_field(s_left, "data", Value::Int(200)).unwrap();
        // ...but the reply only ships the ROOT (as if left had become
        // parameter-unreachable under DCE rules).
        let old_index: HashMap<ObjId, u32> = [(server_root, 0u32)].into_iter().collect();
        // Note: serializing the root would drag children along; detach
        // them first to model a minimal partial reply.
        server.set_field(server_root, "left", Value::Null).unwrap();
        server.set_field(server_root, "right", Value::Null).unwrap();
        let reply =
            serialize_graph_with(&server, &[Value::Ref(server_root)], Some(&old_index), None)
                .unwrap();
        let decoded = deserialize_graph(&reply.bytes, &mut client).unwrap();
        let outcome = apply_restore(&mut client, &client_map, &decoded).unwrap();
        assert_eq!(outcome.stats.old_objects, 1);
        assert_eq!(client.get_field(ex.root, "data").unwrap(), Value::Int(100));
        assert_eq!(
            client.get_field(ex.left, "data").unwrap(),
            Value::Int(3),
            "object absent from the reply keeps its pre-call value"
        );
    }
}
