//! Call-by-reference through remote pointers (Figure 3).
//!
//! Two halves of one protocol:
//!
//! * [`RemoteHeapProxy`] — the *server*'s view of the caller's heap
//!   during a remote-reference call. It implements
//!   [`HeapAccess`], so an unmodified service body runs against it; but
//!   every access to a stub-backed object becomes a request/reply
//!   exchange with the object's owner. This is the world the paper
//!   measures in Table 6 and finds "extremely inefficient (as
//!   expected)".
//! * [`handle_callback`] — the *owner*'s side: resolve the export key,
//!   perform the access on the real object, answer.
//!
//! Allocation is local (a `new` in the remote routine creates the object
//! on the server); its fields may hold stubs to caller objects, and
//! caller objects may come to hold stubs to it — the distributed cycles
//! that reference-counting DGC can never reclaim.

use std::collections::HashMap;

use nrmi_heap::{ClassId, HeapAccess, HeapError, ObjId, SharedRegistry, Value};
use nrmi_transport::{Frame, Transport};

use crate::node::NodeState;

/// Statistics from one remote-reference service invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Callback round trips issued (each is two network messages).
    pub callbacks: u64,
    /// Accesses served from the local (server) heap without network.
    pub local_accesses: u64,
}

/// A [`HeapAccess`] implementation that transparently routes accesses to
/// stub-backed objects through the transport to their owner.
pub struct RemoteHeapProxy<'a> {
    node: &'a mut NodeState,
    transport: &'a mut dyn Transport,
    class_cache: HashMap<ObjId, ClassId>,
    stats: ProxyStats,
}

impl std::fmt::Debug for RemoteHeapProxy<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteHeapProxy")
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a> RemoteHeapProxy<'a> {
    /// Wraps the server's node state and its transport back to the caller.
    pub fn new(node: &'a mut NodeState, transport: &'a mut dyn Transport) -> Self {
        RemoteHeapProxy {
            node,
            transport,
            class_cache: HashMap::new(),
            stats: ProxyStats::default(),
        }
    }

    /// Accounting for the completed invocation.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    fn remote_error(msg: impl std::fmt::Display) -> HeapError {
        HeapError::RemoteAccess(msg.to_string())
    }

    /// Issues one callback round trip and returns the reply frame.
    fn roundtrip(&mut self, request: Frame) -> Result<Frame, HeapError> {
        self.stats.callbacks += 1;
        let cost = self.node.profile.cost().callback_proxy_us;
        self.node.charge_cpu(cost);
        self.transport.send(&request).map_err(Self::remote_error)?;
        match self.transport.recv().map_err(Self::remote_error)? {
            Frame::ErrorReply { message } => Err(HeapError::RemoteAccess(message)),
            other => Ok(other),
        }
    }

    fn stub_key_of(&self, obj: ObjId) -> Result<Option<u64>, HeapError> {
        self.node.heap.stub_key(obj)
    }

    fn expect_value(&mut self, frame: Frame) -> Result<Value, HeapError> {
        match frame {
            Frame::ValueReply(rv) => self.node.rval_to_value(&rv).map_err(Self::remote_error),
            other => Err(Self::remote_error(format!(
                "expected ValueReply, got {other:?}"
            ))),
        }
    }
}

impl HeapAccess for RemoteHeapProxy<'_> {
    fn get_field_raw(&mut self, obj: ObjId, field: usize) -> Result<Value, HeapError> {
        match self.stub_key_of(obj)? {
            Some(key) => {
                let reply = self.roundtrip(Frame::GetField {
                    key,
                    field: field as u32,
                })?;
                self.expect_value(reply)
            }
            None => {
                self.stats.local_accesses += 1;
                self.node.heap.get_field_raw(obj, field)
            }
        }
    }

    fn set_field_raw(&mut self, obj: ObjId, field: usize, value: Value) -> Result<(), HeapError> {
        match self.stub_key_of(obj)? {
            Some(key) => {
                let rv = self.node.value_to_rval(&value)?;
                let reply = self.roundtrip(Frame::SetField {
                    key,
                    field: field as u32,
                    value: rv,
                })?;
                match reply {
                    Frame::Ack => Ok(()),
                    other => Err(Self::remote_error(format!("expected Ack, got {other:?}"))),
                }
            }
            None => {
                self.stats.local_accesses += 1;
                self.node.heap.set_field_raw(obj, field, value)
            }
        }
    }

    fn alloc_raw(&mut self, class: ClassId, fields: Vec<Value>) -> Result<ObjId, HeapError> {
        // `new` in the remote routine allocates on the server.
        self.stats.local_accesses += 1;
        self.node.heap.alloc_raw(class, fields)
    }

    fn alloc_array_raw(
        &mut self,
        class: ClassId,
        elements: Vec<Value>,
    ) -> Result<ObjId, HeapError> {
        self.stats.local_accesses += 1;
        self.node.heap.alloc_array_raw(class, elements)
    }

    fn class_of(&mut self, obj: ObjId) -> Result<ClassId, HeapError> {
        if let Some(&class) = self.class_cache.get(&obj) {
            return Ok(class);
        }
        let class = match self.stub_key_of(obj)? {
            Some(key) => {
                let reply = self.roundtrip(Frame::ClassOf { key })?;
                match reply {
                    Frame::ClassReply(idx) => ClassId::from_index(idx),
                    other => {
                        return Err(Self::remote_error(format!(
                            "expected ClassReply, got {other:?}"
                        )))
                    }
                }
            }
            None => {
                self.stats.local_accesses += 1;
                self.node.heap.class_of(obj)?
            }
        };
        // Stubs know their remote interface statically in real RMI; one
        // query per object models the stub's type knowledge.
        self.class_cache.insert(obj, class);
        Ok(class)
    }

    fn slot_count(&mut self, obj: ObjId) -> Result<usize, HeapError> {
        match self.stub_key_of(obj)? {
            Some(key) => {
                let reply = self.roundtrip(Frame::SlotCount { key })?;
                match reply {
                    Frame::CountReply(n) => Ok(n as usize),
                    other => Err(Self::remote_error(format!(
                        "expected CountReply, got {other:?}"
                    ))),
                }
            }
            None => {
                self.stats.local_accesses += 1;
                self.node.heap.slot_count(obj)
            }
        }
    }

    fn get_element(&mut self, obj: ObjId, index: usize) -> Result<Value, HeapError> {
        match self.stub_key_of(obj)? {
            Some(key) => {
                let reply = self.roundtrip(Frame::GetElement {
                    key,
                    index: index as u32,
                })?;
                self.expect_value(reply)
            }
            None => {
                self.stats.local_accesses += 1;
                self.node.heap.get_element(obj, index)
            }
        }
    }

    fn set_element(&mut self, obj: ObjId, index: usize, value: Value) -> Result<(), HeapError> {
        match self.stub_key_of(obj)? {
            Some(key) => {
                let rv = self.node.value_to_rval(&value)?;
                let reply = self.roundtrip(Frame::SetElement {
                    key,
                    index: index as u32,
                    value: rv,
                })?;
                match reply {
                    Frame::Ack => Ok(()),
                    other => Err(Self::remote_error(format!("expected Ack, got {other:?}"))),
                }
            }
            None => {
                self.stats.local_accesses += 1;
                self.node.heap.set_element(obj, index, value)
            }
        }
    }

    fn registry(&self) -> &SharedRegistry {
        self.node.heap.registry_handle()
    }
}

/// Serves one callback frame against the owner's node state. Returns the
/// reply to send, or `None` for frames that are not callbacks (the
/// caller's receive loop handles those itself).
pub fn handle_callback(node: &mut NodeState, frame: &Frame) -> Option<Frame> {
    let cost = node.profile.cost().callback_owner_us;
    let reply = match frame {
        Frame::GetField { key, field } => {
            node.charge_cpu(cost);
            with_export(node, *key, |node, obj| {
                let v = node.heap.get_field_raw(obj, *field as usize)?;
                let rv = node.value_to_rval(&v)?;
                Ok(Frame::ValueReply(rv))
            })
        }
        Frame::SetField { key, field, value } => {
            node.charge_cpu(cost);
            with_export(node, *key, |node, obj| {
                let v = node
                    .rval_to_value(value)
                    .map_err(|e| HeapError::RemoteAccess(e.to_string()))?;
                node.heap.set_field_raw(obj, *field as usize, v)?;
                Ok(Frame::Ack)
            })
        }
        Frame::GetElement { key, index } => {
            node.charge_cpu(cost);
            with_export(node, *key, |node, obj| {
                let v = node.heap.get_element(obj, *index as usize)?;
                let rv = node.value_to_rval(&v)?;
                Ok(Frame::ValueReply(rv))
            })
        }
        Frame::SetElement { key, index, value } => {
            node.charge_cpu(cost);
            with_export(node, *key, |node, obj| {
                let v = node
                    .rval_to_value(value)
                    .map_err(|e| HeapError::RemoteAccess(e.to_string()))?;
                node.heap.set_element(obj, *index as usize, v)?;
                Ok(Frame::Ack)
            })
        }
        Frame::SlotCount { key } => {
            node.charge_cpu(cost);
            with_export(node, *key, |node, obj| {
                Ok(Frame::CountReply(node.heap.slot_count(obj)? as u64))
            })
        }
        Frame::ClassOf { key } => {
            node.charge_cpu(cost);
            with_export(node, *key, |node, obj| {
                Ok(Frame::ClassReply(node.heap.class_of(obj)?.index()))
            })
        }
        Frame::DgcClean { key } => {
            node.exports.clean(*key);
            return Some(Frame::Ack);
        }
        _ => return None,
    };
    Some(reply.unwrap_or_else(|e: HeapError| Frame::ErrorReply {
        message: e.to_string(),
    }))
}

fn with_export(
    node: &mut NodeState,
    key: u64,
    f: impl FnOnce(&mut NodeState, ObjId) -> Result<Frame, HeapError>,
) -> Result<Frame, HeapError> {
    let obj = node
        .exports
        .lookup(key)
        .ok_or_else(|| HeapError::RemoteAccess(format!("unknown export key {key}")))?;
    f(node, obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::tree;
    use nrmi_heap::ClassRegistry;
    use nrmi_transport::{channel_pair, LinkSpec, MachineSpec};
    use std::thread;

    /// Builds a connected (owner, proxy-side) pair of nodes sharing a
    /// registry, with the running example living at the owner.
    fn setup() -> (
        NodeState,
        NodeState,
        tree::RunningExample,
        nrmi_heap::SharedRegistry,
    ) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        let registry = reg.snapshot();
        let mut owner = NodeState::new(registry.clone(), MachineSpec::fast());
        let server = NodeState::new(registry.clone(), MachineSpec::slow());
        let ex = tree::build_running_example(&mut owner.heap, &classes).unwrap();
        (owner, server, ex, registry)
    }

    /// Runs `body` against a proxy while the owner serves callbacks on
    /// the other end of an in-process channel.
    fn with_proxy<R: Send + 'static>(
        owner: &mut NodeState,
        server: &mut NodeState,
        root_key: u64,
        body: impl FnOnce(&mut RemoteHeapProxy<'_>, ObjId) -> R + Send + 'static,
    ) -> (R, ProxyStats) {
        let (mut owner_t, mut server_t) = channel_pair(None, LinkSpec::free());
        thread::scope(|scope| {
            // Owner side: serve callbacks until the proxy side hangs up.
            let owner_loop = scope.spawn(move || {
                while let Ok(frame) = owner_t.recv() {
                    match handle_callback(owner, &frame) {
                        Some(reply) => {
                            if owner_t.send(&reply).is_err() {
                                break;
                            }
                        }
                        None => break,
                    }
                }
            });
            let result = {
                let mut proxy = RemoteHeapProxy::new(server, &mut server_t);
                let stub = proxy.node.stub_for(root_key).unwrap();
                let r = body(&mut proxy, stub);
                let stats = proxy.stats();
                drop(server_t); // hang up so the owner loop exits
                (r, stats)
            };
            owner_loop.join().unwrap();
            result
        })
    }

    #[test]
    fn remote_field_reads_and_writes() {
        let (mut owner, mut server, ex, _) = setup();
        let key = owner.exports.export(ex.root);
        let ((), stats) = with_proxy(&mut owner, &mut server, key, |proxy, root| {
            // Read through the stub.
            let data = proxy.get_field(root, "data").unwrap();
            assert_eq!(data, Value::Int(5));
            // Write through the stub.
            proxy.set_field(root, "data", Value::Int(99)).unwrap();
        });
        assert!(
            stats.callbacks >= 2,
            "reads and writes each cross the network"
        );
        assert_eq!(
            owner.heap.get_field(ex.root, "data").unwrap(),
            Value::Int(99)
        );
    }

    #[test]
    fn run_foo_over_remote_pointers_matches_figure_2() {
        // The paper's invariant: remote references implement
        // call-by-reference, so foo's effects appear directly on the
        // owner's originals — Figure 2 without any restore phase.
        let (mut owner, mut server, ex, _) = setup();
        let key = owner.exports.export(ex.root);
        let ((), stats) = with_proxy(&mut owner, &mut server, key, |proxy, root| {
            tree::run_foo(proxy, root).unwrap();
        });
        // Everything except the new node's locals crossed the network.
        assert!(stats.callbacks > 10, "got {stats:?}");
        // One nuance: under remote pointers the NEW node lives on the
        // SERVER; t.right on the owner is a stub (the paper's Figure 3
        // picture), so the full Figure-2 walk happens across two heaps.
        // Direct mutations on owner objects must all be visible:
        assert_eq!(
            owner.heap.get_field(ex.alias1_target, "data").unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            owner.heap.get_field(ex.alias2_target, "data").unwrap(),
            Value::Int(9)
        );
        assert_eq!(owner.heap.get_field(ex.rr, "data").unwrap(), Value::Int(8));
        assert_eq!(owner.heap.get_ref(ex.root, "left").unwrap(), None);
        assert_eq!(owner.heap.get_ref(ex.alias2_target, "right").unwrap(), None);
        // t.right is a stub for the server-allocated temp node.
        let t_right = owner.heap.get_ref(ex.root, "right").unwrap().unwrap();
        assert!(
            owner.heap.stub_key(t_right).unwrap().is_some(),
            "t.right is a remote stub"
        );
    }

    #[test]
    fn distributed_cycle_pins_exports_on_both_sides() {
        // After run_foo over remote pointers: owner objects reference a
        // server object (temp) and the server object references owner
        // objects (rr). Reference-counting DGC cannot reclaim any of it
        // — the Table 6 leak.
        let (mut owner, mut server, ex, _) = setup();
        let key = owner.exports.export(ex.root);
        let ((), _) = with_proxy(&mut owner, &mut server, key, |proxy, root| {
            tree::run_foo(proxy, root).unwrap();
        });
        assert!(
            !owner.exports.is_empty(),
            "owner objects pinned by server stubs"
        );
        assert!(
            !server.exports.is_empty(),
            "server temp pinned by owner stub"
        );
        // The server-side temp node references owner nodes through stubs.
        let temp_stub = owner.heap.get_ref(ex.root, "right").unwrap().unwrap();
        let temp_key = owner.heap.stub_key(temp_stub).unwrap().unwrap();
        let temp_obj = server.exports.lookup(temp_key).unwrap();
        let temp_left = server.heap.get_ref(temp_obj, "left").unwrap().unwrap();
        assert!(server.heap.stub_key(temp_left).unwrap().is_some());
    }

    #[test]
    fn error_replies_surface_as_remote_access_errors() {
        let (mut owner, mut server, _, _) = setup();
        // Key 999 was never exported.
        let ((), _) = with_proxy(&mut owner, &mut server, 999, |proxy, stub| {
            let err = proxy.get_field_raw(stub, 0).unwrap_err();
            assert!(matches!(err, HeapError::RemoteAccess(_)), "{err}");
        });
    }

    #[test]
    fn class_cache_avoids_repeat_lookups() {
        let (mut owner, mut server, ex, _) = setup();
        let key = owner.exports.export(ex.root);
        let ((), stats) = with_proxy(&mut owner, &mut server, key, |proxy, root| {
            // Two by-name accesses: class is fetched once, cached after.
            let _ = proxy.get_field(root, "data").unwrap();
            let _ = proxy.get_field(root, "data").unwrap();
        });
        // 1 ClassOf + 2 GetField = 3 round trips (not 4).
        assert_eq!(stats.callbacks, 3, "{stats:?}");
    }

    #[test]
    fn dgc_clean_handled() {
        let (mut owner, _, ex, _) = setup();
        let key = owner.exports.export(ex.root);
        assert_eq!(owner.exports.len(), 1);
        let reply = handle_callback(&mut owner, &Frame::DgcClean { key });
        assert_eq!(reply, Some(Frame::Ack));
        assert!(owner.exports.is_empty());
    }

    #[test]
    fn non_callback_frames_pass_through() {
        let (mut owner, _, _, _) = setup();
        assert_eq!(handle_callback(&mut owner, &Frame::Ack), None);
        assert_eq!(handle_callback(&mut owner, &Frame::Shutdown), None);
        assert_eq!(
            handle_callback(&mut owner, &Frame::CallReply { payload: vec![] }),
            None
        );
    }
}
