//! Call tracing: a client-side record of every remote invocation.
//!
//! Middleware hides mechanism by design, which is exactly what makes it
//! hard to debug ("why was that call slow?", "did the restore actually
//! run?", "how many bytes did this ship?"). A [`Tracer`] attached to a
//! session records one [`CallTrace`] per invocation — target, semantics,
//! outcome, wire statistics, wall-clock — and renders them as a table.

use std::time::Duration;

use crate::protocol::CallStats;
use crate::semantics::CallOptions;

/// One recorded remote invocation.
#[derive(Clone, Debug)]
pub struct CallTrace {
    /// Monotonic per-session sequence number.
    pub seq: u64,
    /// `service.method` or `#stubkey.method`.
    pub target: String,
    /// The options the call ran under.
    pub options: CallOptions,
    /// `None` on success, the error message otherwise.
    pub error: Option<String>,
    /// Wire statistics (zeroed for failed calls that never marshalled).
    pub stats: CallStats,
    /// Wall-clock duration of the whole invocation.
    pub elapsed: Duration,
}

impl CallTrace {
    /// One-line rendering.
    pub fn line(&self) -> String {
        let mode = match self.options.mode_override {
            None => "auto",
            Some(crate::PassMode::Copy) => "copy",
            Some(crate::PassMode::CopyRestore) => "copy-restore",
            Some(crate::PassMode::RemoteRef) => "remote-ref",
            Some(crate::PassMode::DceRpc) => "dce",
        };
        let delta = if self.options.delta_reply {
            "+delta"
        } else {
            ""
        };
        let outcome = match &self.error {
            None => "ok".to_owned(),
            Some(e) => format!("ERR {e}"),
        };
        format!(
            "#{} {} [{}{}] {}us req={}B/{}obj reply={}B restored={} new={} callbacks={} {}",
            self.seq,
            self.target,
            mode,
            delta,
            self.elapsed.as_micros(),
            self.stats.request_bytes,
            self.stats.request_objects,
            self.stats.reply_bytes,
            self.stats.restored_objects,
            self.stats.new_objects,
            self.stats.callbacks_served,
            outcome
        )
    }
}

/// An append-only call log. Disabled by default (zero overhead beyond a
/// branch); enable per session.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    next_seq: u64,
    entries: Vec<CallTrace>,
}

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turns recording off (existing entries are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one call (no-op when disabled). Returns the sequence
    /// number assigned, if recorded.
    pub fn record(
        &mut self,
        target: String,
        options: CallOptions,
        error: Option<String>,
        stats: CallStats,
        elapsed: Duration,
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(CallTrace {
            seq,
            target,
            options,
            error,
            stats,
            elapsed,
        });
        Some(seq)
    }

    /// The recorded calls, oldest first.
    pub fn entries(&self) -> &[CallTrace] {
        &self.entries
    }

    /// Drops all recorded entries (the sequence keeps counting).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Renders the log, one line per call.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|e| e.line())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Aggregate totals over the recorded calls:
    /// `(calls, errors, request_bytes, reply_bytes, callbacks)`.
    pub fn totals(&self) -> (usize, usize, usize, usize, u64) {
        let mut errors = 0;
        let mut req = 0;
        let mut reply = 0;
        let mut callbacks = 0;
        for e in &self.entries {
            if e.error.is_some() {
                errors += 1;
            }
            req += e.stats.request_bytes;
            reply += e.stats.reply_bytes;
            callbacks += e.stats.callbacks_served;
        }
        (self.entries.len(), errors, req, reply, callbacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(req: usize, reply: usize) -> CallStats {
        CallStats {
            request_bytes: req,
            reply_bytes: reply,
            ..CallStats::default()
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        assert!(!t.is_enabled());
        assert_eq!(
            t.record(
                "svc.m".into(),
                CallOptions::auto(),
                None,
                stats(1, 2),
                Duration::ZERO
            ),
            None
        );
        assert!(t.entries().is_empty());
    }

    #[test]
    fn records_and_renders() {
        let mut t = Tracer::new();
        t.enable();
        let seq = t
            .record(
                "svc.m".into(),
                CallOptions::auto(),
                None,
                stats(100, 200),
                Duration::from_micros(5),
            )
            .unwrap();
        assert_eq!(seq, 0);
        t.record(
            "svc.boom".into(),
            CallOptions::copy_restore_delta(),
            Some("remote exception: x".into()),
            stats(10, 0),
            Duration::from_micros(7),
        );
        assert_eq!(t.entries().len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("svc.m [auto]"));
        assert!(rendered.contains("copy-restore+delta"));
        assert!(rendered.contains("ERR remote exception: x"));
        let (calls, errors, req, reply, callbacks) = t.totals();
        assert_eq!((calls, errors, req, reply, callbacks), (2, 1, 110, 200, 0));
    }

    #[test]
    fn clear_keeps_sequence() {
        let mut t = Tracer::new();
        t.enable();
        t.record(
            "a.b".into(),
            CallOptions::auto(),
            None,
            stats(0, 0),
            Duration::ZERO,
        );
        t.clear();
        assert!(t.entries().is_empty());
        let seq = t
            .record(
                "a.c".into(),
                CallOptions::auto(),
                None,
                stats(0, 0),
                Duration::ZERO,
            )
            .unwrap();
        assert_eq!(seq, 1, "sequence numbers never repeat");
    }
}
