//! The middleware error type.

use std::error::Error;
use std::fmt;

use nrmi_heap::HeapError;
use nrmi_transport::TransportError;
use nrmi_wire::WireError;

/// Errors surfaced by NRMI remote calls.
///
/// Faithful to the paper's position on network transparency (§6.2):
/// remote calls *can fail in ways local calls cannot*, and the programmer
/// must see that. Every remote invocation returns `Result<_, NrmiError>`
/// — the analogue of `RemoteException`.
#[derive(Debug)]
#[non_exhaustive]
pub enum NrmiError {
    /// A heap operation failed.
    Heap(HeapError),
    /// Marshalling or unmarshalling failed.
    Wire(WireError),
    /// The transport failed (disconnect, timeout, socket error).
    Transport(TransportError),
    /// No service is bound under the requested name.
    NoSuchService(String),
    /// The service does not implement the requested method.
    NoSuchMethod {
        /// Service name.
        service: String,
        /// Method name.
        method: String,
    },
    /// The remote method raised an exception; carries its message.
    Remote(String),
    /// The peer violated the protocol (unexpected frame, bad annotation).
    Protocol(String),
    /// A call was made with arguments the chosen semantics cannot
    /// marshal (e.g. remote-reference mode with a primitive-only class).
    InvalidArgument(String),
}

impl NrmiError {
    /// Builds an application-level error for service implementations —
    /// the analogue of throwing inside a remote method body.
    pub fn app(message: impl Into<String>) -> Self {
        NrmiError::Remote(message.into())
    }
}

impl fmt::Display for NrmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrmiError::Heap(e) => write!(f, "heap error: {e}"),
            NrmiError::Wire(e) => write!(f, "marshalling error: {e}"),
            NrmiError::Transport(e) => write!(f, "transport error: {e}"),
            NrmiError::NoSuchService(name) => write!(f, "no service bound as {name:?}"),
            NrmiError::NoSuchMethod { service, method } => {
                write!(f, "service {service:?} has no method {method:?}")
            }
            NrmiError::Remote(msg) => write!(f, "remote exception: {msg}"),
            NrmiError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NrmiError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for NrmiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NrmiError::Heap(e) => Some(e),
            NrmiError::Wire(e) => Some(e),
            NrmiError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for NrmiError {
    fn from(e: HeapError) -> Self {
        NrmiError::Heap(e)
    }
}

impl From<WireError> for NrmiError {
    fn from(e: WireError) -> Self {
        NrmiError::Wire(e)
    }
}

impl From<TransportError> for NrmiError {
    fn from(e: TransportError) -> Self {
        NrmiError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error + 'static>() {}
        assert_bounds::<NrmiError>();
    }

    #[test]
    fn sources_chain() {
        assert!(NrmiError::from(HeapError::DanglingRef(1))
            .source()
            .is_some());
        assert!(NrmiError::from(WireError::BadMagic).source().is_some());
        assert!(NrmiError::from(TransportError::Timeout).source().is_some());
        assert!(NrmiError::NoSuchService("x".into()).source().is_none());
    }

    #[test]
    fn displays() {
        assert!(NrmiError::app("boom").to_string().contains("boom"));
        assert!(NrmiError::NoSuchService("translator".into())
            .to_string()
            .contains("translator"));
        assert!(NrmiError::NoSuchMethod {
            service: "s".into(),
            method: "m".into()
        }
        .to_string()
        .contains('m'));
        assert!(NrmiError::Protocol("bad".into())
            .to_string()
            .contains("bad"));
        assert!(NrmiError::InvalidArgument("arg".into())
            .to_string()
            .contains("arg"));
    }
}
