//! Lock-discipline witness: lockdep-style instrumentation for the
//! fine-grained server's locks (DESIGN.md §3i).
//!
//! PR 5 and PR 7 replaced the one-big-lock server with dozens of small
//! `Mutex`/`RwLock` sites whose safety rests on *unchecked* cross-thread
//! invariants: no lock held across transport I/O, a consistent
//! acquisition order between lock domains, no same-class re-entry. This
//! module makes those invariants observable. Every lock in the server
//! stack is a [`TrackedMutex`]/[`TrackedRwLock`] carrying a named
//! [`LockClass`]; in default builds the wrappers are inlined
//! passthroughs to `parking_lot`, and under the `lockcheck` cargo
//! feature every acquisition and release feeds a process-global
//! **witness**:
//!
//! * a per-thread *held-lock stack*, consulted by the transport's
//!   [`blocking_region`](nrmi_transport::blocking) markers — entering a
//!   blocking transport operation with any tracked lock held is
//!   recorded (`NRMI-L002`), unless an [`allow_blocking`] scope with a
//!   documented reason is active;
//! * a global *acquisition-order graph* over lock classes — acquiring
//!   class B while holding class A records the edge `A → B` with a
//!   thread/stack witness, so a cycle proves two code paths that could
//!   deadlock even when no run ever did (`NRMI-L001`, the lockdep
//!   idea);
//! * *re-entry* records — acquiring a class already held exclusively by
//!   the same thread (`NRMI-L003`), which self-deadlocks on the same
//!   instance and is order-ambiguous across instances;
//! * *hold-time watermarks* — the longest exclusive hold per class,
//!   gated against [`HOT_HOLD_WATERMARK`] for the hot-path classes
//!   every call touches (`NRMI-L004`).
//!
//! The analysis and diagnostics rendering live in
//! `nrmi-check::lockcheck`; this module only records. The witness is
//! deliberately class-granular (not per-instance): the server's
//! discipline is stated in terms of domains — "no shard lock is ever
//! held across execution", "the service mutex is the only lock held
//! during an invocation" — and class edges are what make those
//! statements checkable with a handful of nodes.

use std::fmt;
use std::time::Duration;

#[cfg(feature = "lockcheck")]
use std::cell::RefCell;
#[cfg(feature = "lockcheck")]
use std::collections::HashMap;
#[cfg(feature = "lockcheck")]
use std::ops::{Deref, DerefMut};
#[cfg(feature = "lockcheck")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "lockcheck")]
use std::time::Instant;

/// The named lock domains of the fine-grained server. One class per
/// *role*, not per instance: the 16 reply-cache shards are one class,
/// every per-service mutex is one class. The discipline invariants
/// (and their L-code diagnostics) are stated over these names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockClass {
    /// A service binding's invocation mutex (`SharedServer` bindings) —
    /// the §4.1 `synchronized`-dispatch analogue, held for the duration
    /// of one invocation *including mid-call callbacks* (a documented
    /// [`allow_blocking`] scope).
    Service,
    /// The big-lock baseline's `Mutex<ServerNode>` (and the root node
    /// state kept aside by `SharedServer`): one lock over a whole
    /// node's heap, exports, and codec scratch.
    NodeHeap,
    /// One shard of the at-most-once [`ShardedReplyCache`]
    /// (`crate::server`): hot-path, never held across call execution.
    ReplyCacheShard,
    /// The read-mostly name→service / class→service binding table.
    Bindings,
    /// A shared worker job-queue receiver (the reactor pool's and the
    /// pipelined loop's `Mutex<Receiver<_>>`): held *across* the
    /// blocking channel receive by design, so idle workers take turns.
    ReactorQueue,
    /// State guarding the reply send path: the pipelined writer
    /// thread's error slot.
    SendQueue,
    /// Serve-pool control plane: worker/escalation join-handle lists
    /// and the accept-error slot.
    Control,
    /// The warm-cache coherence lease table (`SharedServer`): which
    /// holder has which graph objects warm-cached, consulted on every
    /// warm call's revalidation and on connection teardown. Never held
    /// across call execution or transport I/O.
    LeaseTable,
}

impl LockClass {
    /// Every class, in a stable order (used for snapshot iteration).
    pub const ALL: [LockClass; 8] = [
        LockClass::Service,
        LockClass::NodeHeap,
        LockClass::ReplyCacheShard,
        LockClass::Bindings,
        LockClass::ReactorQueue,
        LockClass::SendQueue,
        LockClass::Control,
        LockClass::LeaseTable,
    ];

    /// Stable lowercase name used in diagnostics and reports.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::Service => "service",
            LockClass::NodeHeap => "node-heap",
            LockClass::ReplyCacheShard => "reply-cache-shard",
            LockClass::Bindings => "bindings",
            LockClass::ReactorQueue => "reactor-queue",
            LockClass::SendQueue => "send-queue",
            LockClass::Control => "control",
            LockClass::LeaseTable => "lease-table",
        }
    }

    /// Classes on the per-call hot path, whose holds must stay short:
    /// these are gated against [`HOT_HOLD_WATERMARK`] (`NRMI-L004`).
    /// `Service` is excluded on purpose (an invocation may legitimately
    /// take as long as the application body takes), as are the queue
    /// receivers (idle workers park holding them by design).
    pub fn hot_path(self) -> bool {
        matches!(
            self,
            LockClass::ReplyCacheShard
                | LockClass::Bindings
                | LockClass::SendQueue
                | LockClass::LeaseTable
        )
    }

    #[cfg(feature = "lockcheck")]
    fn index(self) -> usize {
        LockClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("ALL is exhaustive")
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The longest a hot-path class ([`LockClass::hot_path`]) may be held
/// before the witness flags `NRMI-L004`. Generous against scheduler
/// noise on loaded CI machines; the real hot-path holds are
/// microseconds.
pub const HOT_HOLD_WATERMARK: Duration = Duration::from_millis(250);

// ---------------------------------------------------------------------------
// Snapshot data model (always compiled, so the analyzer in nrmi-check
// builds and unit-tests without the feature).
// ---------------------------------------------------------------------------

/// One observed acquisition-order edge: some thread acquired `to` while
/// holding `from`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// The class already held.
    pub from: LockClass,
    /// The class acquired under it.
    pub to: LockClass,
    /// How many acquisitions witnessed this edge.
    pub count: u64,
    /// First witness: thread plus the full held stack at the time.
    pub witness: String,
}

/// One observed entry into a blocking transport operation with tracked
/// locks held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockingRecord {
    /// The transport marker's region name (e.g. `"tcp.recv"`).
    pub region: &'static str,
    /// The classes held at entry, innermost last.
    pub held: Vec<LockClass>,
    /// `Some(reason)` when an [`allow_blocking`] scope covered the
    /// entry — an *accepted* hold, reported at info severity with the
    /// reason; `None` is a violation.
    pub allowed: Option<&'static str>,
    /// How many entries matched this record.
    pub count: u64,
    /// First witness: the entering thread.
    pub witness: String,
}

/// One observed same-class re-entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReentrantRecord {
    /// The class acquired while already held by the same thread.
    pub class: LockClass,
    /// How many acquisitions re-entered.
    pub count: u64,
    /// First witness: thread plus held stack.
    pub witness: String,
}

/// Aggregate hold statistics for one class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HoldRecord {
    /// The class.
    pub class: LockClass,
    /// Total completed acquisitions.
    pub acquisitions: u64,
    /// The longest single hold observed.
    pub max_held: Duration,
}

/// Everything the witness recorded, copied out for analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WitnessSnapshot {
    /// The acquisition-order graph, as observed edges between classes.
    pub edges: Vec<EdgeRecord>,
    /// Blocking-region entries with locks held (allowed and not).
    pub blocking: Vec<BlockingRecord>,
    /// Same-class re-entries.
    pub reentrant: Vec<ReentrantRecord>,
    /// Per-class hold statistics (classes with zero acquisitions are
    /// omitted).
    pub holds: Vec<HoldRecord>,
}

impl WitnessSnapshot {
    /// True when nothing at all was recorded (feature off, or no
    /// tracked lock was ever touched).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
            && self.blocking.is_empty()
            && self.reentrant.is_empty()
            && self.holds.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The recording runtime (feature = "lockcheck").
// ---------------------------------------------------------------------------

#[cfg(feature = "lockcheck")]
mod witness {
    use super::*;

    /// Whether an acquisition takes the lock exclusively (mutex lock,
    /// rwlock write) or shared (rwlock read). Shared-after-shared
    /// same-class nesting is not re-entry; anything involving an
    /// exclusive side is.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(super) enum Kind {
        Shared,
        Exclusive,
    }

    struct HeldEntry {
        class: LockClass,
        kind: Kind,
        id: u64,
        acquired_at: Instant,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
        static ALLOW: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);

    #[derive(Default)]
    struct HoldAgg {
        acquisitions: u64,
        max_held: Duration,
    }

    #[derive(Default)]
    struct State {
        edges: HashMap<(usize, usize), (u64, String)>,
        blocking: Vec<BlockingRecord>,
        reentrant: Vec<ReentrantRecord>,
        holds: [HoldAgg; LockClass::ALL.len()],
    }

    /// Bounds the deduplicated blocking-record list; a runaway producer
    /// of distinct (region, held-set) pairs stops being recorded rather
    /// than growing without limit.
    const MAX_BLOCKING_RECORDS: usize = 1024;

    fn state() -> &'static std::sync::Mutex<State> {
        static STATE: std::sync::OnceLock<std::sync::Mutex<State>> = std::sync::OnceLock::new();
        STATE.get_or_init(|| std::sync::Mutex::new(State::default()))
    }

    fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
        let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    fn thread_label() -> String {
        let current = std::thread::current();
        match current.name() {
            Some(name) => format!("{name} ({:?})", current.id()),
            None => format!("{:?}", current.id()),
        }
    }

    fn stack_label(held: &[HeldEntry]) -> String {
        let classes: Vec<&str> = held.iter().map(|e| e.class.name()).collect();
        classes.join(" -> ")
    }

    /// Installs the transport blocking hook, once per process. Called
    /// from every tracked-lock constructor, so by the time a tracked
    /// lock can be held the hook is live.
    pub(super) fn ensure_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| nrmi_transport::set_blocking_hook(blocking_hook));
    }

    fn blocking_hook(region: &'static str) {
        let held: Vec<LockClass> = HELD.with(|h| h.borrow().iter().map(|e| e.class).collect());
        if held.is_empty() {
            return;
        }
        let allowed = ALLOW.with(|a| a.borrow().last().copied());
        with_state(|s| {
            if let Some(record) = s
                .blocking
                .iter_mut()
                .find(|r| r.region == region && r.held == held && r.allowed == allowed)
            {
                record.count += 1;
            } else if s.blocking.len() < MAX_BLOCKING_RECORDS {
                s.blocking.push(BlockingRecord {
                    region,
                    held,
                    allowed,
                    count: 1,
                    witness: thread_label(),
                });
            }
        });
    }

    /// Pre-acquisition step: records order edges from every held class
    /// and same-class re-entry, *before* blocking on the lock, so a
    /// real deadlock still leaves its evidence in the witness.
    pub(super) fn on_acquire(class: LockClass, kind: Kind) -> u64 {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        HELD.with(|h| {
            let held = h.borrow();
            if held.is_empty() {
                return;
            }
            let reentered = held.iter().any(|e| {
                e.class == class && (kind == Kind::Exclusive || e.kind == Kind::Exclusive)
            });
            let edges: Vec<(usize, usize)> = held
                .iter()
                .filter(|e| e.class != class)
                .map(|e| (e.class.index(), class.index()))
                .collect();
            if !reentered && edges.is_empty() {
                return;
            }
            let witness = format!("{} holding [{}]", thread_label(), stack_label(&held));
            with_state(|s| {
                for key in edges {
                    let entry = s.edges.entry(key).or_insert_with(|| (0, witness.clone()));
                    entry.0 += 1;
                }
                if reentered {
                    if let Some(r) = s.reentrant.iter_mut().find(|r| r.class == class) {
                        r.count += 1;
                    } else {
                        s.reentrant.push(ReentrantRecord {
                            class,
                            count: 1,
                            witness: witness.clone(),
                        });
                    }
                }
            });
        });
        id
    }

    /// Post-acquisition step: the lock is now held; start its clock.
    pub(super) fn on_acquired(class: LockClass, kind: Kind, id: u64) {
        HELD.with(|h| {
            h.borrow_mut().push(HeldEntry {
                class,
                kind,
                id,
                acquired_at: Instant::now(),
            })
        });
    }

    /// Release step (guard drop): pop the entry by id — guards may be
    /// dropped in any order, so this is a search, not a stack pop — and
    /// fold the hold time into the class aggregate.
    pub(super) fn on_release(id: u64) {
        let entry = HELD.with(|h| {
            let mut held = h.borrow_mut();
            held.iter()
                .rposition(|e| e.id == id)
                .map(|ix| held.remove(ix))
        });
        if let Some(entry) = entry {
            let dur = entry.acquired_at.elapsed();
            with_state(|s| {
                let agg = &mut s.holds[entry.class.index()];
                agg.acquisitions += 1;
                if dur > agg.max_held {
                    agg.max_held = dur;
                }
            });
        }
    }

    pub(super) fn push_allowance(reason: &'static str) {
        ALLOW.with(|a| a.borrow_mut().push(reason));
    }

    pub(super) fn pop_allowance() {
        ALLOW.with(|a| {
            a.borrow_mut().pop();
        });
    }

    pub(super) fn snapshot() -> WitnessSnapshot {
        with_state(|s| WitnessSnapshot {
            edges: {
                let mut edges: Vec<EdgeRecord> = s
                    .edges
                    .iter()
                    .map(|(&(from, to), &(count, ref witness))| EdgeRecord {
                        from: LockClass::ALL[from],
                        to: LockClass::ALL[to],
                        count,
                        witness: witness.clone(),
                    })
                    .collect();
                edges.sort_by_key(|e| (e.from, e.to));
                edges
            },
            blocking: s.blocking.clone(),
            reentrant: s.reentrant.clone(),
            holds: LockClass::ALL
                .iter()
                .filter(|c| s.holds[c.index()].acquisitions > 0)
                .map(|&class| HoldRecord {
                    class,
                    acquisitions: s.holds[class.index()].acquisitions,
                    max_held: s.holds[class.index()].max_held,
                })
                .collect(),
        })
    }

    pub(super) fn reset() {
        with_state(|s| *s = State::default());
    }
}

/// Copies out everything the witness has recorded so far in this
/// process. Always callable; without the `lockcheck` feature the
/// snapshot is empty.
pub fn snapshot() -> WitnessSnapshot {
    #[cfg(feature = "lockcheck")]
    {
        witness::ensure_hook();
        witness::snapshot()
    }
    #[cfg(not(feature = "lockcheck"))]
    WitnessSnapshot::default()
}

/// Clears the global witness (edges, events, hold statistics). Held
/// per-thread stacks are untouched — locks currently held keep
/// recording on release. Intended for self-tests that seed faults and
/// must start from a clean slate.
pub fn reset() {
    #[cfg(feature = "lockcheck")]
    witness::reset();
}

/// Scope guard marking the current thread as *intentionally* allowed to
/// enter blocking transport operations while holding tracked locks.
/// The reason string travels into the witness and surfaces as an
/// info-severity `NRMI-L002` note instead of an error — the suppression
/// mechanism for the two documented designed-in holds (the service
/// mutex across mid-call callbacks, the big-lock baseline).
#[must_use = "the allowance ends when this guard drops"]
pub struct BlockingAllowance {
    _priv: (),
}

/// Opens an [`allow_blocking`] scope on the current thread with a
/// human-auditable reason. Nested scopes stack; the innermost reason
/// wins.
pub fn allow_blocking(reason: &'static str) -> BlockingAllowance {
    #[cfg(feature = "lockcheck")]
    witness::push_allowance(reason);
    #[cfg(not(feature = "lockcheck"))]
    let _ = reason;
    BlockingAllowance { _priv: () }
}

impl Drop for BlockingAllowance {
    fn drop(&mut self) {
        #[cfg(feature = "lockcheck")]
        witness::pop_allowance();
    }
}

// ---------------------------------------------------------------------------
// Tracked lock wrappers.
// ---------------------------------------------------------------------------

/// A [`parking_lot::Mutex`] carrying a [`LockClass`]. Default builds:
/// an inlined passthrough (the class is one byte of storage and zero
/// instructions on lock/unlock). Under `lockcheck`, every acquisition
/// and release reports to the witness.
pub struct TrackedMutex<T: ?Sized> {
    #[cfg_attr(not(feature = "lockcheck"), allow(dead_code))]
    class: LockClass,
    inner: parking_lot::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex of the given class.
    pub fn new(class: LockClass, value: T) -> Self {
        #[cfg(feature = "lockcheck")]
        witness::ensure_hook();
        TrackedMutex {
            class,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the lock. See [`parking_lot::Mutex::lock`].
    #[cfg(not(feature = "lockcheck"))]
    #[inline]
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.inner.lock()
    }

    /// Acquires the lock, reporting the acquisition to the witness.
    #[cfg(feature = "lockcheck")]
    pub fn lock(&self) -> TrackedGuard<parking_lot::MutexGuard<'_, T>> {
        let id = witness::on_acquire(self.class, witness::Kind::Exclusive);
        let inner = self.inner.lock();
        witness::on_acquired(self.class, witness::Kind::Exclusive, id);
        TrackedGuard { inner, id }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

/// A [`parking_lot::RwLock`] carrying a [`LockClass`]; see
/// [`TrackedMutex`].
pub struct TrackedRwLock<T: ?Sized> {
    #[cfg_attr(not(feature = "lockcheck"), allow(dead_code))]
    class: LockClass,
    inner: parking_lot::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked reader-writer lock of the given class.
    pub fn new(class: LockClass, value: T) -> Self {
        #[cfg(feature = "lockcheck")]
        witness::ensure_hook();
        TrackedRwLock {
            class,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(not(feature = "lockcheck"))]
impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires a shared read guard.
    #[inline]
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read()
    }

    /// Acquires an exclusive write guard.
    #[inline]
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write()
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires a shared read guard, reporting to the witness.
    pub fn read(&self) -> TrackedGuard<std::sync::RwLockReadGuard<'_, T>> {
        let id = witness::on_acquire(self.class, witness::Kind::Shared);
        let inner = self.inner.read();
        witness::on_acquired(self.class, witness::Kind::Shared, id);
        TrackedGuard { inner, id }
    }

    /// Acquires an exclusive write guard, reporting to the witness.
    pub fn write(&self) -> TrackedGuard<std::sync::RwLockWriteGuard<'_, T>> {
        let id = witness::on_acquire(self.class, witness::Kind::Exclusive);
        let inner = self.inner.write();
        witness::on_acquired(self.class, witness::Kind::Exclusive, id);
        TrackedGuard { inner, id }
    }
}

impl<T: ?Sized> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("class", &self.class.name())
            .finish_non_exhaustive()
    }
}

/// RAII wrapper around any lock guard: releases the witness entry when
/// dropped. Guards may be dropped in any order; release is by
/// acquisition id, not stack position.
#[cfg(feature = "lockcheck")]
pub struct TrackedGuard<G> {
    inner: G,
    id: u64,
}

#[cfg(feature = "lockcheck")]
impl<G: Deref> Deref for TrackedGuard<G> {
    type Target = G::Target;
    fn deref(&self) -> &G::Target {
        &self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<G: DerefMut> DerefMut for TrackedGuard<G> {
    fn deref_mut(&mut self) -> &mut G::Target {
        &mut self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<G> Drop for TrackedGuard<G> {
    fn drop(&mut self) {
        witness::on_release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_mutex_roundtrip() {
        let m = TrackedMutex::new(LockClass::Control, 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn passthrough_rwlock_roundtrip() {
        let l = TrackedRwLock::new(LockClass::Bindings, 5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn class_names_are_stable() {
        for class in LockClass::ALL {
            assert!(!class.name().is_empty());
        }
        assert!(LockClass::ReplyCacheShard.hot_path());
        assert!(LockClass::LeaseTable.hot_path());
        assert!(!LockClass::Service.hot_path());
        assert!(!LockClass::ReactorQueue.hot_path());
    }

    // Witness mechanics are only observable under the feature. These
    // assert *presence* of records, never absence: other tests in this
    // binary run concurrently against the same global witness.
    #[cfg(feature = "lockcheck")]
    mod instrumented {
        use super::*;

        #[test]
        fn nesting_records_an_order_edge() {
            let a = TrackedMutex::new(LockClass::Bindings, ());
            let b = TrackedMutex::new(LockClass::Control, ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let snap = snapshot();
            assert!(
                snap.edges
                    .iter()
                    .any(|e| e.from == LockClass::Bindings && e.to == LockClass::Control),
                "edge bindings->control missing: {:?}",
                snap.edges
            );
        }

        #[test]
        fn same_class_reentry_is_recorded() {
            let a = TrackedMutex::new(LockClass::SendQueue, ());
            let b = TrackedMutex::new(LockClass::SendQueue, ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let snap = snapshot();
            assert!(
                snap.reentrant
                    .iter()
                    .any(|r| r.class == LockClass::SendQueue),
                "re-entry on send-queue missing: {:?}",
                snap.reentrant
            );
        }

        #[test]
        fn read_read_nesting_is_not_reentry() {
            let a = TrackedRwLock::new(LockClass::NodeHeap, ());
            let b = TrackedRwLock::new(LockClass::NodeHeap, ());
            let before: u64 = snapshot()
                .reentrant
                .iter()
                .filter(|r| r.class == LockClass::NodeHeap)
                .map(|r| r.count)
                .sum();
            {
                let _ga = a.read();
                let _gb = b.read();
            }
            let after: u64 = snapshot()
                .reentrant
                .iter()
                .filter(|r| r.class == LockClass::NodeHeap)
                .map(|r| r.count)
                .sum();
            assert_eq!(
                before, after,
                "shared-after-shared must not count as re-entry"
            );
        }

        #[test]
        fn out_of_order_guard_drops_release_cleanly() {
            let a = TrackedMutex::new(LockClass::Control, 1);
            let b = TrackedMutex::new(LockClass::ReactorQueue, 2);
            let ga = a.lock();
            let gb = b.lock();
            drop(ga); // non-LIFO
            drop(gb);
            // Both released: a fresh single acquisition records no edge
            // from either (the held stack is empty again).
            let before = snapshot().edges.len();
            let c = TrackedMutex::new(LockClass::SendQueue, 3);
            let _gc = c.lock();
            drop(_gc);
            assert_eq!(snapshot().edges.len(), before);
        }

        #[test]
        fn holds_are_aggregated_per_class() {
            let m = TrackedMutex::new(LockClass::Control, ());
            drop(m.lock());
            let snap = snapshot();
            let rec = snap
                .holds
                .iter()
                .find(|h| h.class == LockClass::Control)
                .expect("control class acquired at least once");
            assert!(rec.acquisitions >= 1);
        }
    }
}
