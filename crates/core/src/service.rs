//! The remote-service abstraction (the paper's "remote routine").

use nrmi_heap::{HeapAccess, Value};

use crate::error::NrmiError;

/// A server-side object exposing remotely callable methods.
///
/// The `heap` parameter is the service's view of object memory. Under
/// call-by-copy and call-by-copy-restore it is the server's local heap —
/// the routine runs "at full speed", with no read or write barriers, as
/// the paper emphasizes (Section 3). Under call-by-reference it is a
/// remote-heap proxy whose every access crosses the network. The service
/// body is identical in both cases; only the middleware differs.
///
/// `&mut self` permits stateful services, which exist precisely so tests
/// can demonstrate the paper's §4.1 caveat: copy-restore equals
/// call-by-reference *only* for stateless routines.
pub trait RemoteService: Send {
    /// Invokes `method` with `args` (primitives, strings, or references
    /// into `heap`). Returns the method's result value.
    ///
    /// # Errors
    /// Implementations raise [`NrmiError::Remote`] (via
    /// [`NrmiError::app`]) for application failures, or propagate heap
    /// errors; either travels back to the caller as a remote exception.
    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        heap: &mut dyn HeapAccess,
    ) -> Result<Value, NrmiError>;
}

/// Adapts a closure into a [`RemoteService`].
///
/// ```
/// use nrmi_core::{FnService, NrmiError, RemoteService};
/// use nrmi_heap::{ClassRegistry, Heap, Value};
///
/// let mut svc = FnService::new(|method, args, _heap| match method {
///     "add" => {
///         let a = args[0].as_int().ok_or_else(|| NrmiError::app("bad arg"))?;
///         let b = args[1].as_int().ok_or_else(|| NrmiError::app("bad arg"))?;
///         Ok(Value::Int(a + b))
///     }
///     other => Err(NrmiError::app(format!("no method {other}"))),
/// });
/// let mut reg = ClassRegistry::new();
/// let mut heap = Heap::new(reg.snapshot());
/// let r = svc.invoke("add", &[Value::Int(2), Value::Int(3)], &mut heap).unwrap();
/// assert_eq!(r, Value::Int(5));
/// ```
pub struct FnService<F>(F);

impl<F> FnService<F>
where
    F: FnMut(&str, &[Value], &mut dyn HeapAccess) -> Result<Value, NrmiError> + Send,
{
    /// Wraps `f` as a service.
    pub fn new(f: F) -> Self {
        FnService(f)
    }
}

impl<F> std::fmt::Debug for FnService<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnService(..)")
    }
}

impl<F> RemoteService for FnService<F>
where
    F: FnMut(&str, &[Value], &mut dyn HeapAccess) -> Result<Value, NrmiError> + Send,
{
    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        heap: &mut dyn HeapAccess,
    ) -> Result<Value, NrmiError> {
        (self.0)(method, args, heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::ClassRegistry;

    #[test]
    fn fn_service_dispatches_and_errors() {
        let mut svc = FnService::new(|method, _args, _heap| match method {
            "ok" => Ok(Value::Int(1)),
            other => Err(NrmiError::NoSuchMethod {
                service: "t".into(),
                method: other.into(),
            }),
        });
        let reg = ClassRegistry::new();
        let mut heap = nrmi_heap::Heap::new(reg.snapshot());
        assert_eq!(svc.invoke("ok", &[], &mut heap).unwrap(), Value::Int(1));
        assert!(matches!(
            svc.invoke("nope", &[], &mut heap),
            Err(NrmiError::NoSuchMethod { .. })
        ));
    }

    #[test]
    fn stateful_services_are_possible() {
        // §4.1: statefulness is what breaks copy-restore/by-reference
        // equivalence; the trait must allow modelling it.
        let mut counter = 0;
        let mut svc = FnService::new(move |_m, _a, _h| {
            counter += 1;
            Ok(Value::Int(counter))
        });
        let reg = ClassRegistry::new();
        let mut heap = nrmi_heap::Heap::new(reg.snapshot());
        assert_eq!(svc.invoke("tick", &[], &mut heap).unwrap(), Value::Int(1));
        assert_eq!(svc.invoke("tick", &[], &mut heap).unwrap(), Value::Int(2));
    }
}
