//! Client and server node state, and their marshalling hooks.

use std::collections::HashMap;

use nrmi_heap::{Heap, ObjId, SharedRegistry, Value};
use nrmi_transport::{MachineSpec, RVal, SimEnv};
use nrmi_wire::{Codec, GraphSnapshot, RemoteHooks, WireError};

use crate::export::ExportTable;
use crate::profile::RuntimeProfile;
use crate::service::RemoteService;

/// State common to both ends of a connection: a heap, the export table
/// of objects the peer holds references to, and the stub table of peer
/// objects this node holds references to.
#[derive(Debug)]
pub struct NodeState {
    /// The node's object heap.
    pub heap: Heap,
    /// Objects this node has exported to its peer.
    pub exports: ExportTable,
    /// Peer key → local stub object.
    pub stubs: HashMap<u64, ObjId>,
    /// The machine this node models (for simulated CPU accounting).
    pub machine: MachineSpec,
    /// The middleware stack being modelled.
    pub profile: RuntimeProfile,
    /// Simulated-cost accumulator (optional; `None` disables accounting).
    pub env: Option<SimEnv>,
    /// Reusable encoder scratch (position maps + payload-buffer pool);
    /// every encode this node performs runs through it so steady-state
    /// calls stop allocating bookkeeping.
    pub codec: Codec,
    /// Pooled pre-call snapshot for delta replies, recaptured per call so
    /// its per-object slot storage is reused. Taken out with `mem::take`
    /// around the service invocation (which needs the whole node state).
    pub(crate) reply_snapshot: GraphSnapshot,
}

impl NodeState {
    /// Creates a node over a fresh heap bound to `registry`.
    pub fn new(registry: SharedRegistry, machine: MachineSpec) -> Self {
        NodeState {
            heap: Heap::new(registry),
            exports: ExportTable::new(),
            stubs: HashMap::new(),
            machine,
            profile: RuntimeProfile::default(),
            env: None,
            codec: Codec::new(),
            reply_snapshot: GraphSnapshot::default(),
        }
    }

    /// Installs simulated-cost accounting.
    pub fn with_sim(mut self, env: SimEnv, profile: RuntimeProfile) -> Self {
        self.env = Some(env);
        self.profile = profile;
        self
    }

    /// Charges `us` microseconds of CPU on this node's machine, if
    /// accounting is enabled.
    pub fn charge_cpu(&self, us: f64) {
        if let Some(env) = &self.env {
            env.charge_cpu(&self.machine, us);
        }
    }

    /// Resolves or materializes the local stub for a peer-owned object.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn stub_for(&mut self, key: u64) -> Result<ObjId, nrmi_heap::HeapError> {
        if let Some(&stub) = self.stubs.get(&key) {
            return Ok(stub);
        }
        let stub = self.heap.alloc_stub(key)?;
        self.stubs.insert(key, stub);
        Ok(stub)
    }

    /// Converts a local heap value into its remote-callback wire form:
    /// primitives pass through, references become `(owner, key)` pairs —
    /// never object contents. This is the essence of the remote-pointer
    /// world (Figure 3).
    ///
    /// # Errors
    /// Propagates heap errors (dangling handles).
    pub fn value_to_rval(&mut self, value: &Value) -> Result<RVal, nrmi_heap::HeapError> {
        Ok(match value {
            Value::Null => RVal::Null,
            Value::Bool(b) => RVal::Bool(*b),
            Value::Int(i) => RVal::Int(*i),
            Value::Long(i) => RVal::Long(*i),
            Value::Double(d) => RVal::Double(*d),
            Value::Str(s) => RVal::Str(s.clone()),
            Value::Ref(id) => match self.heap.stub_key(*id)? {
                // A stub: the peer owns it; send their key back.
                Some(key) => RVal::Remote {
                    owned_by_sender: false,
                    key,
                },
                // A local object: export it; the peer gets a stub.
                None => RVal::Remote {
                    owned_by_sender: true,
                    key: self.exports.export(*id),
                },
            },
        })
    }

    /// Converts a received remote-callback value into a local heap value:
    /// peer-owned references become (possibly fresh) local stubs; own
    /// references resolve through the export table.
    ///
    /// # Errors
    /// [`WireError::UnknownExport`] for unresolvable own keys; allocation
    /// failures for stubs.
    pub fn rval_to_value(&mut self, rval: &RVal) -> Result<Value, WireError> {
        Ok(match rval {
            RVal::Null => Value::Null,
            RVal::Bool(b) => Value::Bool(*b),
            RVal::Int(i) => Value::Int(*i),
            RVal::Long(i) => Value::Long(*i),
            RVal::Double(d) => Value::Double(*d),
            RVal::Str(s) => Value::Str(s.clone()),
            RVal::Remote {
                owned_by_sender: true,
                key,
            } => {
                // The sender owns it: we hold a stub.
                Value::Ref(self.stub_for(*key)?)
            }
            RVal::Remote {
                owned_by_sender: false,
                key,
            } => {
                // It is ours: resolve to the original object.
                Value::Ref(
                    self.exports
                        .lookup(*key)
                        .ok_or(WireError::UnknownExport { key: *key })?,
                )
            }
        })
    }
}

/// [`RemoteHooks`] implementation over a node's export and stub tables,
/// used when graphs containing remote-marked objects (or stubs) are
/// marshalled by value.
#[derive(Debug)]
pub struct NodeHooks<'a> {
    exports: &'a mut ExportTable,
    stubs: &'a mut HashMap<u64, ObjId>,
}

impl<'a> NodeHooks<'a> {
    /// Borrows the tables out of split node state.
    pub fn new(exports: &'a mut ExportTable, stubs: &'a mut HashMap<u64, ObjId>) -> Self {
        NodeHooks { exports, stubs }
    }
}

impl RemoteHooks for NodeHooks<'_> {
    fn export(&mut self, _heap: &Heap, obj: ObjId) -> Result<u64, WireError> {
        Ok(self.exports.export(obj))
    }

    fn import(
        &mut self,
        heap: &mut Heap,
        owned_by_sender: bool,
        key: u64,
    ) -> Result<Value, WireError> {
        if owned_by_sender {
            if let Some(&stub) = self.stubs.get(&key) {
                return Ok(Value::Ref(stub));
            }
            let stub = heap.alloc_stub(key)?;
            self.stubs.insert(key, stub);
            Ok(Value::Ref(stub))
        } else {
            self.exports
                .lookup(key)
                .map(Value::Ref)
                .ok_or(WireError::UnknownExport { key })
        }
    }
}

/// Server-side state: node state plus the bound services.
pub struct ServerNode {
    /// Shared node state (heap, tables, accounting).
    pub state: NodeState,
    /// Services by registry name.
    pub services: HashMap<String, Box<dyn RemoteService>>,
    /// Behavior bound per CLASS: invoking a method on an exported object
    /// of that class dispatches here, with the receiver prepended to the
    /// arguments — the `UnicastRemoteObject` dispatch model.
    pub class_services: HashMap<nrmi_heap::ClassId, Box<dyn RemoteService>>,
    /// Duplicate-suppression reply cache: replies to tagged calls are
    /// recorded here so a retransmitted call id replays its reply
    /// instead of re-executing (at-most-once delivery).
    pub replies: crate::reliable::ReplyCache,
    /// Which warm sessions currently cover which heap objects (see
    /// [`crate::warm::LeaseTable`]). Connections serving this node build
    /// their [`WarmCaches`](crate::warm::WarmCaches) with
    /// [`with_leases`](crate::warm::WarmCaches::with_leases) on a clone
    /// of this handle, so an eviction by one connection never frees an
    /// object another connection's warm session still reads.
    pub leases: std::sync::Arc<crate::lockcheck::TrackedMutex<crate::warm::LeaseTable>>,
}

impl std::fmt::Debug for ServerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerNode")
            .field("state", &self.state)
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ServerNode {
    /// Creates a server node over `registry`.
    pub fn new(registry: SharedRegistry, machine: MachineSpec) -> Self {
        ServerNode {
            state: NodeState::new(registry, machine),
            services: HashMap::new(),
            class_services: HashMap::new(),
            replies: crate::reliable::ReplyCache::default(),
            leases: crate::warm::new_lease_table(),
        }
    }

    /// Binds `service` under `name` (the `Naming.rebind` analogue).
    pub fn bind(&mut self, name: impl Into<String>, service: Box<dyn RemoteService>) {
        self.services.insert(name.into(), service);
    }

    /// True if `name` is bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// Binds `service` as the behavior of a remote-marked CLASS: method
    /// calls on exported instances dispatch to it, with the receiver
    /// object prepended as `args[0]`.
    pub fn bind_class(&mut self, class: nrmi_heap::ClassId, service: Box<dyn RemoteService>) {
        self.class_services.insert(class, service);
    }

    /// Runs a server-side garbage collection over the node's heap.
    /// Objects exported to clients are GC roots (their stubs pin them —
    /// RMI DGC semantics); pass any additional server-held roots in
    /// `roots`. Returns the number of objects freed.
    ///
    /// # Errors
    /// Propagates heap errors.
    pub fn collect_local(
        &mut self,
        roots: &[nrmi_heap::ObjId],
    ) -> Result<usize, nrmi_heap::HeapError> {
        let mut gc_roots = roots.to_vec();
        gc_roots.extend(self.state.exports.roots());
        nrmi_heap::gc::mark_sweep(&mut self.state.heap, &gc_roots)
    }
}

/// Client-side state: node state plus the warm-call session caches.
#[derive(Debug)]
pub struct ClientNode {
    /// Shared node state (heap, tables, accounting).
    pub state: NodeState,
    /// Warm-call session caches, one per service
    /// (see [`crate::warm`]).
    pub warm: crate::warm::WarmSessions,
}

impl ClientNode {
    /// Creates a client node over `registry`.
    pub fn new(registry: SharedRegistry, machine: MachineSpec) -> Self {
        ClientNode {
            state: NodeState::new(registry, machine),
            warm: crate::warm::WarmSessions::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrmi_heap::{ClassRegistry, HeapAccess};

    fn node() -> (NodeState, nrmi_heap::ClassId) {
        let mut reg = ClassRegistry::new();
        let tree = nrmi_heap::tree::register_tree_classes(&mut reg).tree;
        (NodeState::new(reg.snapshot(), MachineSpec::fast()), tree)
    }

    #[test]
    fn stub_for_is_idempotent() {
        let (mut n, _) = node();
        let s1 = n.stub_for(7).unwrap();
        let s2 = n.stub_for(7).unwrap();
        assert_eq!(s1, s2, "one stub per peer key (identity preservation)");
        assert_eq!(n.heap.stub_key(s1).unwrap(), Some(7));
    }

    #[test]
    fn value_rval_roundtrip_for_local_object() {
        let (mut n, tree) = node();
        let obj = n.heap.alloc_default(tree).unwrap();
        let rv = n.value_to_rval(&Value::Ref(obj)).unwrap();
        let RVal::Remote {
            owned_by_sender: true,
            key,
        } = rv
        else {
            panic!("local object must export as sender-owned, got {rv:?}");
        };
        // Resolving our own key (as if echoed back by the peer) returns
        // the original object.
        let back = n
            .rval_to_value(&RVal::Remote {
                owned_by_sender: false,
                key,
            })
            .unwrap();
        assert_eq!(back, Value::Ref(obj));
    }

    #[test]
    fn value_rval_roundtrip_for_stub() {
        let (mut n, _) = node();
        let stub = n.stub_for(42).unwrap();
        let rv = n.value_to_rval(&Value::Ref(stub)).unwrap();
        assert_eq!(
            rv,
            RVal::Remote {
                owned_by_sender: false,
                key: 42
            }
        );
    }

    #[test]
    fn primitives_pass_through() {
        let (mut n, _) = node();
        for v in [
            Value::Null,
            Value::Int(1),
            Value::Str("x".into()),
            Value::Bool(true),
        ] {
            let rv = n.value_to_rval(&v).unwrap();
            assert_eq!(n.rval_to_value(&rv).unwrap(), v);
        }
    }

    #[test]
    fn unknown_export_key_rejected() {
        let (mut n, _) = node();
        let err = n
            .rval_to_value(&RVal::Remote {
                owned_by_sender: false,
                key: 99,
            })
            .unwrap_err();
        assert!(matches!(err, WireError::UnknownExport { key: 99 }));
    }

    #[test]
    fn hooks_roundtrip_remote_marked_object_through_graph() {
        // A remote-marked object inside a serializable graph travels as
        // a stub and resolves back to the ORIGINAL when the graph
        // returns — RMI's remote-parameter semantics.
        let mut reg = ClassRegistry::new();
        let svc_class = reg.define("Printer").remote().register();
        let holder = reg
            .define("Holder")
            .field_ref("svc")
            .serializable()
            .register();
        let registry = reg.snapshot();
        let mut a = NodeState::new(registry.clone(), MachineSpec::fast());
        let mut b = NodeState::new(registry, MachineSpec::fast());

        let printer = a.heap.alloc_default(svc_class).unwrap();
        let h = a.heap.alloc(holder, vec![Value::Ref(printer)]).unwrap();

        // a → b
        let mut hooks_a = NodeHooks::new(&mut a.exports, &mut a.stubs);
        let enc =
            nrmi_wire::serialize_graph_with(&a.heap, &[Value::Ref(h)], None, Some(&mut hooks_a))
                .unwrap();
        let mut hooks_b = NodeHooks::new(&mut b.exports, &mut b.stubs);
        let dec = nrmi_wire::deserialize_graph_with(&enc.bytes, &mut b.heap, &mut hooks_b).unwrap();
        let h_b = dec.roots[0].as_ref_id().unwrap();
        let svc_b = b.heap.get_ref(h_b, "svc").unwrap().unwrap();
        assert_eq!(b.heap.stub_key(svc_b).unwrap(), Some(0), "b holds a stub");

        // b → a (echo back)
        let mut hooks_b = NodeHooks::new(&mut b.exports, &mut b.stubs);
        let enc2 =
            nrmi_wire::serialize_graph_with(&b.heap, &[Value::Ref(h_b)], None, Some(&mut hooks_b))
                .unwrap();
        let mut hooks_a = NodeHooks::new(&mut a.exports, &mut a.stubs);
        let dec2 =
            nrmi_wire::deserialize_graph_with(&enc2.bytes, &mut a.heap, &mut hooks_a).unwrap();
        let h_a2 = dec2.roots[0].as_ref_id().unwrap();
        let svc_back = a.heap.get_ref(h_a2, "svc").unwrap().unwrap();
        assert_eq!(
            svc_back, printer,
            "stub resolves back to the original remote object"
        );
    }

    #[test]
    fn server_binding() {
        let mut reg = ClassRegistry::new();
        let _ = nrmi_heap::tree::register_tree_classes(&mut reg);
        let mut server = ServerNode::new(reg.snapshot(), MachineSpec::slow());
        assert!(!server.is_bound("echo"));
        server.bind(
            "echo",
            Box::new(crate::service::FnService::new(|_m, args, _h| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })),
        );
        assert!(server.is_bound("echo"));
    }
}
