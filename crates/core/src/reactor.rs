//! The event-driven server core: one reactor thread owns every
//! connection socket in non-blocking mode and drives framed reads and
//! writes off `poll(2)` readiness events, so mostly-idle fleets cost
//! one thread plus per-connection buffers instead of a worker thread
//! (or six, pipelined) per connection.
//!
//! ## Division of labor
//!
//! * **The reactor thread** accepts, reads frames as they become
//!   complete, classifies each one ([`reactor_classify`]), answers
//!   cache hits and lookups inline, and queues fresh pipelineable cold
//!   calls to a small **fixed worker pool** shared by *all* connections
//!   (contrast the pipelined pooled loop, which spawns a writer plus
//!   [`PIPELINE_WORKERS`](super::server) per connection).
//! * **Workers** execute against per-worker private node state (the
//!   same isolation a pooled connection gets), record replies in the
//!   shared at-most-once cache, and hand the reply frame back to the
//!   reactor through a completion channel, waking the poller.
//! * **Exclusive traffic** — warm calls, object calls, remote-ref
//!   calls, cache evictions, DGC cleans — *escalates* the connection to
//!   a dedicated thread running the PR 5/6 blocking loop
//!   ([`serve_connection_escalated`](super::server)): the reactor stops
//!   reading, waits for the connection's in-flight worker jobs to
//!   complete and its output queue to drain (so no two threads ever
//!   write one socket), restores blocking mode, and hands over the
//!   socket plus any frames it had read past the trigger. Idle
//!   connections therefore hold **no** node state: a connection node is
//!   created lazily, only on escalation or in a worker.
//!
//! ## Protocol invariants
//!
//! The reactor changes *who blocks*, never the protocol. The
//! begin/execute/store discipline of the sharded reply cache is
//! identical to the pooled loops — [`reactor_classify`] is the single
//! place a reactor consults it, and escalation-triggering frames are
//! handed over *before* any `begin`, so the escalated loop's own
//! classification is the first and only one. Backpressure mirrors the
//! bounded pipelined queues: a connection above its in-flight or
//! queued-output watermark simply stops being read until it drains,
//! leaving the excess in kernel socket buffers where the client's TCP
//! window absorbs it.

// The classification step ([`ReactorStep`], [`reactor_classify`]) is
// pure protocol logic and compiles everywhere — the model checker
// enumerates it on any platform. Only the poll(2) event loop itself is
// unix-only.
#[cfg(unix)]
use std::collections::{HashMap, VecDeque};
#[cfg(unix)]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(unix)]
use std::sync::{mpsc, Arc};
#[cfg(unix)]
use std::thread::JoinHandle;
#[cfg(unix)]
use std::time::{Duration, Instant};

#[cfg(unix)]
use nrmi_transport::poller::{Event, Interest, Poller, Token};
use nrmi_transport::Frame;
#[cfg(unix)]
use nrmi_transport::{PollableListener, ReactorIo, SendQueue};

#[cfg(unix)]
use crate::error::NrmiError;
#[cfg(unix)]
use crate::lockcheck::{LockClass, TrackedMutex};
use crate::reliable::{evicted_reply, ReplyDecision};
use crate::server::{is_pipelineable, SharedServer};
#[cfg(unix)]
use crate::server::{serve_connection_escalated, NoCallbackTransport};
#[cfg(unix)]
use crate::session::LiveGuard;

/// Worker threads executing pipelineable cold calls for the whole
/// reactor — fixed, regardless of connection count.
pub(crate) const REACTOR_WORKERS: usize = 4;

/// Tagged calls a single connection may have queued or executing before
/// the reactor stops reading it.
#[cfg(unix)]
const CONN_MAX_IN_FLIGHT: usize = 32;

/// Queued output bytes above which the reactor stops reading a
/// connection: a client that stops draining replies stalls its own
/// request stream (the rest backs up in kernel socket buffers).
#[cfg(unix)]
const OUT_HIGH_WATER: usize = 1 << 20;

/// Job-queue capacity handed to the worker pool.
#[cfg(unix)]
const JOB_QUEUE: usize = 256;

/// Reactor-side job overflow length above which every connection stops
/// being read until the workers catch up.
#[cfg(unix)]
const JOB_OVERFLOW_PAUSE: usize = 256;

/// How long shutdown drains busy connections before force-closing them.
#[cfg(unix)]
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// What the reactor does with one decoded frame — the reactor's step
/// function, factored out so the model checker can enumerate it
/// directly (P010).
#[derive(Debug)]
pub enum ReactorStep {
    /// Queue this reply on the connection immediately (lookup answers,
    /// reply-cache hits, evicted-reply errors).
    Reply(Frame),
    /// Hand the call to the worker pool; the reply cache has marked
    /// `(nonce, seq)` executing.
    Offload {
        /// Session nonce of the call id.
        nonce: u64,
        /// Sequence number of the call id.
        seq: u64,
        /// The inner (untagged) call frame to execute.
        call: Frame,
    },
    /// Drop the frame unanswered: a duplicate of a call currently
    /// executing (the client's next retransmission replays the stored
    /// reply).
    Ignore,
    /// Exclusive traffic: escalate the connection to a dedicated
    /// blocking thread, handing this frame over unprocessed. The reply
    /// cache has *not* been consulted — the escalated loop performs the
    /// first and only `begin` for it.
    Escalate(Frame),
    /// Orderly end of the connection (`Shutdown`).
    Close,
}

/// Classifies one frame exactly as the reactor serve loop does. Public
/// so the model checker enumerates the real step function rather than a
/// transcription; `offload` is [`SharedServer::offloadable`] snapshotted
/// at accept (false routes every tagged call to escalation, preserving
/// single-thread execution for remote-ref schemas).
pub fn reactor_classify(shared: &SharedServer, offload: bool, frame: Frame) -> ReactorStep {
    match frame {
        Frame::Shutdown => ReactorStep::Close,
        Frame::Lookup { name } => ReactorStep::Reply(Frame::LookupReply {
            found: shared.is_bound(&name),
        }),
        Frame::Tagged { nonce, seq, frame } if offload && is_pipelineable(&frame) => {
            // Decide-mark-executing on the nonce's shard, execute with
            // no shard lock held, store — the PR 4/5/6 discipline. The
            // escalation guard above matters for ordering: only frames
            // the reactor itself will execute are ever begun here.
            match shared.replies.begin(nonce, seq) {
                ReplyDecision::Replay(cached) => ReactorStep::Reply(Frame::ReplyCached {
                    nonce,
                    seq,
                    frame: Box::new(cached),
                }),
                ReplyDecision::Evicted => ReactorStep::Reply(Frame::ReplyCached {
                    nonce,
                    seq,
                    frame: Box::new(evicted_reply()),
                }),
                ReplyDecision::InProgress => ReactorStep::Ignore,
                ReplyDecision::Fresh => ReactorStep::Offload {
                    nonce,
                    seq,
                    call: *frame,
                },
            }
        }
        other => ReactorStep::Escalate(other),
    }
}

/// A call in flight to the worker pool: (connection token, nonce, seq,
/// inner call frame).
#[cfg(unix)]
type ReactorJob = (usize, u64, u64, Frame);

/// Per-connection reactor state. Note what is *absent*: no node, no
/// heap, no warm caches — an idle connection is a socket, a resumable
/// frame parser (inside the transport), and these few words.
#[cfg(unix)]
struct Conn<C> {
    io: C,
    out: SendQueue,
    /// Jobs queued or executing in the worker pool for this connection.
    in_flight: usize,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// `Some` once an exclusive frame arrived: the trigger frame plus
    /// everything read after it, replayed by the escalated thread.
    escalation: Option<Vec<Frame>>,
    /// Flush-then-drop (orderly `Shutdown`, or server-side drain).
    closing: bool,
}

#[cfg(unix)]
impl<C> Conn<C> {
    /// No worker jobs outstanding and nothing left to write — safe to
    /// hand the socket to another thread or drop it.
    fn quiescent(&self) -> bool {
        self.in_flight == 0 && self.out.is_empty()
    }
}

/// Configuration snapshot for [`run_reactor`], carried from
/// [`ServerPool`](crate::session::ServerPool).
#[cfg(unix)]
pub(crate) struct ReactorConfig {
    pub workers: usize,
    pub max_live: usize,
    pub max_total: Option<usize>,
}

/// Shared counters and handles between the reactor thread and its
/// [`ServeHandle`](crate::session::ServeHandle).
#[cfg(unix)]
pub(crate) struct ReactorShared {
    pub stop: Arc<AtomicBool>,
    pub live: Arc<AtomicUsize>,
    pub served: Arc<AtomicUsize>,
    pub escalated: Arc<TrackedMutex<Vec<JoinHandle<()>>>>,
    pub accept_error: Arc<TrackedMutex<Option<String>>>,
}

/// The reactor serve loop. Runs on its own thread until stopped (via
/// the poller's waker) or until `max_total` connections have been
/// served and drained; joins its worker pool before returning.
/// Escalated-connection threads are pushed onto `shared_ctl.escalated`
/// for the serve handle to join.
#[cfg(unix)]
pub(crate) fn run_reactor<L>(
    shared: Arc<SharedServer>,
    listener: L,
    mut poller: Poller,
    config: ReactorConfig,
    ctl: ReactorShared,
) -> Result<(), NrmiError>
where
    L: PollableListener + Send + 'static,
    L::Conn: ReactorIo + Send + 'static,
{
    const LISTENER: Token = Token(0);
    listener.set_nonblocking(true)?;
    poller.register(LISTENER, listener.raw_fd(), Interest::READABLE);

    let offload = shared.offloadable();
    let (job_tx, job_rx) = mpsc::sync_channel::<ReactorJob>(JOB_QUEUE);
    let (done_tx, done_rx) = mpsc::channel::<(usize, Frame)>();
    let job_rx = Arc::new(TrackedMutex::new(LockClass::ReactorQueue, job_rx));
    let waker = poller.waker();
    let mut worker_handles = Vec::new();
    for _ in 0..config.workers {
        let shared = Arc::clone(&shared);
        let job_rx = Arc::clone(&job_rx);
        let done_tx = done_tx.clone();
        let waker = waker.clone();
        worker_handles.push(std::thread::spawn(move || {
            // Per-worker private node state — workers contend only on
            // service mutexes and reply-cache shards, like pooled
            // connections do.
            let mut node = shared.connection_node();
            let mut warm = crate::warm::WarmCaches::new();
            let mut io = NoCallbackTransport;
            loop {
                let job = job_rx.lock().recv();
                let Ok((token, nonce, seq, call)) = job else {
                    break;
                };
                let reply = crate::protocol::dispatch_tagged(&mut node, &mut warm, &mut io, call);
                shared.replies.store(nonce, seq, &reply);
                let done = done_tx.send((
                    token,
                    Frame::Tagged {
                        nonce,
                        seq,
                        frame: Box::new(reply),
                    },
                ));
                if done.is_err() {
                    break;
                }
                waker.wake();
            }
            warm.release_all(&mut node.state.heap);
        }));
    }
    drop(done_tx);

    let mut conns: HashMap<usize, Conn<L::Conn>> = HashMap::new();
    let mut next_token: usize = 1;
    let mut accepted_total: usize = 0;
    // Jobs that didn't fit the bounded worker queue; drained each pass.
    // Reads pause globally while it is long, so it stays O(burst).
    let mut overflow: VecDeque<ReactorJob> = VecDeque::new();
    let mut events: Vec<Event> = Vec::new();
    let mut draining: Option<Instant> = None;
    let mut accept_failure: Option<NrmiError> = None;

    let result = 'outer: loop {
        // --- settle: flush overflow jobs, then per-conn bookkeeping ---
        while let Some(job) = overflow.pop_front() {
            match job_tx.try_send(job) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(job)) => {
                    overflow.push_front(job);
                    break;
                }
                Err(mpsc::TrySendError::Disconnected(_)) => {
                    break 'outer Err(NrmiError::Protocol("reactor worker pool died".into()));
                }
            }
        }

        // Escalations and closes finalize once the connection quiesces.
        let ready: Vec<usize> = conns
            .iter()
            .filter(|(_, c)| (c.escalation.is_some() || c.closing) && c.quiescent())
            .map(|(&t, _)| t)
            .collect();
        for token in ready {
            let mut conn = conns.remove(&token).expect("token collected above");
            poller.deregister(Token(token));
            if let Some(stash) = conn.escalation.take() {
                // Quiescent: no worker owns a job for this socket and
                // the out-queue is empty, so the dedicated thread is
                // the only writer from here on.
                if conn.io.set_nonblocking(false).is_ok() {
                    let shared = Arc::clone(&shared);
                    let live = Arc::clone(&ctl.live);
                    let handle = std::thread::spawn(move || {
                        let _guard = LiveGuard(live);
                        let mut transport = conn.io;
                        let _ = serve_connection_escalated(&shared, &mut transport, stash);
                    });
                    ctl.escalated.lock().push(handle);
                    // The escalated thread's LiveGuard now owns the
                    // live-count decrement; skip the one below.
                    continue;
                }
            }
            ctl.live.fetch_sub(1, Ordering::SeqCst);
        }

        // Exit conditions: a total-connection limit reached and drained,
        // or a stop request once draining finishes (or times out).
        let stopping = ctl.stop.load(Ordering::SeqCst);
        if stopping && draining.is_none() {
            draining = Some(Instant::now());
            for conn in conns.values_mut() {
                conn.closing = true;
            }
            continue;
        }
        let total_done = config.max_total.is_some_and(|n| accepted_total >= n);
        if conns.is_empty() && (stopping || total_done || accept_failure.is_some()) {
            break match accept_failure.take() {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        if let Some(since) = draining {
            if since.elapsed() > DRAIN_DEADLINE {
                // Clients that never drained their replies: cut them.
                for (token, _) in conns.drain() {
                    poller.deregister(Token(token));
                    ctl.live.fetch_sub(1, Ordering::SeqCst);
                }
                continue;
            }
        }

        // --- refresh poller interest for every connection ---
        let reads_paused = overflow.len() >= JOB_OVERFLOW_PAUSE;
        let at_cap = conns.len() >= config.max_live;
        let listener_interest = if at_cap || stopping || total_done || accept_failure.is_some() {
            Interest::NONE
        } else {
            Interest::READABLE
        };
        poller.modify(LISTENER, listener_interest);
        // Connections holding read-ahead bytes in user space: the
        // poller cannot see those (the kernel buffer may be empty), so
        // any unpaused connection with buffered input is ready NOW —
        // poll without blocking and parse it below.
        let mut buffered_ready: Vec<usize> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            let interest = desired_interest(conn, reads_paused);
            if interest != conn.interest {
                conn.interest = interest;
                poller.modify(Token(token), interest);
            }
            if interest.readable && conn.io.has_buffered_input() {
                buffered_ready.push(token);
            }
        }

        // --- block for readiness (bounded while draining) ---
        let timeout = if buffered_ready.is_empty() {
            draining.map(|_| Duration::from_millis(50))
        } else {
            Some(Duration::ZERO)
        };
        if let Err(e) = poller.wait(&mut events, timeout) {
            break Err(e.into());
        }

        // --- collect worker completions ---
        while let Ok((token, reply)) = done_rx.try_recv() {
            // A completion for a connection that died mid-call is
            // dropped; the reply is in the cache for a reconnect.
            if let Some(conn) = conns.get_mut(&token) {
                conn.in_flight -= 1;
                // A reply too large to frame can never be delivered;
                // close the connection (the cached reply is what a
                // reconnect would replay, and it would hit the same
                // wall — the client sees the connection drop instead
                // of a silent hang).
                if conn.out.push(&reply).is_err() {
                    conn.closing = true;
                }
            }
        }

        // --- handle socket events ---
        for event in events.drain(..) {
            if event.token == LISTENER {
                match accept_burst(
                    &listener,
                    &mut poller,
                    &mut conns,
                    &mut next_token,
                    &mut accepted_total,
                    &config,
                    &ctl,
                ) {
                    Ok(()) => {}
                    Err(e) => {
                        // An accept failure stops accepting; live
                        // connections keep running (pooled semantics).
                        *ctl.accept_error.lock() = Some(e.to_string());
                        accept_failure = Some(e);
                    }
                }
                continue;
            }
            let token = event.token.0;
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let mut dead = false;
            if event.writable && !conn.out.is_empty() {
                match conn.io.flush_queue(&mut conn.out) {
                    Ok(_drained) => {}
                    Err(_) => dead = true,
                }
            }
            if !dead && (event.readable || event.hangup) {
                dead = read_burst(&shared, offload, token, conn, &job_tx, &mut overflow);
            }
            if dead {
                poller.deregister(Token(token));
                conns.remove(&token);
                ctl.live.fetch_sub(1, Ordering::SeqCst);
            }
        }

        // --- parse frames already buffered in user space ---
        // (Harmless overlap with the event loop above: read_burst is
        // resumable and stops cleanly at WouldBlock or a pause guard.)
        for token in buffered_ready {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if read_burst(&shared, offload, token, conn, &job_tx, &mut overflow) {
                poller.deregister(Token(token));
                conns.remove(&token);
                ctl.live.fetch_sub(1, Ordering::SeqCst);
            }
        }
    };

    // Close the job queue; workers finish queued calls and exit. Their
    // completions have nowhere to go (the reply cache holds them for
    // retransmissions), which is the at-most-once story for replies
    // outliving their connection.
    drop(job_tx);
    for handle in worker_handles {
        if handle.join().is_err() && result.is_ok() {
            return Err(NrmiError::Protocol("a reactor worker panicked".into()));
        }
    }
    // Any connections still held (error exit) release their live slots.
    for _ in conns.drain() {
        ctl.live.fetch_sub(1, Ordering::SeqCst);
    }
    result
}

/// The poller interest a connection's state calls for: read unless
/// paused (escalating, closing, over its in-flight or output budget, or
/// a global job backlog), write while output is queued.
#[cfg(unix)]
fn desired_interest<C>(conn: &Conn<C>, reads_paused: bool) -> Interest {
    let paused = reads_paused
        || conn.escalation.is_some()
        || conn.closing
        || conn.in_flight >= CONN_MAX_IN_FLIGHT
        || conn.out.pending_bytes() >= OUT_HIGH_WATER;
    Interest {
        readable: !paused,
        writable: !conn.out.is_empty(),
    }
}

/// Accepts until the backlog is empty or the live cap is reached.
#[cfg(unix)]
fn accept_burst<L>(
    listener: &L,
    poller: &mut Poller,
    conns: &mut HashMap<usize, Conn<L::Conn>>,
    next_token: &mut usize,
    accepted_total: &mut usize,
    config: &ReactorConfig,
    ctl: &ReactorShared,
) -> Result<(), NrmiError>
where
    L: PollableListener,
    L::Conn: ReactorIo,
{
    loop {
        if conns.len() >= config.max_live || config.max_total.is_some_and(|n| *accepted_total >= n)
        {
            return Ok(());
        }
        match listener.try_accept() {
            Ok(Some(io)) => {
                io.set_nonblocking(true)?;
                let token = *next_token;
                *next_token += 1;
                *accepted_total += 1;
                ctl.served.fetch_add(1, Ordering::SeqCst);
                ctl.live.fetch_add(1, Ordering::SeqCst);
                poller.register(Token(token), io.raw_fd(), Interest::READABLE);
                conns.insert(
                    token,
                    Conn {
                        io,
                        out: SendQueue::new(),
                        in_flight: 0,
                        interest: Interest::READABLE,
                        escalation: None,
                        closing: false,
                    },
                );
            }
            Ok(None) => return Ok(()),
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reads frames off one ready connection until it would block, its
/// budget pauses it, or it escalates/closes. Returns `true` when the
/// connection is dead and must be dropped immediately.
#[cfg(unix)]
fn read_burst<C: ReactorIo>(
    shared: &SharedServer,
    offload: bool,
    token: usize,
    conn: &mut Conn<C>,
    job_tx: &mpsc::SyncSender<ReactorJob>,
    overflow: &mut VecDeque<ReactorJob>,
) -> bool {
    loop {
        if conn.closing
            || conn.in_flight >= CONN_MAX_IN_FLIGHT
            || conn.out.pending_bytes() >= OUT_HIGH_WATER
        {
            return false;
        }
        // Frames arriving after an escalation trigger go to the stash
        // unclassified — the escalated thread replays them in order.
        if conn.escalation.is_some() {
            return false;
        }
        let frame = match conn.io.try_read_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => return false,
            // Disconnection ends the connection at once: replies for
            // jobs still in flight land in the reply cache (their
            // completions are dropped), ready for a reconnect's
            // retransmission.
            Err(_) => return true,
        };
        match reactor_classify(shared, offload, frame) {
            // An oversized reply cannot be framed: the stream is still
            // in sync (nothing was queued), but the call can never be
            // answered — close the connection rather than hang it.
            ReactorStep::Reply(reply) => {
                if conn.out.push(&reply).is_err() {
                    conn.closing = true;
                    return false;
                }
            }
            ReactorStep::Offload { nonce, seq, call } => {
                conn.in_flight += 1;
                let job = (token, nonce, seq, call);
                // Never block the reactor: spill to the overflow queue
                // when workers are saturated (reads pause globally while
                // it is long).
                if !overflow.is_empty() {
                    overflow.push_back(job);
                } else if let Err(mpsc::TrySendError::Full(job)) = job_tx.try_send(job) {
                    overflow.push_back(job);
                }
            }
            ReactorStep::Ignore => {}
            ReactorStep::Escalate(trigger) => {
                conn.escalation = Some(vec![trigger]);
                // Keep draining frames already decodable so they reach
                // the stash instead of lingering unread; the next
                // readiness events stop at the guard above.
                return drain_to_stash(conn);
            }
            ReactorStep::Close => {
                conn.closing = true;
                return false;
            }
        }
    }
}

/// After an escalation trigger: move every frame already available on
/// the socket into the stash. Returns `true` if the connection died.
#[cfg(unix)]
fn drain_to_stash<C: ReactorIo>(conn: &mut Conn<C>) -> bool {
    loop {
        match conn.io.try_read_frame() {
            Ok(Some(frame)) => conn
                .escalation
                .as_mut()
                .expect("escalation set by caller")
                .push(frame),
            Ok(None) => return false,
            // Disconnected with an escalation pending: the stash may
            // hold calls worth executing, but the client is gone — drop.
            Err(_) => return true,
        }
    }
}
