//! # nrmi-core — Natural Remote Method Invocation
//!
//! The middleware core of this reproduction of *NRMI: Natural and
//! Efficient Middleware* (Tilevich & Smaragdakis, ICDCS 2003): RPC with
//! **call-by-copy-restore for arbitrary linked data structures**,
//! alongside call-by-copy, DCE-RPC-style partial restore, and
//! call-by-reference through remote pointers.
//!
//! The headline algorithm (paper §3) lives across three modules:
//! step 1 is [`nrmi_heap::LinearMap`]; steps 2–3 are the annotated
//! marshalling in [`protocol`]; steps 4–6 are [`restore::apply_restore`].
//! Everything else is the middleware that makes those steps a working
//! RPC system: [`Session`] for connected client/server pairs,
//! [`RemoteService`] for server objects, [`proxy`] for the
//! remote-pointer world, and [`profile`] for the simulated 2003-hardware
//! cost model behind the paper's tables.
//!
//! ## Choosing semantics
//!
//! As in the paper (§5.1), semantics are chosen per *type* via class
//! markers: `restorable()` classes pass by copy-restore, `serializable()`
//! by copy, `remote()` by reference. [`CallOptions`] can force a
//! semantics per call (the benchmarks run one workload under all four).
//!
//! ```
//! use nrmi_core::{FnService, NrmiError, Session};
//! use nrmi_heap::{ClassRegistry, HeapAccess, Value};
//!
//! # fn main() -> Result<(), NrmiError> {
//! let mut reg = ClassRegistry::new();
//! // class Cell implements java.rmi.Restorable { int value; }
//! let cell = reg.define("Cell").field_int("value").restorable().register();
//!
//! let mut session = Session::builder(reg.snapshot())
//!     .serve(
//!         "incrementor",
//!         Box::new(FnService::new(|_m, args, heap| {
//!             let cell = args[0].as_ref_id().ok_or_else(|| NrmiError::app("want ref"))?;
//!             let v = heap.get_field(cell, "value")?.as_int().unwrap_or(0);
//!             heap.set_field(cell, "value", Value::Int(v + 1))?;
//!             Ok(Value::Null)
//!         })),
//!     )
//!     .build();
//!
//! let cell_obj = session.heap().alloc(cell, vec![Value::Int(41)])?;
//! session.call("incrementor", "bump", &[Value::Ref(cell_obj)])?;
//! // The server's mutation was restored onto the caller's object:
//! assert_eq!(session.heap().get_field(cell_obj, "value")?, Value::Int(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod export;
pub mod interface;
pub mod lockcheck;
pub mod node;
pub mod profile;
pub mod protocol;
pub mod proxy;
pub mod reactor;
pub mod reliable;
pub mod restore;
pub mod semantics;
pub mod server;
pub mod service;
pub mod session;
pub mod trace;
pub mod verify;
pub mod warm;

pub use error::NrmiError;
pub use export::ExportTable;
pub use interface::{InterfaceDef, MethodSig, ParamType, TypedService};
pub use lockcheck::{
    allow_blocking, BlockingAllowance, LockClass, TrackedMutex, TrackedRwLock, WitnessSnapshot,
};
pub use node::{ClientNode, NodeHooks, NodeState, ServerNode};
pub use profile::{CostModel, JdkGeneration, NrmiFlavor, RuntimeProfile};
pub use protocol::{
    client_apply_reply, client_invoke, client_invoke_on_object_with_stats, client_invoke_pipelined,
    client_invoke_with_stats, client_marshal_call, dispatch_tagged, serve_connection,
    serve_connection_shared, CallStats, PendingCall, PipelinedCall,
};
pub use proxy::{handle_callback, ProxyStats, RemoteHeapProxy};
pub use reactor::{reactor_classify, ReactorStep};
pub use reliable::{
    fresh_nonce, ReliableTransport, ReplyCache, ReplyDecision, RetryPolicy, RetryStats,
    REPLY_EVICTED,
};
pub use restore::{apply_restore, RestoreOutcome, RestoreStats};
pub use semantics::{CallOptions, PassMode};
pub use server::{serve_connection_pooled, ShardedReplyCache, SharedServer};
pub use service::{FnService, RemoteService};
pub use session::{
    serve_tcp, serve_tcp_concurrent, RemoteSession, ServeHandle, ServerPool, Session,
    SessionBuilder, TcpSession,
};
pub use trace::{CallTrace, Tracer};
pub use warm::{
    client_evict_warm, client_invoke_warm_with_stats, dispatch_warm_frame,
    dispatch_warm_frame_shared, new_lease_table, server_handle_warm_call, LeaseTable, WarmCaches,
    WarmSessions,
};

/// Result alias for middleware operations.
pub type Result<T> = std::result::Result<T, NrmiError>;
