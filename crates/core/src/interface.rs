//! Typed remote interfaces: the `java.rmi.Remote` interface contract.
//!
//! In Java RMI the remote interface is checked at compile time: a stub
//! only offers the declared methods, and argument or return-type
//! mismatches cannot reach the wire. This substrate is dynamically
//! typed, so [`InterfaceDef`] restores that safety at the middleware
//! boundary: it declares each method's parameter and return shapes, and
//! both ends enforce them — the client before marshalling
//! ([`InterfaceDef::check_call`]), the server before and after invoking
//! the implementation ([`TypedService`]).
//!
//! ```
//! use nrmi_core::interface::{InterfaceDef, ParamType};
//! use nrmi_heap::Value;
//!
//! let translator = InterfaceDef::new("Translator")
//!     .method("translate", &[ParamType::Reference, ParamType::Str], ParamType::Int)
//!     .method("ping", &[], ParamType::Void);
//! assert!(translator
//!     .check_call("translate", &[Value::Ref(nrmi_heap::ObjId::from_index(0)), Value::Str("de".into())])
//!     .is_ok());
//! assert!(translator.check_call("translate", &[Value::Int(1)]).is_err());
//! assert!(translator.check_call("frobnicate", &[]).is_err());
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use nrmi_heap::{HeapAccess, Value};

use crate::error::NrmiError;
use crate::service::RemoteService;

/// The declared shape of one parameter or return value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamType {
    /// `boolean`.
    Bool,
    /// `int`.
    Int,
    /// `long`.
    Long,
    /// `double`.
    Double,
    /// `String` (nullable, as in Java).
    Str,
    /// An object reference (nullable).
    Reference,
    /// Any value (an `Object` parameter).
    Any,
    /// No value — only meaningful as a return shape (`void`).
    Void,
}

impl ParamType {
    /// True if `value` conforms to this shape.
    pub fn admits(self, value: &Value) -> bool {
        match self {
            ParamType::Bool => matches!(value, Value::Bool(_)),
            ParamType::Int => matches!(value, Value::Int(_)),
            ParamType::Long => matches!(value, Value::Long(_)),
            ParamType::Double => matches!(value, Value::Double(_)),
            ParamType::Str => matches!(value, Value::Str(_) | Value::Null),
            ParamType::Reference => matches!(value, Value::Ref(_) | Value::Null),
            ParamType::Any => true,
            ParamType::Void => matches!(value, Value::Null),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ParamType::Bool => "boolean",
            ParamType::Int => "int",
            ParamType::Long => "long",
            ParamType::Double => "double",
            ParamType::Str => "String",
            ParamType::Reference => "Object reference",
            ParamType::Any => "Object",
            ParamType::Void => "void",
        }
    }
}

/// One declared method: parameter shapes and return shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodSig {
    params: Vec<ParamType>,
    returns: ParamType,
}

impl MethodSig {
    /// The parameter shapes, in order.
    pub fn params(&self) -> &[ParamType] {
        &self.params
    }

    /// The return shape.
    pub fn returns(&self) -> ParamType {
        self.returns
    }
}

/// A remote interface: a named set of method signatures.
#[derive(Clone, Debug, Default)]
pub struct InterfaceDef {
    name: String,
    methods: HashMap<String, MethodSig>,
}

impl InterfaceDef {
    /// Starts an interface named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceDef {
            name: name.into(),
            methods: HashMap::new(),
        }
    }

    /// Declares a method (builder-style).
    pub fn method(
        mut self,
        name: impl Into<String>,
        params: &[ParamType],
        returns: ParamType,
    ) -> Self {
        self.methods.insert(
            name.into(),
            MethodSig {
                params: params.to_vec(),
                returns,
            },
        );
        self
    }

    /// The interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a declared method.
    pub fn signature(&self, method: &str) -> Option<&MethodSig> {
        self.methods.get(method)
    }

    /// Declared method names (unordered).
    pub fn methods(&self) -> impl Iterator<Item = &str> {
        self.methods.keys().map(String::as_str)
    }

    /// Validates a call against the interface.
    ///
    /// # Errors
    /// [`NrmiError::NoSuchMethod`] for undeclared methods;
    /// [`NrmiError::InvalidArgument`] for arity or shape mismatches.
    pub fn check_call(&self, method: &str, args: &[Value]) -> Result<(), NrmiError> {
        let sig = self
            .methods
            .get(method)
            .ok_or_else(|| NrmiError::NoSuchMethod {
                service: self.name.clone(),
                method: method.to_owned(),
            })?;
        if args.len() != sig.params.len() {
            return Err(NrmiError::InvalidArgument(format!(
                "{}.{method} takes {} argument(s), got {}",
                self.name,
                sig.params.len(),
                args.len()
            )));
        }
        for (i, (param, arg)) in sig.params.iter().zip(args).enumerate() {
            if !param.admits(arg) {
                return Err(NrmiError::InvalidArgument(format!(
                    "{}.{method} argument {i} must be {}, got {}",
                    self.name,
                    param.name(),
                    arg.kind_name()
                )));
            }
        }
        Ok(())
    }

    /// Validates a return value against the declared shape.
    ///
    /// # Errors
    /// [`NrmiError::Protocol`] if the implementation returned the wrong
    /// shape (a server bug, surfaced instead of silently shipped).
    pub fn check_return(&self, method: &str, value: &Value) -> Result<(), NrmiError> {
        if let Some(sig) = self.methods.get(method) {
            if !sig.returns.admits(value) {
                return Err(NrmiError::Protocol(format!(
                    "{}.{method} must return {}, implementation returned {}",
                    self.name,
                    sig.returns.name(),
                    value.kind_name()
                )));
            }
        }
        Ok(())
    }
}

/// Wraps a service implementation with interface enforcement: calls are
/// validated before dispatch, returns after — the server-side half of
/// the typed contract.
pub struct TypedService {
    interface: Arc<InterfaceDef>,
    inner: Box<dyn RemoteService>,
}

impl std::fmt::Debug for TypedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypedService")
            .field("interface", &self.interface.name())
            .finish()
    }
}

impl TypedService {
    /// Wraps `inner` with `interface` enforcement.
    pub fn new(interface: Arc<InterfaceDef>, inner: Box<dyn RemoteService>) -> Self {
        TypedService { interface, inner }
    }
}

impl RemoteService for TypedService {
    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        heap: &mut dyn HeapAccess,
    ) -> Result<Value, NrmiError> {
        self.interface.check_call(method, args)?;
        let ret = self.inner.invoke(method, args, heap)?;
        self.interface.check_return(method, &ret)?;
        Ok(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FnService;
    use nrmi_heap::{ClassRegistry, Heap, ObjId};

    fn calc_interface() -> InterfaceDef {
        InterfaceDef::new("Calc")
            .method("add", &[ParamType::Int, ParamType::Int], ParamType::Int)
            .method("name", &[], ParamType::Str)
            .method("reset", &[], ParamType::Void)
            .method("touch", &[ParamType::Reference], ParamType::Any)
    }

    #[test]
    fn check_call_accepts_conforming_arguments() {
        let iface = calc_interface();
        assert!(iface
            .check_call("add", &[Value::Int(1), Value::Int(2)])
            .is_ok());
        assert!(iface.check_call("name", &[]).is_ok());
        assert!(
            iface.check_call("touch", &[Value::Null]).is_ok(),
            "references are nullable"
        );
        assert!(iface
            .check_call("touch", &[Value::Ref(ObjId::from_index(3))])
            .is_ok());
    }

    #[test]
    fn check_call_rejects_mismatches() {
        let iface = calc_interface();
        let arity = iface.check_call("add", &[Value::Int(1)]).unwrap_err();
        assert!(arity.to_string().contains("takes 2"), "{arity}");
        let shape = iface
            .check_call("add", &[Value::Int(1), Value::Long(2)])
            .unwrap_err();
        assert!(
            shape.to_string().contains("argument 1 must be int"),
            "{shape}"
        );
        let missing = iface.check_call("mul", &[]).unwrap_err();
        assert!(matches!(missing, NrmiError::NoSuchMethod { .. }));
    }

    #[test]
    fn check_return_enforces_shape() {
        let iface = calc_interface();
        assert!(iface.check_return("add", &Value::Int(3)).is_ok());
        assert!(iface.check_return("add", &Value::Str("3".into())).is_err());
        assert!(iface.check_return("reset", &Value::Null).is_ok());
        assert!(iface.check_return("reset", &Value::Int(0)).is_err());
        // Undeclared methods are not return-checked (the call check
        // already rejected them).
        assert!(iface.check_return("mystery", &Value::Int(1)).is_ok());
    }

    #[test]
    fn typed_service_enforces_both_directions() {
        let iface = Arc::new(calc_interface());
        let mut svc = TypedService::new(
            iface,
            Box::new(FnService::new(|method, args, _h| match method {
                "add" => Ok(Value::Int(
                    args[0].as_int().unwrap_or(0) + args[1].as_int().unwrap_or(0),
                )),
                // A buggy implementation returning the wrong shape:
                "name" => Ok(Value::Int(42)),
                _ => Ok(Value::Null),
            })),
        );
        let reg = ClassRegistry::new();
        let mut heap = Heap::new(reg.snapshot());
        assert_eq!(
            svc.invoke("add", &[Value::Int(20), Value::Int(22)], &mut heap)
                .unwrap(),
            Value::Int(42)
        );
        // Bad arguments rejected before the implementation runs.
        assert!(svc
            .invoke("add", &[Value::Null, Value::Int(1)], &mut heap)
            .is_err());
        // Bad return surfaced as a protocol error.
        let err = svc.invoke("name", &[], &mut heap).unwrap_err();
        assert!(matches!(err, NrmiError::Protocol(_)), "{err}");
    }

    #[test]
    fn param_type_admission_table() {
        use ParamType::*;
        assert!(Bool.admits(&Value::Bool(true)));
        assert!(!Bool.admits(&Value::Int(1)));
        assert!(Long.admits(&Value::Long(1)));
        assert!(!Long.admits(&Value::Int(1)), "no implicit widening");
        assert!(Double.admits(&Value::Double(1.0)));
        assert!(Str.admits(&Value::Null), "strings are nullable");
        assert!(Any.admits(&Value::Double(0.0)));
        assert!(Void.admits(&Value::Null));
        assert!(!Void.admits(&Value::Int(0)));
    }

    #[test]
    fn interface_introspection() {
        let iface = calc_interface();
        assert_eq!(iface.name(), "Calc");
        let mut methods: Vec<&str> = iface.methods().collect();
        methods.sort_unstable();
        assert_eq!(methods, vec!["add", "name", "reset", "touch"]);
        let sig = iface.signature("add").unwrap();
        assert_eq!(sig.params(), &[ParamType::Int, ParamType::Int]);
        assert_eq!(sig.returns(), ParamType::Int);
        assert!(iface.signature("nope").is_none());
    }
}
