//! The export table: a node's registry of objects held by its peer.
//!
//! When a node passes an object by remote reference (or a remote-marked
//! object travels inside a copied graph), the object is *exported*: it
//! gets a key, and the peer holds a stub carrying that key. The table
//! pins exported objects with a reference count of outstanding stubs —
//! RMI's Distributed Garbage Collector in miniature. Counts go up on
//! export and down on `DgcClean`; a pinned object is a GC root for the
//! local mark-sweep collector. Because this is reference counting,
//! distributed *cycles* never unpin — the leak the paper observes in its
//! call-by-reference benchmark (Table 6).

use std::collections::HashMap;

use nrmi_heap::ObjId;

/// Bidirectional key ↔ object map with stub reference counts.
///
/// ```
/// use nrmi_core::ExportTable;
/// use nrmi_heap::ObjId;
///
/// let mut table = ExportTable::new();
/// let obj = ObjId::from_index(3);
/// let key = table.export(obj);       // peer now holds one stub
/// let _ = table.export(obj);         // and another
/// assert_eq!(table.lookup(key), Some(obj));
/// assert!(!table.clean(key), "one pin remains");
/// assert!(table.clean(key), "fully released");
/// assert_eq!(table.lookup(key), None);
/// ```
#[derive(Debug, Default)]
pub struct ExportTable {
    by_key: HashMap<u64, Entry>,
    by_obj: HashMap<ObjId, u64>,
    next_key: u64,
}

#[derive(Debug)]
struct Entry {
    obj: ObjId,
    pins: u64,
}

impl ExportTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ExportTable::default()
    }

    /// Exports `obj` (or re-exports it), incrementing its pin count.
    /// Returns its stable key.
    pub fn export(&mut self, obj: ObjId) -> u64 {
        if let Some(&key) = self.by_obj.get(&obj) {
            self.by_key
                .get_mut(&key)
                .expect("by_obj and by_key stay in sync")
                .pins += 1;
            return key;
        }
        let key = self.next_key;
        self.next_key += 1;
        self.by_key.insert(key, Entry { obj, pins: 1 });
        self.by_obj.insert(obj, key);
        key
    }

    /// Resolves a key to the exported object.
    pub fn lookup(&self, key: u64) -> Option<ObjId> {
        self.by_key.get(&key).map(|e| e.obj)
    }

    /// Handles a DGC clean message: decrements the pin count, removing
    /// the entry when it reaches zero. Returns true if the entry was
    /// fully released.
    pub fn clean(&mut self, key: u64) -> bool {
        let Some(entry) = self.by_key.get_mut(&key) else {
            return false;
        };
        entry.pins -= 1;
        if entry.pins == 0 {
            let obj = entry.obj;
            self.by_key.remove(&key);
            self.by_obj.remove(&obj);
            true
        } else {
            false
        }
    }

    /// Number of currently exported objects.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True if nothing is exported.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// All exported objects — the DGC roots for a local tracing
    /// collection (a pinned object must survive even if locally
    /// unreachable).
    pub fn roots(&self) -> Vec<ObjId> {
        self.by_key.values().map(|e| e.obj).collect()
    }

    /// Total outstanding pins across all entries.
    pub fn total_pins(&self) -> u64 {
        self.by_key.values().map(|e| e.pins).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjId {
        ObjId::from_index(i)
    }

    #[test]
    fn export_is_idempotent_on_key_but_counts_pins() {
        let mut t = ExportTable::new();
        let k1 = t.export(obj(5));
        let k2 = t.export(obj(5));
        assert_eq!(k1, k2, "same object keeps its key");
        assert_eq!(t.total_pins(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(k1), Some(obj(5)));
    }

    #[test]
    fn distinct_objects_get_distinct_keys() {
        let mut t = ExportTable::new();
        let k1 = t.export(obj(1));
        let k2 = t.export(obj(2));
        assert_ne!(k1, k2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn clean_releases_at_zero() {
        let mut t = ExportTable::new();
        let k = t.export(obj(1));
        t.export(obj(1));
        assert!(!t.clean(k), "one pin remains");
        assert_eq!(t.lookup(k), Some(obj(1)));
        assert!(t.clean(k), "fully released");
        assert_eq!(t.lookup(k), None);
        assert!(t.is_empty());
        // Cleaning an unknown key is a no-op.
        assert!(!t.clean(k));
    }

    #[test]
    fn keys_are_not_reused_after_release() {
        let mut t = ExportTable::new();
        let k1 = t.export(obj(1));
        t.clean(k1);
        let k2 = t.export(obj(1));
        assert_ne!(
            k1, k2,
            "fresh key after full release (stale stubs must not resolve)"
        );
    }

    #[test]
    fn roots_cover_all_entries() {
        let mut t = ExportTable::new();
        t.export(obj(1));
        t.export(obj(2));
        let mut roots = t.roots();
        roots.sort();
        assert_eq!(roots, vec![obj(1), obj(2)]);
    }
}
