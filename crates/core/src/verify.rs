//! Network-transparency verification (the paper's §5.3.2 invariant).
//!
//! "The invariant maintained is that all the changes are visible to the
//! caller. In other words, the resulting execution semantics is as if
//! both the caller and the callee were executing within the same address
//! space." This module turns that sentence into an executable check:
//! build the same graph twice, run the routine once locally (the oracle)
//! and once through a remote call, and compare the resulting heaps up to
//! isomorphism — *including the aliases*.
//!
//! Property-based tests drive [`check_transparency`] with random graphs,
//! random aliases, and random mutation scripts; it is the strongest
//! correctness statement in the repository.

use nrmi_heap::graph::first_difference;
use nrmi_heap::{Heap, HeapAccess, ObjId, SharedRegistry, Value};

use crate::error::NrmiError;
use crate::semantics::CallOptions;
use crate::service::FnService;
use crate::session::Session;

/// A routine under test: receives the root argument and the heap it
/// should mutate. Must be deterministic — it runs twice.
pub type Routine = fn(&mut dyn HeapAccess, ObjId) -> Result<Value, NrmiError>;

/// Builds a graph into a heap, returning the interesting roots:
/// element 0 is the call argument; the rest are aliases into the graph
/// whose views must also be checked.
pub type GraphBuilder<'a> = &'a dyn Fn(&mut Heap) -> Vec<ObjId>;

/// Runs `routine` both locally and as a remote call under `opts`, and
/// compares the outcomes.
///
/// Returns `Ok(None)` when the remote execution is transparent — the
/// caller-side heap is isomorphic to the local-oracle heap across the
/// argument *and every alias* — and `Ok(Some(description))` naming the
/// first divergence otherwise (which is the expected outcome for, e.g.,
/// plain copy semantics under mutation, or DCE semantics with
/// unreachable changes).
///
/// # Errors
/// Propagates infrastructure failures (the comparison itself failing),
/// not semantic divergences.
pub fn check_transparency(
    registry: &SharedRegistry,
    build: GraphBuilder<'_>,
    routine: Routine,
    opts: CallOptions,
) -> Result<Option<String>, NrmiError> {
    // Local oracle.
    let mut oracle_heap = Heap::new(registry.clone());
    let oracle_roots = build(&mut oracle_heap);
    let oracle_arg = *oracle_roots
        .first()
        .expect("builder returns at least the argument root");
    routine(&mut oracle_heap, oracle_arg)?;

    // Remote execution.
    let mut session = Session::builder(registry.clone())
        .serve(
            "under-test",
            Box::new(FnService::new(move |_method, args, heap| {
                let arg = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("routine expects a reference argument"))?;
                routine(heap, arg)
            })),
        )
        .build();
    let client_roots = build(session.heap());
    let client_arg = *client_roots
        .first()
        .expect("builder returns at least the argument root");
    session.call_with("under-test", "run", &[Value::Ref(client_arg)], opts)?;

    // Compare outcome graphs across argument + aliases.
    let diff = first_difference(&oracle_heap, &oracle_roots, session.heap(), &client_roots)?;
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::PassMode;
    use nrmi_heap::{tree, ClassRegistry};

    fn registry() -> SharedRegistry {
        let mut reg = ClassRegistry::new();
        let _ = tree::register_tree_classes(&mut reg);
        reg.snapshot()
    }

    fn build_example(heap: &mut Heap) -> Vec<ObjId> {
        let classes = tree::TreeClasses {
            tree: heap
                .registry_handle()
                .by_name("Tree")
                .expect("Tree registered"),
        };
        let ex = tree::build_running_example(heap, &classes).unwrap();
        vec![ex.root, ex.alias1_target, ex.alias2_target]
    }

    fn foo_routine(heap: &mut dyn HeapAccess, root: ObjId) -> Result<Value, NrmiError> {
        tree::run_foo(heap, root)?;
        Ok(Value::Null)
    }

    #[test]
    fn copy_restore_is_transparent_for_running_example() {
        let diff = check_transparency(
            &registry(),
            &build_example,
            foo_routine,
            CallOptions::forced(PassMode::CopyRestore),
        )
        .unwrap();
        assert_eq!(diff, None, "copy-restore must equal local execution");
    }

    #[test]
    fn auto_mode_is_transparent_for_restorable_classes() {
        let diff = check_transparency(
            &registry(),
            &build_example,
            foo_routine,
            CallOptions::auto(),
        )
        .unwrap();
        assert_eq!(
            diff, None,
            "Tree is Restorable, so AUTO should copy-restore"
        );
    }

    #[test]
    fn delta_reply_is_transparent() {
        let diff = check_transparency(
            &registry(),
            &build_example,
            foo_routine,
            CallOptions::copy_restore_delta(),
        )
        .unwrap();
        assert_eq!(
            diff, None,
            "delta-encoded copy-restore must equal local execution"
        );
    }

    #[test]
    fn plain_copy_is_not_transparent_under_mutation() {
        let diff = check_transparency(
            &registry(),
            &build_example,
            foo_routine,
            CallOptions::forced(PassMode::Copy),
        )
        .unwrap();
        assert!(diff.is_some(), "call-by-copy discards server mutations");
    }

    #[test]
    fn dce_semantics_is_not_transparent_when_data_unlinked() {
        // foo unlinks t.left and the old t.right; DCE drops their
        // updates, so the outcome differs from local execution (§4.2).
        let diff = check_transparency(
            &registry(),
            &build_example,
            foo_routine,
            CallOptions::forced(PassMode::DceRpc),
        )
        .unwrap();
        assert!(
            diff.is_some(),
            "DCE RPC must diverge on the running example"
        );
    }

    #[test]
    fn dce_equals_copy_restore_without_unlinking() {
        // When nothing becomes unreachable, DCE and full copy-restore
        // coincide.
        fn benign(heap: &mut dyn HeapAccess, root: ObjId) -> Result<Value, NrmiError> {
            heap.set_field(root, "data", Value::Int(123))?;
            Ok(Value::Null)
        }
        let diff = check_transparency(
            &registry(),
            &build_example,
            benign,
            CallOptions::forced(PassMode::DceRpc),
        )
        .unwrap();
        assert_eq!(diff, None);
    }
}
