//! Calling semantics: the heart of the paper's design space.
//!
//! Section 2 of the paper lays out the choices middleware has for
//! pointer-bearing parameters; this module names them:
//!
//! * [`PassMode::Copy`] — deep-copy to the callee, changes lost
//!   (standard Java RMI for `Serializable` types);
//! * [`PassMode::CopyRestore`] — deep-copy to the callee, all changes
//!   restored in place on return (NRMI, for `Restorable` types) —
//!   indistinguishable from call-by-reference for stateless servers;
//! * [`PassMode::RemoteRef`] — no copy: the callee dereferences through
//!   remote pointers, every access crossing the network (Figure 3);
//! * [`PassMode::DceRpc`] — the DCE RPC approximation (§4.2): like
//!   copy-restore, but only data still reachable from the parameters
//!   after the call is restored (Figure 9's divergence).
//!
//! ## The multi-threaded client caveat (§4.1)
//!
//! Copy-restore equals call-by-reference only for single-threaded
//! clients of stateless servers. A remote call acts as a bulk mutator of
//! everything reachable from its arguments, applied at reply time in
//! middleware-determined order; a second client thread reading that data
//! mid-call observes neither the pre- nor post-call state reliably. This
//! crate encodes the discipline structurally: a `Session` is `!Sync` —
//! calls on one session are inherently mutually exclusive, and
//! applications that want concurrency use one session (and heap) per
//! thread, as the paper prescribes ("remote calls need to at least
//! execute in mutual exclusion with calls that read/write the same
//! data").

use std::time::Duration;

use crate::error::NrmiError;

/// Parameter-passing semantics for one remote call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassMode {
    /// Call-by-copy: arguments are deep-copied; server-side changes are
    /// not propagated back.
    Copy,
    /// Call-by-copy-restore: arguments are deep-copied; after the call
    /// every change (including to data that became unreachable from the
    /// parameters) is reproduced in place on the caller's originals.
    CopyRestore,
    /// Call-by-reference through remote pointers: the server receives
    /// handles and every field access is a network round trip.
    RemoteRef,
    /// DCE RPC semantics: copy-restore restricted to data reachable from
    /// the parameters *after* the call.
    DceRpc,
}

impl PassMode {
    /// True for the modes that marshal a full argument graph (everything
    /// except [`PassMode::RemoteRef`]).
    pub fn copies_arguments(self) -> bool {
        !matches!(self, PassMode::RemoteRef)
    }

    /// True for the modes that restore server-side changes onto the
    /// caller's data.
    pub fn restores(self) -> bool {
        matches!(self, PassMode::CopyRestore | PassMode::DceRpc)
    }
}

/// Per-call options. The zero-configuration default —
/// `CallOptions::default()` — resolves semantics per argument from class
/// markers, exactly as NRMI does (§5.1: `Restorable` ⇒ copy-restore,
/// `Serializable` ⇒ copy, remote ⇒ reference).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallOptions {
    /// Force one semantics for *all* reference arguments, overriding
    /// class markers. Benchmarks use this to run the same workload under
    /// every semantics.
    pub mode_override: Option<PassMode>,
    /// Ship the reply as a delta against the request snapshot instead of
    /// a full graph (§5.2.4 optimization 2; only meaningful for
    /// copy-restore).
    pub delta_reply: bool,
    /// Abandon the call if no reply (or callback) arrives within this
    /// window. `None` waits indefinitely. A timed-out copy/copy-restore
    /// call leaves the caller's heap untouched (no partial restore).
    pub timeout: Option<Duration>,
}

impl CallOptions {
    /// Marker-driven semantics (the NRMI default).
    pub fn auto() -> Self {
        CallOptions::default()
    }

    /// Force `mode` for all reference arguments.
    pub fn forced(mode: PassMode) -> Self {
        CallOptions {
            mode_override: Some(mode),
            ..CallOptions::default()
        }
    }

    /// Copy-restore with delta-encoded replies.
    pub fn copy_restore_delta() -> Self {
        CallOptions {
            mode_override: Some(PassMode::CopyRestore),
            delta_reply: true,
            ..CallOptions::default()
        }
    }

    /// Returns a copy of these options with a reply deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

// Wire discriminants for CallRequest.mode. AUTO lets the server resolve
// markers itself (both sides share the registry, so they agree).
pub(crate) const MODE_AUTO: u8 = 0;
pub(crate) const MODE_COPY: u8 = 1;
pub(crate) const MODE_COPY_RESTORE: u8 = 2;
pub(crate) const MODE_REMOTE_REF: u8 = 3;
pub(crate) const MODE_DCE: u8 = 4;
pub(crate) const MODE_DELTA_FLAG: u8 = 0x10;

/// The semantics discriminant of a request `mode` byte, flags stripped —
/// what serve loops branch on without fully decoding the options.
pub(crate) fn wire_mode_bits(byte: u8) -> u8 {
    byte & !MODE_DELTA_FLAG
}

impl CallOptions {
    /// Encodes these options as the request `mode` byte. Public so
    /// protocol tooling (the `nrmi-check` model checker) can build raw
    /// request frames.
    pub fn to_wire(self) -> u8 {
        let base = match self.mode_override {
            None => MODE_AUTO,
            Some(PassMode::Copy) => MODE_COPY,
            Some(PassMode::CopyRestore) => MODE_COPY_RESTORE,
            Some(PassMode::RemoteRef) => MODE_REMOTE_REF,
            Some(PassMode::DceRpc) => MODE_DCE,
        };
        if self.delta_reply {
            base | MODE_DELTA_FLAG
        } else {
            base
        }
    }

    /// Decodes a request `mode` byte back into options.
    ///
    /// # Errors
    /// [`NrmiError::Protocol`] for discriminants no release ever emitted.
    pub fn from_wire(byte: u8) -> Result<Self, NrmiError> {
        let delta_reply = byte & MODE_DELTA_FLAG != 0;
        let mode_override = match byte & !MODE_DELTA_FLAG {
            MODE_AUTO => None,
            MODE_COPY => Some(PassMode::Copy),
            MODE_COPY_RESTORE => Some(PassMode::CopyRestore),
            MODE_REMOTE_REF => Some(PassMode::RemoteRef),
            MODE_DCE => Some(PassMode::DceRpc),
            other => {
                return Err(NrmiError::Protocol(format!(
                    "unknown mode byte {other:#04x}"
                )));
            }
        };
        Ok(CallOptions {
            mode_override,
            delta_reply,
            timeout: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(PassMode::Copy.copies_arguments());
        assert!(PassMode::CopyRestore.copies_arguments());
        assert!(PassMode::DceRpc.copies_arguments());
        assert!(!PassMode::RemoteRef.copies_arguments());
        assert!(PassMode::CopyRestore.restores());
        assert!(PassMode::DceRpc.restores());
        assert!(!PassMode::Copy.restores());
        assert!(!PassMode::RemoteRef.restores());
    }

    #[test]
    fn wire_roundtrip() {
        let cases = [
            CallOptions::auto(),
            CallOptions::forced(PassMode::Copy),
            CallOptions::forced(PassMode::CopyRestore),
            CallOptions::forced(PassMode::RemoteRef),
            CallOptions::forced(PassMode::DceRpc),
            CallOptions::copy_restore_delta(),
            CallOptions {
                mode_override: None,
                delta_reply: true,
                timeout: None,
            },
        ];
        for opts in cases {
            let byte = opts.to_wire();
            assert_eq!(CallOptions::from_wire(byte).unwrap(), opts, "{byte:#04x}");
        }
        // Timeouts are client-local and do not travel on the wire.
        let timed = CallOptions::auto().with_timeout(Duration::from_secs(1));
        assert_eq!(timed.to_wire(), CallOptions::auto().to_wire());
    }

    #[test]
    fn bad_mode_byte_rejected() {
        assert!(CallOptions::from_wire(0x0f).is_err());
    }

    #[test]
    fn delta_default_off() {
        assert!(!CallOptions::auto().delta_reply);
        assert!(CallOptions::copy_restore_delta().delta_reply);
    }
}
