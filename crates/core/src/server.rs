//! The fine-grained shared server: what several connection threads
//! dispatch into *without* a one-big-lock [`ServerNode`].
//!
//! The old shared path (`serve_connection_shared`) funnels every
//! connection through one `Mutex<ServerNode>` held across call
//! execution — including mid-call callback traffic to the calling
//! client — so one stalled client freezes every other connection
//! (head-of-line blocking). This module splits that state by how it is
//! actually shared:
//!
//! * **Bindings** (name → service, class → service) are read-mostly:
//!   they live behind an [`RwLock`](parking_lot::RwLock) and are
//!   snapshotted per connection. Each service body itself is `&mut` —
//!   the paper's §4.1 `synchronized`-equivalent dispatch — so it sits
//!   behind its *own* mutex ([`SharedService`]), held only for the
//!   invocation. Calls to *different* services never contend.
//! * **Heap, export/stub tables, codec scratch** are per-*connection*:
//!   each accepted connection gets a private [`NodeState`], so wire
//!   decode, call execution, and reply encode run with no lock other
//!   than the callee's service mutex. Copy-restore is stateless across
//!   calls (every call re-marshals its arguments), so confining call
//!   copies to the connection that made them preserves semantics — and
//!   disconnect reclaims them wholesale instead of accreting garbage in
//!   a shared heap.
//! * **The reply cache** (at-most-once, PR 4) must stay global: a
//!   reconnect retransmits a call id on a *new* connection and must
//!   still find the recorded reply or the in-progress marker. It
//!   becomes a [`ShardedReplyCache`]: N independently locked
//!   [`ReplyCache`] shards keyed by session nonce, so unrelated
//!   sessions do not contend and no shard lock is ever held across
//!   execution — the `begin`/`store` decide-mark-executing-store
//!   discipline is unchanged.
//!
//! What this does *not* provide: cross-call ordering between clients
//! (none was promised — the big lock serialized calls in arrival order,
//! which no correct client could observe), and cross-connection sharing
//! of server heap state for named services (no in-tree service relied
//! on it; services share state through their own captured fields, as
//! `synchronized` Java methods share fields of the remote object).

use std::collections::HashMap;
use std::sync::Arc;

use nrmi_heap::{ClassId, HeapAccess, SharedRegistry, Value};
use nrmi_transport::{Frame, MachineSpec, SimEnv, Transport, TransportError};

use crate::error::NrmiError;
use crate::node::{NodeState, ServerNode};
use crate::profile::RuntimeProfile;
use crate::reliable::{
    evicted_reply, ReplyCache, ReplyDecision, DEFAULT_REPLY_CACHE_BYTES, DEFAULT_REPLY_CACHE_NONCES,
};
use crate::service::RemoteService;

/// A service binding shared across connection threads: the service body
/// runs under its own mutex, the `synchronized`-method analogue. The
/// mutex is held for the duration of one invocation (including any
/// mid-call callbacks to the *calling* client), so concurrent calls to
/// the same service serialize — and calls to different services do not.
type ServiceHandle = Arc<parking_lot::Mutex<Box<dyn RemoteService>>>;

/// Per-connection adapter: implements [`RemoteService`] by locking the
/// shared binding for each invocation.
struct SharedService(ServiceHandle);

impl RemoteService for SharedService {
    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        heap: &mut dyn HeapAccess,
    ) -> Result<Value, NrmiError> {
        self.0.lock().invoke(method, args, heap)
    }
}

/// Number of reply-cache shards. A power of two so the nonce hash
/// reduces with a mask; 16 is comfortably above the worker counts this
/// server runs with.
const REPLY_SHARDS: usize = 16;

/// The at-most-once reply cache, split into independently locked shards
/// keyed by session nonce. All traffic for one client session (one
/// nonce) lands on one shard, so the per-session decide/execute/store
/// discipline of [`ReplyCache`] is preserved verbatim; different
/// sessions usually hash to different shards and never contend.
///
/// No shard lock is ever held across call execution: `begin` classifies
/// and (when fresh) marks the id executing in one locked step, the call
/// runs lock-free, and `store` records the reply in a second locked
/// step. A duplicate racing in on another connection between the two
/// observes [`ReplyDecision::InProgress`] — exactly the PR 4 warm-path
/// discipline, now uniform for cold calls too.
#[derive(Debug)]
pub struct ShardedReplyCache {
    shards: Vec<parking_lot::Mutex<ReplyCache>>,
}

impl Default for ShardedReplyCache {
    fn default() -> Self {
        ShardedReplyCache::with_limits(DEFAULT_REPLY_CACHE_BYTES, DEFAULT_REPLY_CACHE_NONCES)
    }
}

impl ShardedReplyCache {
    /// Creates a cache whose *total* budget across shards is `max_bytes`
    /// of encoded replies and `max_nonces` tracked sessions.
    pub fn with_limits(max_bytes: usize, max_nonces: usize) -> Self {
        let per_shard_bytes = (max_bytes / REPLY_SHARDS).max(1);
        let per_shard_nonces = (max_nonces / REPLY_SHARDS).max(1);
        ShardedReplyCache {
            shards: (0..REPLY_SHARDS)
                .map(|_| {
                    parking_lot::Mutex::new(ReplyCache::with_limits(
                        per_shard_bytes,
                        per_shard_nonces,
                    ))
                })
                .collect(),
        }
    }

    fn shard(&self, nonce: u64) -> &parking_lot::Mutex<ReplyCache> {
        // Fibonacci hash: session nonces are random 64-bit values, but
        // don't rely on their low bits alone.
        let ix = (nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (REPLY_SHARDS - 1);
        &self.shards[ix]
    }

    /// Classifies call id `(nonce, seq)` and, when fresh, marks it
    /// executing — one locked step on the nonce's shard.
    pub fn begin(&self, nonce: u64, seq: u64) -> ReplyDecision {
        self.shard(nonce).lock().begin(nonce, seq)
    }

    /// Records the reply for an executed call and clears its executing
    /// marker.
    pub fn store(&self, nonce: u64, seq: u64, reply: &Frame) {
        self.shard(nonce).lock().store(nonce, seq, reply);
    }

    /// Cached replies currently held, summed across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds a cached reply.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Name and class bindings, read-mostly behind one [`RwLock`]
/// (`parking_lot::RwLock`): connection setup takes a read snapshot,
/// [`SharedServer::bind`] takes the write lock.
struct Bindings {
    services: HashMap<String, ServiceHandle>,
    class_services: HashMap<ClassId, ServiceHandle>,
}

/// The lock-split shared server state: everything connection workers
/// share, and nothing they don't. Built from a configured
/// [`ServerNode`] with [`SharedServer::from_node`]; gives the node back
/// (services unwrapped, root state untouched) with
/// [`SharedServer::into_node`] once every worker has finished.
pub struct SharedServer {
    registry: SharedRegistry,
    machine: MachineSpec,
    profile: RuntimeProfile,
    env: Option<SimEnv>,
    bindings: parking_lot::RwLock<Bindings>,
    /// The global at-most-once reply cache (see [`ShardedReplyCache`]).
    pub replies: ShardedReplyCache,
    /// The root node state the server was built from, returned by
    /// [`SharedServer::into_node`]. Connection workers never touch it.
    root: parking_lot::Mutex<Option<NodeState>>,
}

impl std::fmt::Debug for SharedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedServer")
            .field("services", &self.bindings.read().services.len())
            .finish()
    }
}

impl SharedServer {
    /// Splits a configured [`ServerNode`] into shared server state:
    /// each bound service moves behind its own mutex, the reply cache
    /// becomes sharded, and the node state is kept aside for
    /// [`SharedServer::into_node`].
    pub fn from_node(node: ServerNode) -> Self {
        let ServerNode {
            state,
            services,
            class_services,
            replies: _,
        } = node;
        SharedServer {
            registry: state.heap.registry_handle().clone(),
            machine: state.machine.clone(),
            profile: state.profile,
            env: state.env.clone(),
            bindings: parking_lot::RwLock::new(Bindings {
                services: services
                    .into_iter()
                    .map(|(name, svc)| (name, Arc::new(parking_lot::Mutex::new(svc))))
                    .collect(),
                class_services: class_services
                    .into_iter()
                    .map(|(class, svc)| (class, Arc::new(parking_lot::Mutex::new(svc))))
                    .collect(),
            }),
            replies: ShardedReplyCache::default(),
            root: parking_lot::Mutex::new(Some(state)),
        }
    }

    /// Binds `service` under `name` for connections accepted *after*
    /// this call (each connection snapshots the bindings at accept).
    pub fn bind(&self, name: impl Into<String>, service: Box<dyn RemoteService>) {
        self.bindings
            .write()
            .services
            .insert(name.into(), Arc::new(parking_lot::Mutex::new(service)));
    }

    /// True if `name` is currently bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.bindings.read().services.contains_key(name)
    }

    /// Builds the private [`ServerNode`] a connection worker serves
    /// with: a fresh [`NodeState`] (own heap, export/stub tables, codec
    /// scratch — no lock needed on any of them) plus locking adapters
    /// for every shared service binding.
    pub fn connection_node(&self) -> ServerNode {
        let mut state = NodeState::new(self.registry.clone(), self.machine.clone());
        state.profile = self.profile;
        state.env = self.env.clone();
        let bindings = self.bindings.read();
        ServerNode {
            state,
            services: bindings
                .services
                .iter()
                .map(|(name, svc)| {
                    (
                        name.clone(),
                        Box::new(SharedService(Arc::clone(svc))) as Box<dyn RemoteService>,
                    )
                })
                .collect(),
            class_services: bindings
                .class_services
                .iter()
                .map(|(&class, svc)| {
                    (
                        class,
                        Box::new(SharedService(Arc::clone(svc))) as Box<dyn RemoteService>,
                    )
                })
                .collect(),
            // Unused by the pooled serve loop (tagged calls go through
            // the shared `replies` shards), present for type uniformity.
            replies: ReplyCache::default(),
        }
    }

    /// Reassembles the [`ServerNode`] this server was built from. Call
    /// only after every connection worker has finished (they hold
    /// references to the service bindings); a binding still referenced
    /// elsewhere is dropped from the returned node.
    pub fn into_node(self) -> ServerNode {
        let SharedServer { bindings, root, .. } = self;
        let Bindings {
            services,
            class_services,
        } = bindings.into_inner();
        let state = root
            .into_inner()
            .expect("into_node consumes the root state once");
        let mut node = ServerNode {
            state,
            services: HashMap::new(),
            class_services: HashMap::new(),
            replies: ReplyCache::default(),
        };
        for (name, svc) in services {
            match Arc::try_unwrap(svc) {
                Ok(mutex) => {
                    node.services.insert(name, mutex.into_inner());
                }
                Err(_) => debug_assert!(false, "service {name:?} still referenced by a worker"),
            }
        }
        for (class, svc) in class_services {
            match Arc::try_unwrap(svc) {
                Ok(mutex) => {
                    node.class_services.insert(class, mutex.into_inner());
                }
                Err(_) => debug_assert!(false, "class service still referenced by a worker"),
            }
        }
        node
    }
}

/// Serves one connection against the lock-split [`SharedServer`] until
/// the peer disconnects or sends `Shutdown`. This is the pooled
/// replacement for `serve_connection_shared`: the connection's heap,
/// warm caches, and codec scratch are private, so a stalled client —
/// even one blocked mid-call inside a callback — holds nothing another
/// connection waits on except the mutex of the service it is executing
/// in.
///
/// # Errors
/// Returns transport errors other than orderly disconnect.
pub fn serve_connection_pooled(
    shared: &SharedServer,
    transport: &mut dyn Transport,
) -> Result<(), NrmiError> {
    let mut conn = shared.connection_node();
    let mut warm = crate::warm::WarmCaches::new();
    let result = serve_connection_pooled_inner(shared, &mut conn, &mut warm, transport);
    // Disconnect releases the connection's cached warm-session graphs;
    // the rest of the private heap (cold-call copies included) goes
    // with the node itself, so a long-lived server no longer
    // accumulates call copies across clients.
    warm.release_all(&mut conn.state.heap);
    result
}

fn serve_connection_pooled_inner(
    shared: &SharedServer,
    conn: &mut ServerNode,
    warm: &mut crate::warm::WarmCaches,
    transport: &mut dyn Transport,
) -> Result<(), NrmiError> {
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(TransportError::Disconnected) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        match frame {
            Frame::Shutdown => return Ok(()),
            Frame::Tagged { nonce, seq, frame } => {
                // Decide-mark-executing on the nonce's shard, execute
                // with no shard lock held, store. A duplicate arriving
                // on another connection mid-execution reads InProgress
                // and is dropped unanswered — the client's next
                // retransmission replays the stored reply.
                let reply = match shared.replies.begin(nonce, seq) {
                    ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(cached),
                    }),
                    ReplyDecision::Evicted => Some(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(evicted_reply()),
                    }),
                    ReplyDecision::InProgress => None,
                    ReplyDecision::Fresh => {
                        let reply = crate::protocol::dispatch_tagged(conn, warm, transport, *frame);
                        shared.replies.store(nonce, seq, &reply);
                        Some(Frame::Tagged {
                            nonce,
                            seq,
                            frame: Box::new(reply),
                        })
                    }
                };
                if let Some(reply) = reply {
                    transport.send(&reply)?;
                }
            }
            // Everything untagged touches only per-connection state (and
            // the callee's service mutex) — identical to the exclusive
            // single-connection loop.
            Frame::CallRequestWarm {
                service,
                method,
                mode,
                cache_id,
                generation,
                payload,
            } => {
                let reply = crate::warm::server_handle_warm_call(
                    conn, warm, transport, &service, &method, mode, cache_id, generation, &payload,
                );
                transport.send(&reply)?;
            }
            Frame::CacheEvict { cache_id } => {
                warm.evict(&mut conn.state.heap, cache_id);
            }
            Frame::Lookup { name } => {
                let found = shared.is_bound(&name);
                transport.send(&Frame::LookupReply { found })?;
            }
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                let reply = crate::protocol::server_handle_named_call(
                    conn, transport, &service, &method, mode, &payload,
                );
                transport.send(&reply)?;
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                let reply = crate::protocol::server_handle_object_call(
                    conn, transport, key, &method, mode, &payload,
                );
                transport.send(&reply)?;
            }
            Frame::DgcClean { key } => {
                conn.state.exports.clean(key);
            }
            other => {
                return Err(NrmiError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}
