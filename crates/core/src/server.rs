//! The fine-grained shared server: what several connection threads
//! dispatch into *without* a one-big-lock [`ServerNode`].
//!
//! The old shared path (`serve_connection_shared`) funnels every
//! connection through one `Mutex<ServerNode>` held across call
//! execution — including mid-call callback traffic to the calling
//! client — so one stalled client freezes every other connection
//! (head-of-line blocking). This module splits that state by how it is
//! actually shared:
//!
//! * **Bindings** (name → service, class → service) are read-mostly:
//!   they live behind an [`RwLock`](crate::lockcheck::TrackedRwLock) and are
//!   snapshotted per connection. Each service body itself is `&mut` —
//!   the paper's §4.1 `synchronized`-equivalent dispatch — so it sits
//!   behind its *own* mutex ([`SharedService`]), held only for the
//!   invocation. Calls to *different* services never contend.
//! * **Heap, export/stub tables, codec scratch** are per-*connection*:
//!   each accepted connection gets a private [`NodeState`], so wire
//!   decode, call execution, and reply encode run with no lock other
//!   than the callee's service mutex. Copy-restore is stateless across
//!   calls (every call re-marshals its arguments), so confining call
//!   copies to the connection that made them preserves semantics — and
//!   disconnect reclaims them wholesale instead of accreting garbage in
//!   a shared heap.
//! * **The reply cache** (at-most-once, PR 4) must stay global: a
//!   reconnect retransmits a call id on a *new* connection and must
//!   still find the recorded reply or the in-progress marker. It
//!   becomes a [`ShardedReplyCache`]: N independently locked
//!   [`ReplyCache`] shards keyed by session nonce, so unrelated
//!   sessions do not contend and no shard lock is ever held across
//!   execution — the `begin`/`store` decide-mark-executing-store
//!   discipline is unchanged.
//!
//! What this does *not* provide: cross-call ordering between clients
//! (none was promised — the big lock serialized calls in arrival order,
//! which no correct client could observe), and cross-connection sharing
//! of server heap state for named services (no in-tree service relied
//! on it; services share state through their own captured fields, as
//! `synchronized` Java methods share fields of the remote object).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use nrmi_heap::{ClassId, HeapAccess, SharedRegistry, Value};
use nrmi_transport::{
    Frame, MachineSpec, SimEnv, Transport, TransportError, TransportReceiver, TransportSender,
};

use crate::error::NrmiError;
use crate::lockcheck::{allow_blocking, LockClass, TrackedMutex, TrackedRwLock};
use crate::node::{NodeState, ServerNode};
use crate::profile::RuntimeProfile;
use crate::reliable::{
    evicted_reply, ReplyCache, ReplyDecision, DEFAULT_REPLY_CACHE_BYTES, DEFAULT_REPLY_CACHE_NONCES,
};
use crate::service::RemoteService;

/// A service binding shared across connection threads: the service body
/// runs under its own mutex, the `synchronized`-method analogue. The
/// mutex is held for the duration of one invocation (including any
/// mid-call callbacks to the *calling* client), so concurrent calls to
/// the same service serialize — and calls to different services do not.
type ServiceHandle = Arc<TrackedMutex<Box<dyn RemoteService>>>;

fn service_handle(service: Box<dyn RemoteService>) -> ServiceHandle {
    Arc::new(TrackedMutex::new(LockClass::Service, service))
}

/// Per-connection adapter: implements [`RemoteService`] by locking the
/// shared binding for each invocation.
struct SharedService(ServiceHandle);

impl RemoteService for SharedService {
    fn invoke(
        &mut self,
        method: &str,
        args: &[Value],
        heap: &mut dyn HeapAccess,
    ) -> Result<Value, NrmiError> {
        // Designed-in hold (DESIGN.md §3i): the service mutex stays
        // held across mid-call callbacks to the calling client — that
        // *is* the §4.1 synchronized-dispatch semantics — so the
        // witness records transport waits under it as accepted, not as
        // NRMI-L002 violations.
        let _allow =
            allow_blocking("service mutex held across mid-call callbacks by design (\u{a7}4.1)");
        self.0.lock().invoke(method, args, heap)
    }
}

/// Number of reply-cache shards. A power of two so the nonce hash
/// reduces with a mask; 16 is comfortably above the worker counts this
/// server runs with.
const REPLY_SHARDS: usize = 16;

/// The at-most-once reply cache, split into independently locked shards
/// keyed by session nonce. All traffic for one client session (one
/// nonce) lands on one shard, so the per-session decide/execute/store
/// discipline of [`ReplyCache`] is preserved verbatim; different
/// sessions usually hash to different shards and never contend.
///
/// No shard lock is ever held across call execution: `begin` classifies
/// and (when fresh) marks the id executing in one locked step, the call
/// runs lock-free, and `store` records the reply in a second locked
/// step. A duplicate racing in on another connection between the two
/// observes [`ReplyDecision::InProgress`] — exactly the PR 4 warm-path
/// discipline, now uniform for cold calls too.
#[derive(Debug)]
pub struct ShardedReplyCache {
    shards: Vec<TrackedMutex<ReplyCache>>,
    /// Cached replies across all shards, maintained on store/evict so
    /// [`len`](ShardedReplyCache::len) is one relaxed load instead of a
    /// sweep that takes all shard locks (which briefly serialized every
    /// connection behind a caller polling the size).
    entries: AtomicUsize,
}

impl Default for ShardedReplyCache {
    fn default() -> Self {
        ShardedReplyCache::with_limits(DEFAULT_REPLY_CACHE_BYTES, DEFAULT_REPLY_CACHE_NONCES)
    }
}

impl ShardedReplyCache {
    /// Creates a cache whose *total* budget across shards is `max_bytes`
    /// of encoded replies and `max_nonces` tracked sessions.
    pub fn with_limits(max_bytes: usize, max_nonces: usize) -> Self {
        let per_shard_bytes = (max_bytes / REPLY_SHARDS).max(1);
        let per_shard_nonces = (max_nonces / REPLY_SHARDS).max(1);
        ShardedReplyCache {
            shards: (0..REPLY_SHARDS)
                .map(|_| {
                    TrackedMutex::new(
                        LockClass::ReplyCacheShard,
                        ReplyCache::with_limits(per_shard_bytes, per_shard_nonces),
                    )
                })
                .collect(),
            entries: AtomicUsize::new(0),
        }
    }

    fn shard(&self, nonce: u64) -> &TrackedMutex<ReplyCache> {
        // Fibonacci hash: session nonces are random 64-bit values, but
        // don't rely on their low bits alone.
        let ix = (nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (REPLY_SHARDS - 1);
        &self.shards[ix]
    }

    /// Classifies call id `(nonce, seq)` and, when fresh, marks it
    /// executing — one locked step on the nonce's shard.
    pub fn begin(&self, nonce: u64, seq: u64) -> ReplyDecision {
        self.shard(nonce).lock().begin(nonce, seq)
    }

    /// Records the reply for an executed call and clears its executing
    /// marker.
    pub fn store(&self, nonce: u64, seq: u64, reply: &Frame) {
        // One store can both insert and evict (byte cap, nonce cap), so
        // the global count moves by the shard's net length change,
        // measured under the shard lock where it is exact.
        let (before, after) = {
            let mut shard = self.shard(nonce).lock();
            let before = shard.len();
            shard.store(nonce, seq, reply);
            (before, shard.len())
        };
        if after >= before {
            self.entries.fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.entries.fetch_sub(before - after, Ordering::Relaxed);
        }
    }

    /// Cached replies currently held, summed across shards — a relaxed
    /// atomic read. Concurrent stores make the value a snapshot, not a
    /// linearized sum, which is all a size probe can promise anyway.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no shard holds a cached reply.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Name and class bindings, read-mostly behind one
/// [`TrackedRwLock`] (class `bindings`): connection setup takes a read
/// snapshot, [`SharedServer::bind`] takes the write lock.
struct Bindings {
    services: HashMap<String, ServiceHandle>,
    class_services: HashMap<ClassId, ServiceHandle>,
}

/// The lock-split shared server state: everything connection workers
/// share, and nothing they don't. Built from a configured
/// [`ServerNode`] with [`SharedServer::from_node`]; gives the node back
/// (services unwrapped, root state untouched) with
/// [`SharedServer::into_node`] once every worker has finished.
pub struct SharedServer {
    registry: SharedRegistry,
    machine: MachineSpec,
    profile: RuntimeProfile,
    env: Option<SimEnv>,
    bindings: TrackedRwLock<Bindings>,
    /// The global at-most-once reply cache (see [`ShardedReplyCache`]).
    pub replies: ShardedReplyCache,
    /// The root node state the server was built from, returned by
    /// [`SharedServer::into_node`]. Connection workers never touch it.
    root: TrackedMutex<Option<NodeState>>,
}

impl std::fmt::Debug for SharedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedServer")
            .field("services", &self.bindings.read().services.len())
            .finish()
    }
}

impl SharedServer {
    /// Splits a configured [`ServerNode`] into shared server state:
    /// each bound service moves behind its own mutex, the reply cache
    /// becomes sharded, and the node state is kept aside for
    /// [`SharedServer::into_node`].
    pub fn from_node(node: ServerNode) -> Self {
        let ServerNode {
            state,
            services,
            class_services,
            replies: _,
            leases: _,
        } = node;
        SharedServer {
            registry: state.heap.registry_handle().clone(),
            machine: state.machine.clone(),
            profile: state.profile,
            env: state.env.clone(),
            bindings: TrackedRwLock::new(
                LockClass::Bindings,
                Bindings {
                    services: services
                        .into_iter()
                        .map(|(name, svc)| (name, service_handle(svc)))
                        .collect(),
                    class_services: class_services
                        .into_iter()
                        .map(|(class, svc)| (class, service_handle(svc)))
                        .collect(),
                },
            ),
            replies: ShardedReplyCache::default(),
            root: TrackedMutex::new(LockClass::NodeHeap, Some(state)),
        }
    }

    /// Binds `service` under `name` for connections accepted *after*
    /// this call (each connection snapshots the bindings at accept).
    pub fn bind(&self, name: impl Into<String>, service: Box<dyn RemoteService>) {
        self.bindings
            .write()
            .services
            .insert(name.into(), service_handle(service));
    }

    /// True if `name` is currently bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.bindings.read().services.contains_key(name)
    }

    /// Builds the private [`ServerNode`] a connection worker serves
    /// with: a fresh [`NodeState`] (own heap, export/stub tables, codec
    /// scratch — no lock needed on any of them) plus locking adapters
    /// for every shared service binding.
    pub fn connection_node(&self) -> ServerNode {
        let mut state = NodeState::new(self.registry.clone(), self.machine.clone());
        state.profile = self.profile;
        state.env = self.env.clone();
        let bindings = self.bindings.read();
        ServerNode {
            state,
            services: bindings
                .services
                .iter()
                .map(|(name, svc)| {
                    (
                        name.clone(),
                        Box::new(SharedService(Arc::clone(svc))) as Box<dyn RemoteService>,
                    )
                })
                .collect(),
            class_services: bindings
                .class_services
                .iter()
                .map(|(&class, svc)| {
                    (
                        class,
                        Box::new(SharedService(Arc::clone(svc))) as Box<dyn RemoteService>,
                    )
                })
                .collect(),
            // Unused by the pooled serve loop (tagged calls go through
            // the shared `replies` shards), present for type uniformity.
            replies: ReplyCache::default(),
            // Each pooled connection has a private heap, so its warm
            // sessions never alias another connection's; a fresh table
            // per connection node is exact.
            leases: crate::warm::new_lease_table(),
        }
    }

    /// True when cold calls may execute on pooled worker threads with
    /// their own per-worker node state. This requires a registry with no
    /// remote-marked classes: a reply containing a remote-marked object
    /// registers an export in whatever node marshals it, and an export
    /// created in a worker's private table would be unreachable from
    /// later calls on the connection's main node (the factory pattern
    /// would hand out dead stubs). Such schemas still pipeline — read-
    /// ahead and out-of-order writes apply — but execute on one thread.
    pub(crate) fn offloadable(&self) -> bool {
        !self.registry.iter().any(|(_, desc)| desc.flags().remote)
    }

    /// Reassembles the [`ServerNode`] this server was built from. Call
    /// only after every connection worker has finished (they hold
    /// references to the service bindings); a binding still referenced
    /// elsewhere is dropped from the returned node.
    pub fn into_node(self) -> ServerNode {
        let SharedServer { bindings, root, .. } = self;
        let Bindings {
            services,
            class_services,
        } = bindings.into_inner();
        let state = root
            .into_inner()
            .expect("into_node consumes the root state once");
        let mut node = ServerNode {
            state,
            services: HashMap::new(),
            class_services: HashMap::new(),
            replies: ReplyCache::default(),
            leases: crate::warm::new_lease_table(),
        };
        for (name, svc) in services {
            match Arc::try_unwrap(svc) {
                Ok(mutex) => {
                    node.services.insert(name, mutex.into_inner());
                }
                Err(_) => debug_assert!(false, "service {name:?} still referenced by a worker"),
            }
        }
        for (class, svc) in class_services {
            match Arc::try_unwrap(svc) {
                Ok(mutex) => {
                    node.class_services.insert(class, mutex.into_inner());
                }
                Err(_) => debug_assert!(false, "class service still referenced by a worker"),
            }
        }
        node
    }
}

/// Serves one connection against the lock-split [`SharedServer`] until
/// the peer disconnects or sends `Shutdown`. This is the pooled
/// replacement for `serve_connection_shared`: the connection's heap,
/// warm caches, and codec scratch are private, so a stalled client —
/// even one blocked mid-call inside a callback — holds nothing another
/// connection waits on except the mutex of the service it is executing
/// in.
///
/// When the transport [splits](Transport::split) into sender and
/// receiver halves, the connection is served **pipelined**: a reader
/// keeps draining tagged requests while calls execute, a writer thread
/// puts each reply on the wire the moment it is ready (out of order, by
/// call id), and — for schemas with no remote-marked classes — a small
/// worker pool executes tagged cold calls concurrently. A client that
/// keeps N calls in flight then pays one round-trip for the batch, not
/// N. Transports that cannot split fall back to the serial loop.
///
/// # Errors
/// Returns transport errors other than orderly disconnect.
pub fn serve_connection_pooled(
    shared: &SharedServer,
    transport: &mut dyn Transport,
) -> Result<(), NrmiError> {
    let mut conn = shared.connection_node();
    let mut warm = crate::warm::WarmCaches::with_leases(conn.leases.clone());
    let result = match transport.split() {
        Some((sender, receiver)) => {
            serve_connection_pipelined(shared, &mut conn, &mut warm, sender, receiver)
        }
        None => serve_connection_pooled_inner(shared, &mut conn, &mut warm, transport),
    };
    // Disconnect releases the connection's cached warm-session graphs;
    // the rest of the private heap (cold-call copies included) goes
    // with the node itself, so a long-lived server no longer
    // accumulates call copies across clients.
    warm.release_all(&mut conn.state.heap);
    result
}

/// Workers executing tagged cold calls concurrently for one pipelined
/// connection. Small on purpose: the win is overlapping execution with
/// the network, not saturating cores per client.
const PIPELINE_WORKERS: usize = 4;

/// Replies (and callback frames) queued for the writer thread before
/// producers block. A client that stops reading fills the socket
/// buffer, then the writer blocks in `send`, then this queue fills,
/// then the reader and workers block — so a slow reader backpressures
/// its own request stream instead of growing server memory without
/// bound (each queued frame can be a full reply graph).
const PIPELINE_REPLY_QUEUE: usize = 64;

/// Tagged calls queued for pipeline workers before the reader blocks.
/// Bounds read-ahead: the reader stops pulling requests off the socket
/// once the workers are this far behind.
const PIPELINE_JOB_QUEUE: usize = 64;

/// A tagged request queued for a pipeline worker.
type PipelineJob = (u64, u64, Frame);

/// Calls a pipeline worker may execute out of order against its own
/// node: cold named-service calls under a copy semantics. Remote-ref
/// calls interleave callbacks with the reply stream, warm calls mutate
/// the connection's cache generations, and object calls address the
/// connection node's export table — all of those stay exclusive on the
/// connection thread.
pub(crate) fn is_pipelineable(frame: &Frame) -> bool {
    match frame {
        Frame::CallRequest { mode, .. } => {
            crate::semantics::wire_mode_bits(*mode) != crate::semantics::MODE_REMOTE_REF
        }
        _ => false,
    }
}

/// The transport handed to pipeline workers: their calls are gated to
/// never need mid-call traffic, so any use is a bug surfaced as an
/// in-band call error rather than a hang or a cross-thread frame steal.
pub(crate) struct NoCallbackTransport;

impl Transport for NoCallbackTransport {
    fn send(&mut self, _frame: &Frame) -> Result<(), TransportError> {
        Err(TransportError::Io(std::io::Error::other(
            "remote-reference callbacks cannot cross a pipelined worker",
        )))
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        Err(TransportError::Io(std::io::Error::other(
            "remote-reference callbacks cannot cross a pipelined worker",
        )))
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> Result<Frame, TransportError> {
        self.recv()
    }
}

/// Exclusive-call I/O bridge for the pipelined loop: sends go through
/// the writer thread (keeping the sender half single-owner), receives
/// pull from the connection's receiver half, and any frame that is not
/// a callback reply is stashed for the main loop to process once the
/// exclusive call finishes — pipelined requests keep arriving mid-call
/// without getting lost or misread as callback answers.
struct ConnIo<'a> {
    writer_tx: mpsc::SyncSender<Frame>,
    receiver: &'a mut dyn TransportReceiver,
    stash: &'a mut VecDeque<Frame>,
}

/// Frames a client's callback server sends back to a mid-call proxy
/// (see [`crate::proxy::handle_callback`]). Everything else arriving
/// during an exclusive call is read-ahead traffic for the main loop.
fn is_callback_reply(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::ValueReply(_)
            | Frame::Ack
            | Frame::CountReply(_)
            | Frame::ClassReply(_)
            | Frame::ErrorReply { .. }
    )
}

impl Transport for ConnIo<'_> {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.writer_tx
            .send(frame.clone())
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        loop {
            let frame = self.receiver.recv()?;
            if is_callback_reply(&frame) {
                return Ok(frame);
            }
            self.stash.push_back(frame);
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let frame = self.receiver.recv_timeout(deadline - now)?;
            if is_callback_reply(&frame) {
                return Ok(frame);
            }
            self.stash.push_back(frame);
        }
    }
}

/// The pipelined serve loop (see [`serve_connection_pooled`]): reader on
/// this thread, replies through a dedicated writer thread, tagged cold
/// calls offloaded to [`PIPELINE_WORKERS`] when the schema allows.
fn serve_connection_pipelined(
    shared: &SharedServer,
    conn: &mut ServerNode,
    warm: &mut crate::warm::WarmCaches,
    mut sender: Box<dyn TransportSender>,
    mut receiver: Box<dyn TransportReceiver>,
) -> Result<(), NrmiError> {
    // Both queues are bounded: a send on a full queue blocks the
    // producer, propagating a stalled client back to the reader instead
    // of buffering replies without limit (see PIPELINE_REPLY_QUEUE).
    let (writer_tx, writer_rx) = mpsc::sync_channel::<Frame>(PIPELINE_REPLY_QUEUE);
    let writer_err: TrackedMutex<Option<TransportError>> =
        TrackedMutex::new(LockClass::SendQueue, None);
    let workers = if shared.offloadable() {
        PIPELINE_WORKERS
    } else {
        0
    };
    let (job_tx, job_rx) = mpsc::sync_channel::<PipelineJob>(PIPELINE_JOB_QUEUE);
    let job_rx = TrackedMutex::new(LockClass::ReactorQueue, job_rx);
    let result = std::thread::scope(|scope| {
        let writer_err = &writer_err;
        scope.spawn(move || {
            // The writer: sole owner of the send half. It blocks for
            // the first reply, then greedily drains whatever else has
            // queued behind it and flushes the whole train with one
            // send_batch — one vectored write instead of a syscall per
            // reply. Flushing on queue-drain (rather than per-reply)
            // batches exactly when the connection is busy and adds no
            // latency when it is not: an empty queue means the one
            // reply goes out immediately.
            let mut train: Vec<Frame> = Vec::with_capacity(PIPELINE_REPLY_QUEUE);
            while let Ok(frame) = writer_rx.recv() {
                train.clear();
                train.push(frame);
                while train.len() < PIPELINE_REPLY_QUEUE {
                    match writer_rx.try_recv() {
                        Ok(next) => train.push(next),
                        Err(_) => break,
                    }
                }
                let refs: Vec<&Frame> = train.iter().collect();
                if let Err(e) = sender.send_batch(&refs) {
                    *writer_err.lock() = Some(e);
                    // Drain without sending: producers must not block
                    // on a dead connection.
                    while writer_rx.recv().is_ok() {}
                    return;
                }
            }
        });
        for _ in 0..workers {
            let worker_writer = writer_tx.clone();
            let job_rx = &job_rx;
            scope.spawn(move || {
                // Per-worker private node state, the same isolation a
                // connection gets — workers of one connection contend
                // only on service mutexes and reply-cache shards.
                let mut conn = shared.connection_node();
                let mut warm = crate::warm::WarmCaches::with_leases(conn.leases.clone());
                let mut io = NoCallbackTransport;
                loop {
                    let job = job_rx.lock().recv();
                    let Ok((nonce, seq, frame)) = job else {
                        break;
                    };
                    let reply =
                        crate::protocol::dispatch_tagged(&mut conn, &mut warm, &mut io, frame);
                    shared.replies.store(nonce, seq, &reply);
                    let _ = worker_writer.send(Frame::Tagged {
                        nonce,
                        seq,
                        frame: Box::new(reply),
                    });
                }
                warm.release_all(&mut conn.state.heap);
            });
        }
        let result = pipelined_recv_loop(
            shared,
            conn,
            warm,
            receiver.as_mut(),
            &writer_tx,
            &job_tx,
            workers > 0,
        );
        // Reader done: closing the job queue drains the workers (they
        // finish queued calls and push the replies), and closing our
        // writer handle lets the writer exit once the last worker drops
        // its clone. The scope joins everything.
        drop(job_tx);
        drop(writer_tx);
        result
    });
    match result {
        // An error on the writer's half is the connection going down
        // mid-reply; a plain disconnect there is as orderly as one on
        // the read side.
        Ok(()) => match writer_err.into_inner() {
            Some(TransportError::Disconnected) | None => Ok(()),
            Some(e) => Err(e.into()),
        },
        err => err,
    }
}

/// Reader side of the pipelined loop: classify each frame, answer
/// duplicates from the reply cache, queue pipelineable fresh calls to
/// the workers, and execute everything else exclusively in arrival
/// order on this thread.
fn pipelined_recv_loop(
    shared: &SharedServer,
    conn: &mut ServerNode,
    warm: &mut crate::warm::WarmCaches,
    receiver: &mut dyn TransportReceiver,
    writer_tx: &mpsc::SyncSender<Frame>,
    job_tx: &mpsc::SyncSender<PipelineJob>,
    offload: bool,
) -> Result<(), NrmiError> {
    // Frames that arrived while an exclusive call was waiting on its
    // callback replies; processed before reading the socket again.
    let mut stash: VecDeque<Frame> = VecDeque::new();
    // A send into the writer channel only fails after the writer hit a
    // connection error; `writer_err` carries the cause, so stop cleanly.
    macro_rules! write_out {
        ($frame:expr) => {
            if writer_tx.send($frame).is_err() {
                return Ok(());
            }
        };
    }
    loop {
        let frame = match stash.pop_front() {
            Some(frame) => frame,
            None => match receiver.recv() {
                Ok(frame) => frame,
                Err(TransportError::Disconnected) => return Ok(()),
                Err(e) => return Err(e.into()),
            },
        };
        match frame {
            Frame::Shutdown => return Ok(()),
            Frame::Tagged { nonce, seq, frame } => {
                // Decide-mark-executing on the nonce's shard, execute
                // with no shard lock held, store. A duplicate arriving
                // mid-execution — on this connection or another — reads
                // InProgress and is dropped unanswered; the client's
                // next retransmission replays the stored reply.
                match shared.replies.begin(nonce, seq) {
                    ReplyDecision::Replay(cached) => write_out!(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(cached),
                    }),
                    ReplyDecision::Evicted => write_out!(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(evicted_reply()),
                    }),
                    ReplyDecision::InProgress => {}
                    ReplyDecision::Fresh if offload && is_pipelineable(&frame) => {
                        // Cannot fail while this loop holds `job_tx`.
                        let _ = job_tx.send((nonce, seq, *frame));
                    }
                    ReplyDecision::Fresh => {
                        let reply = {
                            let mut io = ConnIo {
                                writer_tx: writer_tx.clone(),
                                receiver,
                                stash: &mut stash,
                            };
                            crate::protocol::dispatch_tagged(conn, warm, &mut io, *frame)
                        };
                        shared.replies.store(nonce, seq, &reply);
                        write_out!(Frame::Tagged {
                            nonce,
                            seq,
                            frame: Box::new(reply),
                        });
                    }
                }
            }
            // Untagged traffic is executed exclusively, in arrival
            // order, exactly as the serial loop would — only the reply
            // leaves through the writer. Warm-protocol frames share one
            // dispatcher with the other serve loops; it returns pushed
            // `CacheStale` invalidations (for sibling sessions the call
            // staled) ahead of the call's own reply, already ordered.
            frame @ (Frame::CallRequestWarm { .. } | Frame::CacheEvict { .. }) => {
                let out = {
                    let mut io = ConnIo {
                        writer_tx: writer_tx.clone(),
                        receiver,
                        stash: &mut stash,
                    };
                    crate::warm::dispatch_warm_frame(conn, warm, &mut io, frame, true)
                };
                for reply in out {
                    write_out!(reply);
                }
            }
            Frame::Lookup { name } => {
                write_out!(Frame::LookupReply {
                    found: shared.is_bound(&name),
                });
            }
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                let reply = {
                    let mut io = ConnIo {
                        writer_tx: writer_tx.clone(),
                        receiver,
                        stash: &mut stash,
                    };
                    crate::protocol::server_handle_named_call(
                        conn, &mut io, &service, &method, mode, &payload,
                    )
                };
                write_out!(reply);
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                let reply = {
                    let mut io = ConnIo {
                        writer_tx: writer_tx.clone(),
                        receiver,
                        stash: &mut stash,
                    };
                    crate::protocol::server_handle_object_call(
                        conn, &mut io, key, &method, mode, &payload,
                    )
                };
                write_out!(reply);
            }
            Frame::DgcClean { key } => {
                conn.state.exports.clean(key);
            }
            other => {
                return Err(NrmiError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}

/// Serves a connection the reactor escalated off its readiness loop:
/// the stashed frames it read ahead of the escalation trigger are
/// processed first (in arrival order, exclusively), then the transport
/// — restored to blocking mode by the reactor — continues under the
/// normal pooled discipline (pipelined when it splits). The connection
/// node and warm caches are created here, lazily: reactor-owned
/// connections carry no node state until they need exclusive traffic.
pub(crate) fn serve_connection_escalated(
    shared: &SharedServer,
    transport: &mut dyn Transport,
    stash: Vec<Frame>,
) -> Result<(), NrmiError> {
    let mut conn = shared.connection_node();
    let mut warm = crate::warm::WarmCaches::with_leases(conn.leases.clone());
    let mut result = Ok(());
    let mut stopped = false;
    for frame in stash {
        match handle_exclusive_frame(shared, &mut conn, &mut warm, transport, frame) {
            Ok(true) => {}
            Ok(false) => {
                stopped = true;
                break;
            }
            Err(e) => {
                result = Err(e);
                stopped = true;
                break;
            }
        }
    }
    if !stopped {
        result = match transport.split() {
            Some((sender, receiver)) => {
                serve_connection_pipelined(shared, &mut conn, &mut warm, sender, receiver)
            }
            None => serve_connection_pooled_inner(shared, &mut conn, &mut warm, transport),
        };
    }
    warm.release_all(&mut conn.state.heap);
    result
}

/// Handles one frame exclusively on the connection thread — the shared
/// body of the serial pooled loop and the escalated stash replay.
/// Returns `Ok(false)` when the frame ends the connection (`Shutdown`),
/// `Ok(true)` to continue.
fn handle_exclusive_frame(
    shared: &SharedServer,
    conn: &mut ServerNode,
    warm: &mut crate::warm::WarmCaches,
    transport: &mut dyn Transport,
    frame: Frame,
) -> Result<bool, NrmiError> {
    {
        match frame {
            Frame::Shutdown => return Ok(false),
            Frame::Tagged { nonce, seq, frame } => {
                // Decide-mark-executing on the nonce's shard, execute
                // with no shard lock held, store. A duplicate arriving
                // on another connection mid-execution reads InProgress
                // and is dropped unanswered — the client's next
                // retransmission replays the stored reply.
                let reply = match shared.replies.begin(nonce, seq) {
                    ReplyDecision::Replay(cached) => Some(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(cached),
                    }),
                    ReplyDecision::Evicted => Some(Frame::ReplyCached {
                        nonce,
                        seq,
                        frame: Box::new(evicted_reply()),
                    }),
                    ReplyDecision::InProgress => None,
                    ReplyDecision::Fresh => {
                        let reply = crate::protocol::dispatch_tagged(conn, warm, transport, *frame);
                        shared.replies.store(nonce, seq, &reply);
                        Some(Frame::Tagged {
                            nonce,
                            seq,
                            frame: Box::new(reply),
                        })
                    }
                };
                if let Some(reply) = reply {
                    transport.send(&reply)?;
                }
            }
            // Everything untagged touches only per-connection state (and
            // the callee's service mutex) — identical to the exclusive
            // single-connection loop. The warm dispatcher returns pushed
            // `CacheStale` invalidations ahead of the call's own reply.
            frame @ (Frame::CallRequestWarm { .. } | Frame::CacheEvict { .. }) => {
                let out = crate::warm::dispatch_warm_frame(conn, warm, transport, frame, true);
                for reply in out {
                    transport.send(&reply)?;
                }
            }
            Frame::Lookup { name } => {
                let found = shared.is_bound(&name);
                transport.send(&Frame::LookupReply { found })?;
            }
            Frame::CallRequest {
                service,
                method,
                mode,
                payload,
            } => {
                let reply = crate::protocol::server_handle_named_call(
                    conn, transport, &service, &method, mode, &payload,
                );
                transport.send(&reply)?;
            }
            Frame::CallObject {
                key,
                method,
                mode,
                payload,
            } => {
                let reply = crate::protocol::server_handle_object_call(
                    conn, transport, key, &method, mode, &payload,
                );
                transport.send(&reply)?;
            }
            Frame::DgcClean { key } => {
                conn.state.exports.clean(key);
            }
            other => {
                return Err(NrmiError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
    Ok(true)
}

fn serve_connection_pooled_inner(
    shared: &SharedServer,
    conn: &mut ServerNode,
    warm: &mut crate::warm::WarmCaches,
    transport: &mut dyn Transport,
) -> Result<(), NrmiError> {
    loop {
        let frame = match transport.recv() {
            Ok(frame) => frame,
            Err(TransportError::Disconnected) => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        if !handle_exclusive_frame(shared, conn, warm, transport, frame)? {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(tag: u8) -> Frame {
        Frame::CallReply {
            payload: vec![tag; 16],
        }
    }

    #[test]
    fn sharded_len_counts_without_locking_shards() {
        let cache = ShardedReplyCache::with_limits(64 << 20, 1 << 16);
        assert!(cache.is_empty());
        cache.store(1, 0, &reply(1));
        cache.store(1, 1, &reply(2));
        cache.store(2, 0, &reply(3));
        assert_eq!(cache.len(), 3);
        // Idempotent re-store does not double count.
        cache.store(1, 0, &reply(1));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn sharded_len_tracks_evictions() {
        // Total budget 16 shards × 1 byte: every store immediately
        // evicts down to one entry per shard, so the counter must move
        // by net change, not by insertions.
        let cache = ShardedReplyCache::with_limits(16, 16);
        for nonce in 0..64u64 {
            cache.store(nonce, 0, &reply(nonce as u8));
        }
        let counted = cache.len();
        let actual: usize = cache.shards.iter().map(|s| s.lock().len()).sum();
        assert_eq!(counted, actual, "atomic count must match shard contents");
        assert!(counted <= 16, "byte caps keep at most one entry per shard");
    }

    #[test]
    fn sharded_len_is_consistent_under_concurrent_stores() {
        let cache = ShardedReplyCache::with_limits(64 << 20, 1 << 16);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        // Distinct (nonce, seq) per store across threads.
                        cache.store(t * 1000 + i, i, &reply(t as u8));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 800);
        let actual: usize = cache.shards.iter().map(|s| s.lock().len()).sum();
        assert_eq!(cache.len(), actual);
        assert!(!cache.is_empty());
    }

    /// A client that floods calls but never reads replies must not grow
    /// server memory without bound: the bounded reply and job queues
    /// propagate the stall back to the reader, which stops consuming
    /// frames once `PIPELINE_JOB_QUEUE + PIPELINE_REPLY_QUEUE` plus the
    /// threads' in-hand frames (including the writer's drained train,
    /// at most `PIPELINE_REPLY_QUEUE` more) are outstanding.
    #[test]
    fn slow_reader_bounds_pipelined_consumption() {
        use std::sync::atomic::AtomicBool;

        /// Write half modeling a client that never drains replies: the
        /// first send parks on a gate; once the gate opens, every send
        /// reports the connection gone so the loop unwinds.
        struct StalledSender {
            gate: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
        }
        impl TransportSender for StalledSender {
            fn send(&mut self, _frame: &Frame) -> Result<(), TransportError> {
                let (lock, cvar) = &*self.gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
                Err(TransportError::Disconnected)
            }
        }

        /// Read half with an infinite supply of fresh tagged calls,
        /// counting how many the server actually consumed.
        struct FloodReceiver {
            stop: Arc<AtomicBool>,
            consumed: Arc<AtomicUsize>,
            seq: u64,
        }
        impl TransportReceiver for FloodReceiver {
            fn recv(&mut self) -> Result<Frame, TransportError> {
                if self.stop.load(Ordering::SeqCst) {
                    return Err(TransportError::Disconnected);
                }
                self.seq += 1;
                self.consumed.fetch_add(1, Ordering::SeqCst);
                Ok(Frame::Tagged {
                    nonce: 7,
                    seq: self.seq,
                    // An unknown service still runs the full
                    // begin/execute/store/reply path (as an error
                    // reply), which is all backpressure sees.
                    frame: Box::new(Frame::CallRequest {
                        service: "no-such-service".into(),
                        method: "m".into(),
                        mode: 0,
                        payload: Vec::new(),
                    }),
                })
            }
            fn recv_timeout(&mut self, _timeout: Duration) -> Result<Frame, TransportError> {
                self.recv()
            }
        }

        let registry = nrmi_heap::ClassRegistry::new().snapshot();
        let shared = Arc::new(SharedServer::from_node(ServerNode::new(
            registry,
            MachineSpec::fast(),
        )));
        let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let consumed = Arc::new(AtomicUsize::new(0));

        let server_thread = {
            let shared = Arc::clone(&shared);
            let sender = Box::new(StalledSender {
                gate: Arc::clone(&gate),
            });
            let receiver = Box::new(FloodReceiver {
                stop: Arc::clone(&stop),
                consumed: Arc::clone(&consumed),
                seq: 0,
            });
            std::thread::spawn(move || {
                let mut conn = shared.connection_node();
                let mut warm = crate::warm::WarmCaches::new();
                serve_connection_pipelined(&shared, &mut conn, &mut warm, sender, receiver)
            })
        };

        // Let the flood run to its stall. Consumption must plateau: two
        // samples far apart agree, and the total stays within the sum
        // of the queue bounds plus one frame in each thread's hands —
        // plus one full train (up to PIPELINE_REPLY_QUEUE frames) the
        // writer greedily drained before blocking in send_batch.
        let budget = PIPELINE_JOB_QUEUE + 2 * PIPELINE_REPLY_QUEUE + PIPELINE_WORKERS + 8;
        std::thread::sleep(Duration::from_millis(300));
        let sample1 = consumed.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(300));
        let sample2 = consumed.load(Ordering::SeqCst);
        assert!(
            sample2 <= budget,
            "slow reader let the server consume {sample2} frames (budget {budget})"
        );
        assert_eq!(
            sample1, sample2,
            "consumption must plateau once the bounded queues fill"
        );

        // Unwind: stop the flood, then open the gate — the writer sees
        // Disconnected, drains the reply queue, and everyone exits.
        stop.store(true, Ordering::SeqCst);
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        server_thread
            .join()
            .expect("serve thread")
            .expect("clean disconnect");
    }
}
