//! Property-based tests of warm-session coherence on a shared graph.
//!
//! Two families:
//!
//! * **warm ≡ cold** — any interleaving of calls and client-side graph
//!   edits produces, through the warm delta protocol, exactly the values
//!   and final graph that plain cold copy-restore calls produce.
//! * **writers vs. readers** — a reader's warm view of a shared server
//!   graph, perturbed by an interleaved writer session and by direct
//!   out-of-band writes, always matches the coherence model: pushed
//!   patches repair idle sessions, `CacheStale` replies repair in-flight
//!   ones, and the positional merge lets an unshipped client write win.
//!   Revalidation versions are monotone throughout.
//!
//! Plus directed edge cases the random walks would rarely hit: a
//! synchronized slot freed and recycled out-of-band must degrade to
//! `CacheMiss` + reseed (the allocation stamp, not the version number,
//! catches it), never a repair patch shipping a stranger object.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use nrmi_core::{
    client_evict_warm, client_invoke_warm_with_stats, dispatch_warm_frame, ClientNode, FnService,
    NrmiError, RemoteService, ServerNode, Session, WarmCaches,
};
use nrmi_heap::graph::isomorphic;
use nrmi_heap::{ClassRegistry, Heap, HeapAccess, ObjId, SharedRegistry, Value};
use nrmi_transport::{Frame, MachineSpec, Transport, TransportError};

// ---------------------------------------------------------------------------
// warm ≡ cold
// ---------------------------------------------------------------------------

fn node_registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    reg.define("Node")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    reg.snapshot()
}

/// The deterministic service: DFS, rewrite each `data` to `3·data + 1`,
/// return the sum of the old values.
fn walker() -> Box<dyn RemoteService> {
    Box::new(FnService::new(|_m, args, heap| {
        let root = args[0]
            .as_ref_id()
            .ok_or_else(|| NrmiError::app("want a root reference"))?;
        let mut stack = vec![root];
        let mut sum: i64 = 0;
        while let Some(id) = stack.pop() {
            let d = heap
                .get_field(id, "data")?
                .as_int()
                .ok_or_else(|| NrmiError::app("data is not an int"))?;
            sum += i64::from(d);
            heap.set_field(id, "data", Value::Int(d.wrapping_mul(3).wrapping_add(1)))?;
            if let Some(l) = heap.get_ref(id, "left")? {
                stack.push(l);
            }
            if let Some(r) = heap.get_ref(id, "right")? {
                stack.push(r);
            }
        }
        Ok(Value::Long(sum))
    }))
}

/// A randomly shaped (≤ 4 node) tree seed.
#[derive(Clone, Debug)]
struct TreeSpec {
    root: i32,
    left: Option<i32>,
    right: Option<i32>,
    left_left: Option<i32>,
}

fn tree_strategy() -> impl Strategy<Value = TreeSpec> {
    (
        -1000i32..1000,
        proptest::option::of(-1000i32..1000),
        proptest::option::of(-1000i32..1000),
        proptest::option::of(-1000i32..1000),
    )
        .prop_map(|(root, left, right, left_left)| TreeSpec {
            root,
            left,
            right,
            left_left,
        })
}

fn build_tree(heap: &mut Heap, registry: &SharedRegistry, spec: &TreeSpec) -> ObjId {
    let class = registry.by_name("Node").expect("registered");
    let alloc_leaf = |heap: &mut Heap, d: i32| {
        heap.alloc(class, vec![Value::Int(d), Value::Null, Value::Null])
            .expect("alloc")
    };
    let left = spec.left.map(|d| {
        let node = alloc_leaf(heap, d);
        if let Some(ll) = spec.left_left {
            let grand = alloc_leaf(heap, ll);
            heap.set_field(node, "left", Value::Ref(grand)).expect("live");
        }
        node
    });
    let right = spec.right.map(|d| alloc_leaf(heap, d));
    heap.alloc(
        class,
        vec![
            Value::Int(spec.root),
            left.map_or(Value::Null, Value::Ref),
            right.map_or(Value::Null, Value::Ref),
        ],
    )
    .expect("alloc")
}

/// One client-side edit between calls, applied identically to the warm
/// and the cold session's graphs.
#[derive(Clone, Debug)]
enum Edit {
    Call,
    MutateRoot(i32),
    MutateLeft(i32),
    PruneLeft,
    GraftLeft(i32),
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        2 => Just(Edit::Call),
        1 => (-1000i32..1000).prop_map(Edit::MutateRoot),
        1 => (-1000i32..1000).prop_map(Edit::MutateLeft),
        1 => Just(Edit::PruneLeft),
        1 => (-1000i32..1000).prop_map(Edit::GraftLeft),
    ]
}

/// Frees `id` and everything reachable from it.
fn free_subtree(heap: &mut Heap, id: ObjId) {
    let mut stack = vec![id];
    let mut order = Vec::new();
    while let Some(id) = stack.pop() {
        order.push(id);
        for field in ["left", "right"] {
            if let Ok(Some(child)) = heap.get_ref(id, field) {
                stack.push(child);
            }
        }
    }
    for id in order {
        let _ = heap.free(id);
    }
}

fn apply_edit(heap: &mut Heap, registry: &SharedRegistry, root: ObjId, edit: &Edit) {
    match edit {
        Edit::Call => unreachable!("calls are handled by the driver"),
        Edit::MutateRoot(d) => {
            heap.set_field(root, "data", Value::Int(*d)).expect("live");
        }
        Edit::MutateLeft(d) => {
            if let Ok(Some(left)) = heap.get_ref(root, "left") {
                heap.set_field(left, "data", Value::Int(*d)).expect("live");
            }
        }
        Edit::PruneLeft => {
            if let Ok(Some(left)) = heap.get_ref(root, "left") {
                heap.set_field(root, "left", Value::Null).expect("live");
                free_subtree(heap, left);
            }
        }
        Edit::GraftLeft(d) => {
            let class = registry.by_name("Node").expect("registered");
            let old = heap.get_ref(root, "left").expect("live");
            let node = heap
                .alloc(
                    class,
                    vec![
                        Value::Int(*d),
                        old.map_or(Value::Null, Value::Ref),
                        Value::Null,
                    ],
                )
                .expect("alloc");
            heap.set_field(root, "left", Value::Ref(node)).expect("live");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of warm calls and client-side edits over a
    /// random graph returns the same values — and converges to the same
    /// graph — as cold copy-restore calls running the identical
    /// sequence.
    #[test]
    fn warm_calls_match_cold_calls_on_random_graphs(
        spec in tree_strategy(),
        edits in proptest::collection::vec(edit_strategy(), 1..14),
    ) {
        let registry = node_registry();
        let mut warm = Session::builder(registry.clone())
            .serve("svc", walker())
            .build();
        let mut cold = Session::builder(registry.clone())
            .serve("svc", walker())
            .build();
        let warm_root = build_tree(warm.heap(), &registry, &spec);
        let cold_root = build_tree(cold.heap(), &registry, &spec);

        for edit in &edits {
            if let Edit::Call = edit {
                let w = warm.call_warm("svc", "run", &[Value::Ref(warm_root)]).expect("warm");
                let c = cold.call("svc", "run", &[Value::Ref(cold_root)]).expect("cold");
                prop_assert_eq!(&w, &c, "return values diverged");
            } else {
                apply_edit(warm.heap(), &registry, warm_root, edit);
                apply_edit(cold.heap(), &registry, cold_root, edit);
            }
            let same = isomorphic(warm.heap(), warm_root, cold.heap(), cold_root)
                .expect("comparable");
            prop_assert!(same, "graphs diverged after {:?}", edit);
        }
    }
}

// ---------------------------------------------------------------------------
// Writers vs. readers on one shared server graph
// ---------------------------------------------------------------------------

/// Stands in for the (unused) callback channel of the dispatch.
struct Sink;

impl Transport for Sink {
    fn send(&mut self, _frame: &Frame) -> nrmi_transport::Result<()> {
        Ok(())
    }
    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        Err(TransportError::Disconnected)
    }
    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        Err(TransportError::Disconnected)
    }
}

/// Client and server joined in process with pushes enabled, exactly the
/// frame order the serve loops produce.
struct Link {
    server: ServerNode,
    caches: WarmCaches,
    replies: VecDeque<Frame>,
}

impl Transport for Link {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        let out = dispatch_warm_frame(
            &mut self.server,
            &mut self.caches,
            &mut Sink,
            frame.clone(),
            true,
        );
        self.replies.extend(out);
        Ok(())
    }
    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        self.replies.pop_front().ok_or(TransportError::Disconnected)
    }
    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }
}

/// The reader/writer world: service `read` returns its root's `data`
/// and leaks the server-side root id; service `write` adds `args[1]`…
/// no — adds a fixed amount routed through the shared handle. The test
/// keeps the handle to clear it when the reader's session goes away.
struct RwWorld {
    client: ClientNode,
    link: Link,
    read_root: ObjId,
    write_root: ObjId,
    leaked: Arc<Mutex<Option<ObjId>>>,
    poke_amount: Arc<Mutex<i32>>,
}

fn rw_world(initial: i32) -> RwWorld {
    let mut reg = ClassRegistry::new();
    let cell = reg.define("Cell").field_int("data").restorable().register();
    let registry = reg.snapshot();

    let leaked: Arc<Mutex<Option<ObjId>>> = Arc::new(Mutex::new(None));
    let poke_amount: Arc<Mutex<i32>> = Arc::new(Mutex::new(0));
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    {
        let leaked = Arc::clone(&leaked);
        server.bind(
            "read",
            Box::new(FnService::new(move |_m, args, heap| {
                let root = args[0]
                    .as_ref_id()
                    .ok_or_else(|| NrmiError::app("want a ref"))?;
                *leaked.lock().expect("poisoned") = Some(root);
                Ok(heap.get_field(root, "data")?)
            })),
        );
    }
    {
        let leaked = Arc::clone(&leaked);
        let poke_amount = Arc::clone(&poke_amount);
        server.bind(
            "write",
            Box::new(FnService::new(move |_m, _args, heap| {
                if let Some(id) = *leaked.lock().expect("poisoned") {
                    let k = *poke_amount.lock().expect("poisoned");
                    let d = heap.get_field(id, "data")?.as_int().unwrap_or(0);
                    heap.set_field(id, "data", Value::Int(d.wrapping_add(k)))?;
                }
                Ok(Value::Null)
            })),
        );
    }
    let caches = WarmCaches::with_leases(Arc::clone(&server.leases));
    let mut client = ClientNode::new(registry, MachineSpec::fast());
    let read_root = client
        .state
        .heap
        .alloc(cell, vec![Value::Int(initial)])
        .expect("alloc");
    let write_root = client
        .state
        .heap
        .alloc(cell, vec![Value::Int(0)])
        .expect("alloc");
    RwWorld {
        client,
        link: Link {
            server,
            caches,
            replies: VecDeque::new(),
        },
        read_root,
        write_root,
        leaked,
        poke_amount,
    }
}

/// One step of the reader/writer interleaving.
#[derive(Clone, Debug)]
enum RwAction {
    /// The reader's warm call: seeds, repairs, or runs in step.
    Read,
    /// The writer session's warm call: pokes the reader's server graph,
    /// pushing a repair patch at the reader in the same exchange.
    WriteThroughPeer(i32),
    /// A direct out-of-band server-side write — no push travels; the
    /// reader discovers it as a `CacheStale` reply on its next call.
    WriteDirect(i32),
    /// The reader edits its own root locally (unshipped write: the
    /// positional merge must let it win over any server-side write).
    MutateLocal(i32),
    /// The reader retires its session; the next read reseeds.
    Evict,
}

fn rw_strategy() -> impl Strategy<Value = RwAction> {
    prop_oneof![
        3 => Just(RwAction::Read),
        2 => (1i32..100).prop_map(RwAction::WriteThroughPeer),
        2 => (1i32..100).prop_map(RwAction::WriteDirect),
        2 => (1i32..100).prop_map(RwAction::MutateLocal),
        1 => Just(RwAction::Evict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The reader's observed values and client graph always match the
    /// coherence model: no stale read survives a call, no unshipped
    /// local write is ever clobbered by a repair, and revalidation
    /// versions are monotone.
    #[test]
    fn reader_view_matches_coherence_model_under_interleaved_writes(
        initial in -1000i32..1000,
        actions in proptest::collection::vec(rw_strategy(), 1..20),
    ) {
        let mut w = rw_world(initial);

        // The model: what the reader's client and the server hold.
        let mut client_val = initial;
        let mut server_val = initial; // meaningful only while `live`
        let mut live = false;
        let mut wrote = false;
        let mut last_stale_version = 0u64;

        for action in &actions {
            match action {
                RwAction::Read => {
                    let (got, _stats) = client_invoke_warm_with_stats(
                        &mut w.client,
                        &mut w.link,
                        "read",
                        "run",
                        &[Value::Ref(w.read_root)],
                    )
                    .expect("read");
                    if !live {
                        server_val = client_val; // seed ships the client graph
                        live = true;
                        last_stale_version = 0;
                    } else if wrote {
                        server_val = client_val; // unshipped write wins
                    } else {
                        client_val = server_val; // repair (if any) adopted
                    }
                    wrote = false;
                    prop_assert_eq!(got, Value::Int(server_val), "stale read");
                }
                RwAction::WriteThroughPeer(k) => {
                    *w.poke_amount.lock().expect("poisoned") = *k;
                    client_invoke_warm_with_stats(
                        &mut w.client,
                        &mut w.link,
                        "write",
                        "run",
                        &[Value::Ref(w.write_root)],
                    )
                    .expect("write");
                    if live {
                        server_val = server_val.wrapping_add(*k);
                        if !wrote {
                            // The push repaired the idle reader inline.
                            client_val = server_val;
                        }
                    }
                }
                RwAction::WriteDirect(k) => {
                    if live {
                        if let Some(cache_id) = w.client.warm.cache_id("read") {
                            if let Some(sync) = w.link.caches.sync_ids_of(cache_id) {
                                let id = sync[0];
                                let d = w
                                    .link
                                    .server
                                    .state
                                    .heap
                                    .get_field(id, "data")
                                    .expect("live")
                                    .as_int()
                                    .expect("int");
                                w.link
                                    .server
                                    .state
                                    .heap
                                    .set_field(id, "data", Value::Int(d.wrapping_add(*k)))
                                    .expect("live");
                                server_val = server_val.wrapping_add(*k);
                            }
                        }
                    }
                }
                RwAction::MutateLocal(k) => {
                    client_val = client_val.wrapping_add(*k);
                    w.client
                        .state
                        .heap
                        .set_field(w.read_root, "data", Value::Int(client_val))
                        .expect("live");
                    wrote = true;
                }
                RwAction::Evict => {
                    client_evict_warm(&mut w.client, &mut w.link, "read").expect("evict");
                    *w.leaked.lock().expect("poisoned") = None;
                    live = false;
                }
            }

            // The reader's client graph never lies about its own state.
            prop_assert_eq!(
                w.client.state.heap.get_field(w.read_root, "data").expect("live"),
                Value::Int(client_val),
                "client view diverged from the model after {:?}", action
            );
            // Revalidation versions are monotone within a session.
            if live {
                if let Some(v) = w.client.warm.stale_version("read") {
                    prop_assert!(
                        v >= last_stale_version,
                        "stale_version went backwards: {} after {}",
                        v,
                        last_stale_version
                    );
                    last_stale_version = v;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Directed edge cases: recycled slots and version monotonicity
// ---------------------------------------------------------------------------

/// A synchronized object freed and its slot recycled out-of-band must
/// degrade to `CacheMiss` + reseed: the version number alone cannot tell
/// recycling from mutation, the allocation stamp can — and a repair
/// patch here would ship a stranger object under the session's id.
#[test]
fn recycled_slot_degrades_to_miss_and_reseed() {
    let mut w = rw_world(5);
    let (v, _) = client_invoke_warm_with_stats(
        &mut w.client,
        &mut w.link,
        "read",
        "run",
        &[Value::Ref(w.read_root)],
    )
    .expect("seed");
    assert_eq!(v, Value::Int(5));
    let first_id = w.client.warm.cache_id("read").expect("warm");

    // Free the synchronized server-side root and recycle its slot with
    // an innocent object of the same class.
    let server_root = w.link.caches.sync_ids_of(first_id).expect("live")[0];
    let class = w
        .link
        .server
        .state
        .heap
        .class_if_live(server_root)
        .expect("live");
    w.link.server.state.heap.free(server_root).expect("free");
    let recycled = w
        .link
        .server
        .state
        .heap
        .alloc(class, vec![Value::Int(777)])
        .expect("alloc");
    assert_eq!(recycled, server_root, "slot recycled in place");
    // The model's registry hygiene: the leaked id no longer belongs to
    // the session (a real out-of-band writer would have no path to it).
    *w.leaked.lock().expect("poisoned") = None;

    // The next read must reseed under a fresh id — and must NOT have
    // absorbed any repair patch built from the stranger object.
    let (v2, s2) = client_invoke_warm_with_stats(
        &mut w.client,
        &mut w.link,
        "read",
        "run",
        &[Value::Ref(w.read_root)],
    )
    .expect("reseed");
    assert_eq!(v2, Value::Int(5), "reseed shipped the client's graph");
    assert_eq!(s2.stale_patches, 0, "a recycled slot is never patched");
    let second_id = w.client.warm.cache_id("read").expect("warm");
    assert_ne!(first_id, second_id, "session reseeded under a fresh id");
    assert_eq!(
        w.client.warm.generation("read"),
        Some(1),
        "fresh session at generation 1"
    );
}

/// Back-to-back out-of-band writes each cost exactly one `CacheStale`
/// repair, with strictly increasing revalidation versions.
#[test]
fn stale_versions_increase_monotonically_across_repairs() {
    let mut w = rw_world(10);
    client_invoke_warm_with_stats(
        &mut w.client,
        &mut w.link,
        "read",
        "run",
        &[Value::Ref(w.read_root)],
    )
    .expect("seed");
    let cache_id = w.client.warm.cache_id("read").expect("warm");

    let mut seen = Vec::new();
    for round in 0..3 {
        let server_root = w.link.caches.sync_ids_of(cache_id).expect("live")[0];
        w.link
            .server
            .state
            .heap
            .set_field(server_root, "data", Value::Int(100 + round))
            .expect("live");
        let (v, s) = client_invoke_warm_with_stats(
            &mut w.client,
            &mut w.link,
            "read",
            "run",
            &[Value::Ref(w.read_root)],
        )
        .expect("read");
        assert_eq!(v, Value::Int(100 + round), "repaired view");
        assert_eq!(s.stale_patches, 1, "exactly one repair per write");
        seen.push(w.client.warm.stale_version("read").expect("warm"));
    }
    assert!(
        seen.windows(2).all(|w| w[0] < w[1]),
        "versions must strictly increase: {seen:?}"
    );
}
