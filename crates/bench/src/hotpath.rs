//! Hot-path allocation ablation: allocator traffic per call, before and
//! after the zero-copy pipeline work.
//!
//! §5.2.4 of the paper argues NRMI's marshalling traversal can run "at
//! cost comparable to plain call-by-copy"; that only holds if the
//! steady-state call path stops re-allocating its working set on every
//! invocation. This ablation drives the same read-only workload as
//! [`crate::warm`] (a seeded binary tree passed to a summing service)
//! through the cold protocol and the warm (request-delta) protocol, and
//! — with [`crate::alloc_count::CountingAlloc`] installed — reports
//! *allocation events per call* and *bytes through the allocator per
//! call* for each.
//!
//! The numbers in [`BASELINE`] were captured at the commit immediately
//! before the dense-position-map / pooled-codec / buffer-reuse work, with
//! the identical harness; `tables -- hotpath` re-measures the current
//! tree and emits `BENCH_hotpath.json` with both, so the perf trajectory
//! stays machine-readable from this PR onward.

use std::time::Instant;

use nrmi_core::{CallOptions, FnService, NrmiError, RemoteService, Session};
use nrmi_heap::{HeapAccess, Value};

use crate::alloc_count;
use crate::tables::SEED;
use crate::workload::{bench_classes, build_workload, walk_tree, Scenario};

/// Tree size the ablation runs on (the paper's largest benchmark size).
pub const SIZE: usize = 1024;

/// Measured calls per mode (after warmup; averages are per call).
pub const CALLS: usize = 32;

/// Warmup calls before counters are sampled (fills buffer pools, session
/// caches, and the warm seed, so the measurement sees steady state).
pub const WARMUP: usize = 4;

/// Per-call averages for one protocol mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotpathPoint {
    /// Allocation events (alloc/realloc) per call, both ends combined.
    pub allocs_per_call: u64,
    /// Bytes requested from the allocator per call.
    pub alloc_bytes_per_call: u64,
    /// Request payload bytes per call.
    pub request_bytes_per_call: u64,
    /// Wall-clock nanoseconds per call (indicative, single run).
    pub ns_per_call: u64,
}

/// The ablation result: cold calls vs steady-state warm calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotpathReport {
    /// Tree size measured.
    pub size: usize,
    /// Calls averaged over.
    pub calls: usize,
    /// Full copy-restore call (graph re-marshalled every call).
    pub cold: HotpathPoint,
    /// Steady-state warm call, δ = 0 (cache seeded, nothing dirty).
    pub warm_steady: HotpathPoint,
}

/// Allocator traffic at the pre-optimization commit (same harness, same
/// workload, `CountingAlloc` installed). Timing fields are indicative
/// only; the alloc counts are deterministic for this workload.
pub const BASELINE: HotpathReport = HotpathReport {
    size: SIZE,
    calls: CALLS,
    cold: HotpathPoint {
        allocs_per_call: 6625,
        alloc_bytes_per_call: 897_103,
        request_bytes_per_call: 8125,
        ns_per_call: 957_789,
    },
    warm_steady: HotpathPoint {
        allocs_per_call: 2145,
        alloc_bytes_per_call: 343_820,
        request_bytes_per_call: 12,
        ns_per_call: 407_114,
    },
};

/// The read-only summing service (replies stay tiny, so request-side
/// marshalling dominates — the path this PR optimizes).
fn sum_service() -> Box<dyn RemoteService> {
    Box::new(FnService::new(
        |_m, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            let mut sum = 0i64;
            for node in walk_tree(heap, root)? {
                sum += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
            }
            Ok(Value::Int(sum as i32))
        },
    ))
}

fn measure(size: usize, warm: bool) -> HotpathPoint {
    let classes = bench_classes();
    let mut session = Session::builder(classes.registry.clone())
        .serve("sum", sum_service())
        .build();
    let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED).expect("workload");
    let args = [Value::Ref(w.root)];
    let opts = CallOptions::copy_restore_delta();
    let call = |session: &mut Session| -> usize {
        let stats = if warm {
            session
                .call_warm_with_stats("sum", "sum", &args)
                .expect("warm call")
                .1
        } else {
            session
                .call_with_stats("sum", "sum", &args, opts)
                .expect("cold call")
                .1
        };
        stats.request_bytes
    };
    for _ in 0..WARMUP {
        call(&mut session);
    }
    let (a0, b0) = alloc_count::counters();
    let started = Instant::now();
    let mut request_bytes = 0usize;
    for _ in 0..CALLS {
        request_bytes += call(&mut session);
    }
    let elapsed = started.elapsed().as_nanos() as u64;
    let (a1, b1) = alloc_count::counters();
    let n = CALLS as u64;
    HotpathPoint {
        allocs_per_call: (a1 - a0) / n,
        alloc_bytes_per_call: (b1 - b0) / n,
        request_bytes_per_call: request_bytes as u64 / n,
        ns_per_call: elapsed / n,
    }
}

/// Runs the ablation on a `size`-node tree (both ends in-process; the
/// counters see client and server traffic combined, which is what a
/// deployment pays).
pub fn run_hotpath(size: usize) -> HotpathReport {
    HotpathReport {
        size,
        calls: CALLS,
        cold: measure(size, false),
        warm_steady: measure(size, true),
    }
}

fn ratio(before: u64, after: u64) -> f64 {
    if after == 0 {
        f64::INFINITY
    } else {
        before as f64 / after as f64
    }
}

/// Renders the before/after comparison as an aligned table.
pub fn render_hotpath(before: &HotpathReport, after: &HotpathReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Hot-path allocation ablation — {}-node tree, {} calls/mode",
        after.size, after.calls
    );
    if !alloc_count::is_active() {
        let _ = writeln!(
            out,
            "(WARNING: counting allocator not installed — alloc columns are zero)"
        );
    }
    let _ = writeln!(
        out,
        "\n{:<28} {:>12} {:>12} {:>8}",
        "metric", "before", "after", "ratio"
    );
    let rows: [(&str, u64, u64); 6] = [
        (
            "cold allocs/call",
            before.cold.allocs_per_call,
            after.cold.allocs_per_call,
        ),
        (
            "cold alloc bytes/call",
            before.cold.alloc_bytes_per_call,
            after.cold.alloc_bytes_per_call,
        ),
        (
            "cold ns/call",
            before.cold.ns_per_call,
            after.cold.ns_per_call,
        ),
        (
            "warm allocs/call",
            before.warm_steady.allocs_per_call,
            after.warm_steady.allocs_per_call,
        ),
        (
            "warm alloc bytes/call",
            before.warm_steady.alloc_bytes_per_call,
            after.warm_steady.alloc_bytes_per_call,
        ),
        (
            "warm ns/call",
            before.warm_steady.ns_per_call,
            after.warm_steady.ns_per_call,
        ),
    ];
    for (name, b, a) in rows {
        let _ = writeln!(out, "{name:<28} {b:>12} {a:>12} {:>7.1}x", ratio(b, a));
    }
    out
}

fn point_json(p: &HotpathPoint) -> String {
    format!(
        "{{\"allocs_per_call\": {}, \"alloc_bytes_per_call\": {}, \"request_bytes_per_call\": {}, \"ns_per_call\": {}}}",
        p.allocs_per_call, p.alloc_bytes_per_call, p.request_bytes_per_call, p.ns_per_call
    )
}

fn report_json(r: &HotpathReport) -> String {
    format!(
        "{{\"size\": {}, \"calls\": {}, \"cold\": {}, \"warm_steady\": {}}}",
        r.size,
        r.calls,
        point_json(&r.cold),
        point_json(&r.warm_steady)
    )
}

/// Serializes the before/after pair as the `BENCH_hotpath.json` document.
pub fn to_json(before: &HotpathReport, after: &HotpathReport) -> String {
    format!(
        "{{\n  \"workload\": \"scenario I tree, read-only sum service, delta replies\",\n  \"before\": {},\n  \"after\": {}\n}}\n",
        report_json(before),
        report_json(after)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_runs_and_reports_bytes() {
        // Unit tests run without the counting allocator installed, so
        // only the byte/timing columns are meaningful here.
        let report = run_hotpath(64);
        assert!(report.cold.request_bytes_per_call > 0);
        assert!(
            report.warm_steady.request_bytes_per_call < report.cold.request_bytes_per_call,
            "steady warm requests must be smaller than cold requests"
        );
        let json = to_json(&BASELINE, &report);
        assert!(json.contains("\"after\""), "json has both sections");
    }
}
