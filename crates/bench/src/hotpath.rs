//! Hot-path allocation ablation: allocator traffic per call, before and
//! after the zero-copy pipeline work.
//!
//! §5.2.4 of the paper argues NRMI's marshalling traversal can run "at
//! cost comparable to plain call-by-copy"; that only holds if the
//! steady-state call path stops re-allocating its working set on every
//! invocation. This ablation drives the same read-only workload as
//! [`crate::warm`] (a seeded binary tree passed to a summing service)
//! through the cold protocol and the warm (request-delta) protocol, and
//! — with [`crate::alloc_count::CountingAlloc`] installed — reports
//! *allocation events per call* and *bytes through the allocator per
//! call* for each.
//!
//! The numbers in [`BASELINE`] were captured at the commit immediately
//! before the dense-position-map / pooled-codec / buffer-reuse work, with
//! the identical harness; `tables -- hotpath` re-measures the current
//! tree and emits `BENCH_hotpath.json` with both, so the perf trajectory
//! stays machine-readable from this PR onward.
//!
//! A second axis meters the **wire copy path** over real TCP: payload
//! bytes memmoved into contiguous frame bodies per call
//! ([`nrmi_transport::bytes_copied`]) and wire syscalls per call, for
//! the per-call-write wire vs the batched scatter-gather wire. The
//! vectored encode references payloads in place, so batching must drive
//! bytes-copied-per-call to (near) zero — [`hotpath_violations`] gates
//! on it, alongside the warm allocation budget.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use nrmi_core::{
    serve_connection_pooled, CallOptions, FnService, NrmiError, RemoteService, ServerNode, Session,
    SharedServer,
};
use nrmi_heap::{HeapAccess, Value};
use nrmi_transport::{MachineSpec, TcpListenerTransport};

use crate::alloc_count;
use crate::tables::SEED;
use crate::workload::{bench_classes, build_workload, walk_tree, Scenario};

/// Tree size the ablation runs on (the paper's largest benchmark size).
pub const SIZE: usize = 1024;

/// Measured calls per mode (after warmup; averages are per call).
pub const CALLS: usize = 32;

/// Warmup calls before counters are sampled (fills buffer pools, session
/// caches, and the warm seed, so the measurement sees steady state).
pub const WARMUP: usize = 4;

/// Per-call averages for one protocol mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotpathPoint {
    /// Allocation events (alloc/realloc) per call, both ends combined.
    pub allocs_per_call: u64,
    /// Bytes requested from the allocator per call.
    pub alloc_bytes_per_call: u64,
    /// Request payload bytes per call.
    pub request_bytes_per_call: u64,
    /// Wall-clock nanoseconds per call (indicative, single run).
    pub ns_per_call: u64,
}

/// The ablation result: cold calls vs steady-state warm calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotpathReport {
    /// Tree size measured.
    pub size: usize,
    /// Calls averaged over.
    pub calls: usize,
    /// Full copy-restore call (graph re-marshalled every call).
    pub cold: HotpathPoint,
    /// Steady-state warm call, δ = 0 (cache seeded, nothing dirty).
    pub warm_steady: HotpathPoint,
}

/// Wire-copy metering for one call mode under one batching toggle state
/// (both ends in one process, so the counters see client and server
/// traffic combined).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirePoint {
    /// Payload bytes memmoved into contiguous frame bodies per call.
    /// The vectored path references payloads in place and copies none.
    pub bytes_copied_per_call: u64,
    /// `write`/`writev` syscalls per call (request + reply, both ends).
    pub write_syscalls_per_call: f64,
    /// `read` syscalls per call.
    pub read_syscalls_per_call: f64,
}

/// The wire-copy ablation over real TCP: cold and steady-warm calls,
/// each measured with wire batching off (a contiguous encode and its
/// own `write` per frame) and on (vectored scatter-gather trains).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireReport {
    /// Tree size measured.
    pub size: usize,
    /// Calls averaged over per cell.
    pub calls: usize,
    /// Cold copy-restore calls, per-frame-write wire.
    pub cold_per_write: WirePoint,
    /// Cold copy-restore calls, batched wire.
    pub cold_batched: WirePoint,
    /// Steady warm calls, per-frame-write wire.
    pub warm_per_write: WirePoint,
    /// Steady warm calls, batched wire.
    pub warm_batched: WirePoint,
}

/// Warm steady-state allocation budget: [`hotpath_violations`] fails
/// when allocator events per warm call exceed this. The budget reflects
/// the pooled-codec / buffer-reuse floor with headroom of a few events
/// for hashmap churn; a regression that re-allocates the working set
/// per call blows past it immediately.
pub const WARM_ALLOCS_MAX: u64 = 63;

/// Ceiling on payload bytes memmoved per call by the *batched* wire —
/// the scatter-gather encode references request and reply payloads in
/// place, so anything beyond stray control-frame bytes means contiguous
/// coalescing crept back into the send path.
pub const WIRE_BYTES_COPIED_MAX: u64 = 512;

/// Allocator traffic at the pre-optimization commit (same harness, same
/// workload, `CountingAlloc` installed). Timing fields are indicative
/// only; the alloc counts are deterministic for this workload.
pub const BASELINE: HotpathReport = HotpathReport {
    size: SIZE,
    calls: CALLS,
    cold: HotpathPoint {
        allocs_per_call: 6625,
        alloc_bytes_per_call: 897_103,
        request_bytes_per_call: 8125,
        ns_per_call: 957_789,
    },
    warm_steady: HotpathPoint {
        allocs_per_call: 2145,
        alloc_bytes_per_call: 343_820,
        request_bytes_per_call: 12,
        ns_per_call: 407_114,
    },
};

/// The read-only summing service (replies stay tiny, so request-side
/// marshalling dominates — the path this PR optimizes).
fn sum_service() -> Box<dyn RemoteService> {
    Box::new(FnService::new(
        |_m, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            let mut sum = 0i64;
            for node in walk_tree(heap, root)? {
                sum += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
            }
            Ok(Value::Int(sum as i32))
        },
    ))
}

fn measure(size: usize, warm: bool) -> HotpathPoint {
    let classes = bench_classes();
    let mut session = Session::builder(classes.registry.clone())
        .serve("sum", sum_service())
        .build();
    let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED).expect("workload");
    let args = [Value::Ref(w.root)];
    let opts = CallOptions::copy_restore_delta();
    let call = |session: &mut Session| -> usize {
        let stats = if warm {
            session
                .call_warm_with_stats("sum", "sum", &args)
                .expect("warm call")
                .1
        } else {
            session
                .call_with_stats("sum", "sum", &args, opts)
                .expect("cold call")
                .1
        };
        stats.request_bytes
    };
    for _ in 0..WARMUP {
        call(&mut session);
    }
    let (a0, b0) = alloc_count::counters();
    let started = Instant::now();
    let mut request_bytes = 0usize;
    for _ in 0..CALLS {
        request_bytes += call(&mut session);
    }
    let elapsed = started.elapsed().as_nanos() as u64;
    let (a1, b1) = alloc_count::counters();
    let n = CALLS as u64;
    HotpathPoint {
        allocs_per_call: (a1 - a0) / n,
        alloc_bytes_per_call: (b1 - b0) / n,
        request_bytes_per_call: request_bytes as u64 / n,
        ns_per_call: elapsed / n,
    }
}

/// Runs the ablation on a `size`-node tree (both ends in-process; the
/// counters see client and server traffic combined, which is what a
/// deployment pays).
pub fn run_hotpath(size: usize) -> HotpathReport {
    HotpathReport {
        size,
        calls: CALLS,
        cold: measure(size, false),
        warm_steady: measure(size, true),
    }
}

/// Restores the wire-batching default even when a measurement panics.
struct BatchingGuard;

impl Drop for BatchingGuard {
    fn drop(&mut self) {
        nrmi_transport::set_wire_batching(true);
    }
}

/// One wire-copy cell: the hotpath workload over loopback TCP with the
/// batching toggle pinned, metering copied payload bytes and wire
/// syscalls per measured call.
fn measure_wire(size: usize, warm: bool, batching: bool) -> WirePoint {
    let classes = bench_classes();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut server = ServerNode::new(classes.registry.clone(), MachineSpec::fast());
    server.bind("sum", sum_service());
    let shared = Arc::new(SharedServer::from_node(server));
    let server_thread = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let _ = serve_connection_pooled(&shared, &mut conn);
        })
    };

    let mut session = Session::connect_tcp_reliable(
        classes.registry.clone(),
        addr,
        nrmi_core::RetryPolicy::default(),
    )
    .expect("connect");
    let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED).expect("workload");
    let args = [Value::Ref(w.root)];
    let opts = CallOptions::copy_restore_delta();
    let call = |session: &mut nrmi_core::RemoteSession<_>| {
        if warm {
            session.call_warm("sum", "sum", &args).expect("warm call");
        } else {
            session
                .call_with("sum", "sum", &args, opts)
                .expect("cold call");
        }
    };

    let _restore = BatchingGuard;
    nrmi_transport::set_wire_batching(batching);
    for _ in 0..WARMUP {
        call(&mut session);
    }
    let copied0 = nrmi_transport::bytes_copied();
    let (w0, r0) = nrmi_transport::wire_syscalls();
    for _ in 0..CALLS {
        call(&mut session);
    }
    let copied1 = nrmi_transport::bytes_copied();
    let (w1, r1) = nrmi_transport::wire_syscalls();
    nrmi_transport::set_wire_batching(true);
    let _ = session.close();
    server_thread.join().expect("server thread");

    let n = CALLS as u64;
    WirePoint {
        bytes_copied_per_call: (copied1 - copied0) / n,
        write_syscalls_per_call: (w1 - w0) as f64 / n as f64,
        read_syscalls_per_call: (r1 - r0) as f64 / n as f64,
    }
}

/// Runs the wire-copy ablation on a `size`-node tree over loopback TCP.
pub fn run_wire(size: usize) -> WireReport {
    WireReport {
        size,
        calls: CALLS,
        cold_per_write: measure_wire(size, false, false),
        cold_batched: measure_wire(size, false, true),
        warm_per_write: measure_wire(size, true, false),
        warm_batched: measure_wire(size, true, true),
    }
}

/// Gate predicate for `tables -- hotpath`: empty means healthy.
///
/// * Steady warm calls must stay within [`WARM_ALLOCS_MAX`] allocator
///   events (checked only when the counting allocator is installed —
///   unit tests without it would read zero and pass vacuously).
/// * The batched wire must copy no more payload bytes than the
///   per-write wire, cold and warm.
/// * The batched wire's copied bytes must stay under
///   [`WIRE_BYTES_COPIED_MAX`] — the absolute regression tripwire for
///   the scatter-gather encode.
pub fn hotpath_violations(after: &HotpathReport, wire: &WireReport) -> Vec<String> {
    let mut violations = Vec::new();
    if alloc_count::is_active() && after.warm_steady.allocs_per_call > WARM_ALLOCS_MAX {
        violations.push(format!(
            "warm steady-state call allocates {} times (budget {WARM_ALLOCS_MAX})",
            after.warm_steady.allocs_per_call
        ));
    }
    for (mode, per_write, batched) in [
        ("cold", &wire.cold_per_write, &wire.cold_batched),
        ("warm", &wire.warm_per_write, &wire.warm_batched),
    ] {
        if batched.bytes_copied_per_call > per_write.bytes_copied_per_call {
            violations.push(format!(
                "{mode} batched wire copies {} bytes/call, more than the per-write wire's {}",
                batched.bytes_copied_per_call, per_write.bytes_copied_per_call
            ));
        }
        if batched.bytes_copied_per_call > WIRE_BYTES_COPIED_MAX {
            violations.push(format!(
                "{mode} batched wire copies {} bytes/call (ceiling {WIRE_BYTES_COPIED_MAX}): \
                 contiguous coalescing is back in the send path",
                batched.bytes_copied_per_call
            ));
        }
    }
    violations
}

fn ratio(before: u64, after: u64) -> f64 {
    if after == 0 {
        f64::INFINITY
    } else {
        before as f64 / after as f64
    }
}

/// Renders the before/after comparison as an aligned table.
pub fn render_hotpath(before: &HotpathReport, after: &HotpathReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Hot-path allocation ablation — {}-node tree, {} calls/mode",
        after.size, after.calls
    );
    if !alloc_count::is_active() {
        let _ = writeln!(
            out,
            "(WARNING: counting allocator not installed — alloc columns are zero)"
        );
    }
    let _ = writeln!(
        out,
        "\n{:<28} {:>12} {:>12} {:>8}",
        "metric", "before", "after", "ratio"
    );
    let rows: [(&str, u64, u64); 6] = [
        (
            "cold allocs/call",
            before.cold.allocs_per_call,
            after.cold.allocs_per_call,
        ),
        (
            "cold alloc bytes/call",
            before.cold.alloc_bytes_per_call,
            after.cold.alloc_bytes_per_call,
        ),
        (
            "cold ns/call",
            before.cold.ns_per_call,
            after.cold.ns_per_call,
        ),
        (
            "warm allocs/call",
            before.warm_steady.allocs_per_call,
            after.warm_steady.allocs_per_call,
        ),
        (
            "warm alloc bytes/call",
            before.warm_steady.alloc_bytes_per_call,
            after.warm_steady.alloc_bytes_per_call,
        ),
        (
            "warm ns/call",
            before.warm_steady.ns_per_call,
            after.warm_steady.ns_per_call,
        ),
    ];
    for (name, b, a) in rows {
        let _ = writeln!(out, "{name:<28} {b:>12} {a:>12} {:>7.1}x", ratio(b, a));
    }
    out
}

/// Renders the wire-copy ablation as an aligned table.
pub fn render_wire(wire: &WireReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Wire copy ablation — {}-node tree over loopback TCP, {} calls/cell",
        wire.size, wire.calls
    );
    let _ = writeln!(
        out,
        "\n{:<24} {:>16} {:>12} {:>12}",
        "mode", "copied bytes/call", "writes/call", "reads/call"
    );
    let rows: [(&str, &WirePoint); 4] = [
        ("cold, write-per-frame", &wire.cold_per_write),
        ("cold, batched", &wire.cold_batched),
        ("warm, write-per-frame", &wire.warm_per_write),
        ("warm, batched", &wire.warm_batched),
    ];
    for (name, p) in rows {
        let _ = writeln!(
            out,
            "{name:<24} {:>16} {:>12.2} {:>12.2}",
            p.bytes_copied_per_call, p.write_syscalls_per_call, p.read_syscalls_per_call
        );
    }
    out
}

fn wire_point_json(p: &WirePoint) -> String {
    format!(
        "{{\"bytes_copied_per_call\": {}, \"write_syscalls_per_call\": {:.3}, \"read_syscalls_per_call\": {:.3}}}",
        p.bytes_copied_per_call, p.write_syscalls_per_call, p.read_syscalls_per_call
    )
}

fn wire_json(w: &WireReport) -> String {
    format!(
        "{{\"size\": {}, \"calls\": {}, \"cold_per_write\": {}, \"cold_batched\": {}, \"warm_per_write\": {}, \"warm_batched\": {}}}",
        w.size,
        w.calls,
        wire_point_json(&w.cold_per_write),
        wire_point_json(&w.cold_batched),
        wire_point_json(&w.warm_per_write),
        wire_point_json(&w.warm_batched)
    )
}

fn point_json(p: &HotpathPoint) -> String {
    format!(
        "{{\"allocs_per_call\": {}, \"alloc_bytes_per_call\": {}, \"request_bytes_per_call\": {}, \"ns_per_call\": {}}}",
        p.allocs_per_call, p.alloc_bytes_per_call, p.request_bytes_per_call, p.ns_per_call
    )
}

fn report_json(r: &HotpathReport) -> String {
    format!(
        "{{\"size\": {}, \"calls\": {}, \"cold\": {}, \"warm_steady\": {}}}",
        r.size,
        r.calls,
        point_json(&r.cold),
        point_json(&r.warm_steady)
    )
}

/// Serializes the before/after pair plus the wire-copy ablation as the
/// `BENCH_hotpath.json` document. The `wire` section's per-write vs
/// batched rows record what the scatter-gather encode saves: copied
/// payload bytes per call and wire syscalls per call, cold and warm.
pub fn to_json(before: &HotpathReport, after: &HotpathReport, wire: &WireReport) -> String {
    format!(
        "{{\n  \"workload\": \"scenario I tree, read-only sum service, delta replies\",\n  \"before\": {},\n  \"after\": {},\n  \"wire\": {},\n  \"wire_notes\": \"loopback TCP, both ends in one process; bytes_copied_per_call = payload bytes memmoved into contiguous frame bodies (the copy the scatter-gather encode eliminates); per_write = wire batching disabled (a write and a contiguous encode per frame), batched = vectored frame trains (the default)\"\n}}\n",
        report_json(before),
        report_json(after),
        wire_json(wire)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_runs_and_reports_bytes() {
        // Unit tests run without the counting allocator installed, so
        // only the byte/timing columns are meaningful here.
        let report = run_hotpath(64);
        assert!(report.cold.request_bytes_per_call > 0);
        assert!(
            report.warm_steady.request_bytes_per_call < report.cold.request_bytes_per_call,
            "steady warm requests must be smaller than cold requests"
        );
    }

    fn wire_point(copied: u64) -> WirePoint {
        WirePoint {
            bytes_copied_per_call: copied,
            write_syscalls_per_call: 1.0,
            read_syscalls_per_call: 2.0,
        }
    }

    #[test]
    fn wire_ablation_measures_the_copy_savings() {
        let wire = run_wire(64);
        assert!(
            wire.cold_per_write.bytes_copied_per_call > 0,
            "the contiguous encode must meter its payload copies"
        );
        assert!(
            wire.cold_batched.bytes_copied_per_call <= WIRE_BYTES_COPIED_MAX,
            "the vectored encode must reference payloads in place, copied {} bytes/call",
            wire.cold_batched.bytes_copied_per_call
        );
        assert!(
            nrmi_transport::wire_batching_enabled(),
            "measurement must restore the batching default"
        );
        assert!(
            hotpath_violations(&run_hotpath(64), &wire).is_empty(),
            "healthy measurement must pass its own gate"
        );
    }

    #[test]
    fn json_has_all_three_sections() {
        let report = run_hotpath(64);
        let wire = WireReport {
            size: 64,
            calls: CALLS,
            cold_per_write: wire_point(4096),
            cold_batched: wire_point(0),
            warm_per_write: wire_point(64),
            warm_batched: wire_point(0),
        };
        let json = to_json(&BASELINE, &report, &wire);
        assert!(json.contains("\"after\""), "json has the after section");
        assert!(
            json.contains("\"wire\"") && json.contains("\"cold_batched\""),
            "json has the wire section"
        );
    }

    #[test]
    fn violation_fires_when_coalescing_returns() {
        let healthy = WireReport {
            size: SIZE,
            calls: CALLS,
            cold_per_write: wire_point(8192),
            cold_batched: wire_point(0),
            warm_per_write: wire_point(64),
            warm_batched: wire_point(0),
        };
        let mut after = BASELINE;
        after.warm_steady.allocs_per_call = 10;
        assert!(hotpath_violations(&after, &healthy).is_empty());
        let mut regressed = healthy;
        regressed.cold_batched = wire_point(8192);
        let violations = hotpath_violations(&after, &regressed);
        assert!(
            violations.iter().any(|v| v.contains("ceiling")),
            "coalescing regression must trip the byte ceiling: {violations:?}"
        );
    }
}
