//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! cargo run -p nrmi-bench --bin tables -- all        # tables 1-6 + checks
//! cargo run -p nrmi-bench --bin tables -- table4     # one table
//! cargo run -p nrmi-bench --bin tables -- loc        # §5.3.2 LoC accounting
//! cargo run -p nrmi-bench --bin tables -- checks     # §5.3.3 observations
//! cargo run -p nrmi-bench --bin tables -- check      # nrmi-check gate (exit 1 on errors)
//! ```

use nrmi_bench::delta_sweep::{render_delta_sweep, run_delta_sweep};
use nrmi_bench::ext_collections::{render_map_experiment, run_map_experiment};
use nrmi_bench::manual::loc;
use nrmi_bench::observations::{check_observations, render_observations, run_all_tables};
use nrmi_bench::sensitivity::{monotonicity_violations, render_sweep, run_sweep};
use nrmi_bench::tables::{render, render_comparison, run_table};
use nrmi_bench::workload::Scenario;

/// Counting allocator: makes `tables -- hotpath` report real alloc
/// traffic. Two relaxed atomic adds per allocation; negligible for every
/// other command.
#[global_allocator]
static ALLOC: nrmi_bench::alloc_count::CountingAlloc = nrmi_bench::alloc_count::CountingAlloc;

fn print_table(id: usize, compare: bool) {
    let table = run_table(id);
    if compare {
        println!("{}", render_comparison(&table));
    } else {
        println!("{}", render(&table));
    }
}

fn print_loc() {
    println!("Extra client/server code for manual restore with plain RMI (§5.3.2):");
    println!(
        "{:<10} {:>14} {:>12} {:>10} {:>8}   NRMI",
        "bench", "return types", "traversal", "shadow", "total"
    );
    for scenario in Scenario::ALL {
        let l = loc(scenario);
        println!(
            "{:<10} {:>14} {:>12} {:>10} {:>8}   ~0 (implement Restorable)",
            scenario.label(),
            l.return_types,
            l.traversal,
            l.shadow,
            l.total()
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let compare = !args.iter().any(|a| a == "--bare");
    match command {
        "all" => {
            for id in 1..=6 {
                print_table(id, compare);
                println!();
            }
            print_loc();
            println!();
            let all = run_all_tables();
            println!("{}", render_observations(&check_observations(&all)));
            println!(
                "\nextensions: `tables -- semantics | sweep | delta | warm | hotpath | faults | scaling | table7 | leak`"
            );
        }
        "loc" => print_loc(),
        "semantics" => {
            let cells = nrmi_bench::semantics_matrix::run_matrix();
            println!("{}", nrmi_bench::semantics_matrix::render_matrix(&cells));
        }
        "leak" => {
            let report = nrmi_bench::leak::run_leak_experiment(64, 8);
            println!("{}", nrmi_bench::leak::render_leak_report(&report));
        }
        "table7" => {
            println!("{}", render_map_experiment(&run_map_experiment()));
        }
        "delta" => {
            let points = run_delta_sweep(1024);
            println!("{}", render_delta_sweep(1024, &points));
        }
        "warm" => {
            let rows = nrmi_bench::warm::run_warm_ablation(1024);
            println!("{}", nrmi_bench::warm::render_warm_ablation(1024, &rows));
        }
        "faults" => {
            use nrmi_bench::faults;
            let report = faults::run_faults();
            println!("{}", faults::render_faults(&report));
            let json = faults::to_json(&report);
            let path = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_faults.json");
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
            if !faults::at_most_once_violations(&report).is_empty() {
                std::process::exit(1);
            }
        }
        "scaling" => {
            use nrmi_bench::scaling;
            let report = scaling::run_scaling();
            println!("{}", scaling::render_scaling(&report));
            let json = scaling::to_json(&report);
            let path = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_scaling.json");
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
            if !scaling::scaling_violations(&report).is_empty() {
                std::process::exit(1);
            }
        }
        "hotpath" => {
            use nrmi_bench::hotpath;
            let after = hotpath::run_hotpath(hotpath::SIZE);
            println!("{}", hotpath::render_hotpath(&hotpath::BASELINE, &after));
            let wire = hotpath::run_wire(hotpath::SIZE);
            println!("{}", hotpath::render_wire(&wire));
            let json = hotpath::to_json(&hotpath::BASELINE, &after, &wire);
            let path = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_hotpath.json");
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
            let violations = hotpath::hotpath_violations(&after, &wire);
            if !violations.is_empty() {
                println!("[FAIL] hot-path budget violations:");
                for v in &violations {
                    println!("  - {v}");
                }
                std::process::exit(1);
            }
            println!("[PASS] warm allocation budget and batched-wire copy ceiling hold");
        }
        "sweep" => {
            for scenario in [Scenario::I, Scenario::III] {
                let cells = run_sweep(scenario, 1024);
                println!("{}", render_sweep(scenario, 1024, &cells));
                let violations = monotonicity_violations(&cells);
                match scenario {
                    Scenario::III => {
                        if violations.is_empty() {
                            println!("[PASS] scenario III: NRMI's advantage holds/grows with faster machines and slower networks\n");
                        } else {
                            println!("[FAIL] scenario III monotonicity violations:");
                            for v in violations {
                                println!("  - {v}");
                            }
                        }
                    }
                    _ => {
                        println!(
                            "(scenario I note: the manual return-value restore ships fewer bytes than\n NRMI's annotated reply, so on slow networks the ratio converges to the byte\n ratio rather than 1.0 — see nrmi_bench::sensitivity docs)\n"
                        );
                    }
                }
            }
        }
        "checks" => {
            let all = run_all_tables();
            println!("{}", render_observations(&check_observations(&all)));
        }
        "check" => {
            // The nrmi-check verification gate: schema analysis, registry
            // drift diff, and the exhaustive protocol model check. CI
            // fails the build on any error-severity diagnostic.
            let cfg = nrmi_check::ModelCheckConfig::default();
            let report = nrmi_check::self_check(&cfg);
            if args.iter().any(|a| a == "--json") {
                println!("{}", report.to_json());
            } else {
                println!("{}", report.render());
            }
            let (errors, warnings, infos) = report.counts();
            eprintln!("nrmi-check: {errors} error(s), {warnings} warning(s), {infos} info(s)");
            if report.has_errors() {
                std::process::exit(1);
            }
        }
        table if table.starts_with("table") => {
            let id: usize = table["table".len()..].parse().unwrap_or_else(|_| {
                eprintln!("usage: tables [all|loc|checks|table1..table6] [--bare]");
                std::process::exit(2);
            });
            print_table(id, compare);
        }
        _ => {
            eprintln!("usage: tables [all|loc|check|checks|sweep|delta|warm|hotpath|faults|scaling|leak|semantics|table1..table7] [--bare]");
            std::process::exit(2);
        }
    }
}
