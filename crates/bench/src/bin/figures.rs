//! Regenerates the paper's Figures 1–9 as ASCII heap diagrams.
//!
//! ```text
//! cargo run -p nrmi-bench --bin figures          # ASCII heap diagrams
//! cargo run -p nrmi-bench --bin figures -- --dot # Graphviz (Figures 1-2)
//! ```

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    if dot {
        print!("{}", nrmi_bench::figures::figures_dot());
    } else {
        print!("{}", nrmi_bench::figures::all_figures());
    }
}
