//! Extension experiment ("Table 7"): copy-restore on collection
//! workloads.
//!
//! The paper's evaluation uses binary trees, but its motivation names
//! "lists, graphs, trees, hash tables" and its API section shows
//! `RestorableHashMap` (§5.1). This experiment extends the evaluation to
//! that case: a heap-resident `HashMap` of string-keyed records passed
//! to a remote method that updates a fraction of the entries. Compared
//! configurations:
//!
//! * **manual RMI** — call-by-copy, method returns the whole map, caller
//!   reassigns its reference (the scenario-I technique; aliases into the
//!   map would make it scenario III);
//! * **NRMI** — copy-restore, full reply;
//! * **NRMI + delta** — copy-restore with delta replies.
//!
//! The interesting shape: the map's internal structure (buckets, entry
//! chains) dwarfs the changed data, so delta replies win big at low
//! update fractions — the collections case is where §5.2.4's
//! optimization matters most.

use nrmi_core::{
    CallOptions, FnService, JdkGeneration, NrmiError, NrmiFlavor, PassMode, RuntimeProfile, Session,
};
use nrmi_heap::collections::{collection_classes, register_collections, HMap};
use nrmi_heap::{ClassRegistry, SharedRegistry, Value};
use nrmi_transport::{LinkSpec, MachineSpec, SimEnv};

/// One measured configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapCell {
    /// Map entries.
    pub entries: usize,
    /// Entries the remote method updates.
    pub updates: usize,
    /// Manual-RMI (return + reassign), simulated ms.
    pub manual_ms: f64,
    /// NRMI full reply, simulated ms.
    pub nrmi_ms: f64,
    /// NRMI delta reply, simulated ms.
    pub delta_ms: f64,
}

/// The sizes swept (map entries).
pub const MAP_SIZES: [usize; 3] = [32, 128, 512];

fn map_registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = register_collections(&mut reg);
    reg.snapshot()
}

#[derive(Clone, Copy)]
enum Config {
    Manual,
    Nrmi,
    NrmiDelta,
}

fn run_config(entries: usize, updates: usize, config: Config) -> f64 {
    let registry = map_registry();
    let env = SimEnv::new();
    let mut session = Session::builder(registry.clone())
        .serve(
            "inventory",
            Box::new(FnService::new(move |method, args, heap| {
                let classes = collection_classes(heap.registry());
                let map = HMap::from_id(
                    args[0].as_ref_id().ok_or_else(|| NrmiError::app("map"))?,
                    classes,
                );
                let updates = args[1].as_int().unwrap_or(0) as usize;
                for i in 0..updates {
                    map.put(heap, &format!("key-{i}"), Value::Int(-(i as i32)))?;
                }
                match method {
                    // NRMI paths: mutations restore automatically.
                    "update" => Ok(Value::Null),
                    // Manual path: ship the whole map back.
                    "update_return" => Ok(args[0].clone()),
                    other => Err(NrmiError::app(format!("no method {other}"))),
                }
            })),
        )
        .simulated(
            env.clone(),
            LinkSpec::lan_100mbps(),
            MachineSpec::slow(),
            MachineSpec::fast(),
            RuntimeProfile {
                jdk: JdkGeneration::Jdk14,
                flavor: NrmiFlavor::Optimized,
            },
        )
        .build();

    // Client-side map.
    let classes = collection_classes(session.heap().registry_handle());
    let map = HMap::new(session.heap(), classes).expect("map");
    for i in 0..entries {
        map.put(session.heap(), &format!("key-{i}"), Value::Int(i as i32))
            .expect("put");
    }

    let args = [Value::Ref(map.id()), Value::Int(updates as i32)];
    match config {
        Config::Manual => {
            let ret = session
                .call_with(
                    "inventory",
                    "update_return",
                    &args,
                    CallOptions::forced(PassMode::Copy),
                )
                .expect("manual call");
            // "Reassign the reference": the returned map replaces the
            // original (checked for effect below).
            let new_map = HMap::from_id(ret.as_ref_id().expect("map return"), classes);
            // key-0 is 0 either way (-0 when updated); presence proves
            // the returned copy is usable after reassignment.
            assert_eq!(
                new_map.get(session.heap(), "key-0").expect("get"),
                Some(Value::Int(0))
            );
        }
        Config::Nrmi => {
            session
                .call_with(
                    "inventory",
                    "update",
                    &args,
                    CallOptions::forced(PassMode::CopyRestore),
                )
                .expect("nrmi call");
        }
        Config::NrmiDelta => {
            session
                .call_with(
                    "inventory",
                    "update",
                    &args,
                    CallOptions::copy_restore_delta(),
                )
                .expect("delta call");
        }
    }
    env.report().total_ms()
}

/// Runs the extension experiment: for each map size, update 10% of the
/// entries remotely under the three configurations.
pub fn run_map_experiment() -> Vec<MapCell> {
    MAP_SIZES
        .iter()
        .map(|&entries| {
            let updates = (entries / 10).max(1);
            MapCell {
                entries,
                updates,
                manual_ms: run_config(entries, updates, Config::Manual),
                nrmi_ms: run_config(entries, updates, Config::Nrmi),
                delta_ms: run_config(entries, updates, Config::NrmiDelta),
            }
        })
        .collect()
}

/// Renders the experiment table.
pub fn render_map_experiment(cells: &[MapCell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 7 (extension): copy-restore on RestorableHashMap workloads"
    );
    let _ = writeln!(
        out,
        "(10% of entries updated remotely; JDK 1.4 optimized; ms per call)\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>10} {:>11}",
        "entries", "updates", "manual RMI", "NRMI", "NRMI delta"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>12.1} {:>10.1} {:>11.1}",
            c.entries, c.updates, c.manual_ms, c.nrmi_ms, c.delta_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_produce_correct_final_state() {
        // Correctness first: after each configuration, the authoritative
        // map view shows the updates. (run_config asserts the manual
        // path internally; here assert the NRMI path end to end.)
        let registry = map_registry();
        let mut session = Session::builder(registry)
            .serve(
                "inventory",
                Box::new(FnService::new(|_m, args, heap| {
                    let classes = collection_classes(heap.registry());
                    let map = HMap::from_id(args[0].as_ref_id().unwrap(), classes);
                    map.put(heap, "key-3", Value::Int(-3))?;
                    Ok(Value::Null)
                })),
            )
            .build();
        let classes = collection_classes(session.heap().registry_handle());
        let map = HMap::new(session.heap(), classes).unwrap();
        for i in 0..8 {
            map.put(session.heap(), &format!("key-{i}"), Value::Int(i))
                .unwrap();
        }
        session
            .call("inventory", "update", &[Value::Ref(map.id())])
            .unwrap();
        assert_eq!(
            map.get(session.heap(), "key-3").unwrap(),
            Some(Value::Int(-3))
        );
        assert_eq!(
            map.get(session.heap(), "key-5").unwrap(),
            Some(Value::Int(5))
        );
    }

    #[test]
    fn delta_wins_on_sparse_map_updates() {
        let cells = run_map_experiment();
        assert_eq!(cells.len(), MAP_SIZES.len());
        for c in &cells {
            assert!(
                c.delta_ms < c.nrmi_ms,
                "delta must beat the full reply for 10% churn: {c:?}"
            );
            assert!(
                c.delta_ms < c.manual_ms,
                "delta must beat manual return-the-map: {c:?}"
            );
            // Costs grow with map size.
        }
        assert!(cells[2].nrmi_ms > cells[0].nrmi_ms);
    }
}
