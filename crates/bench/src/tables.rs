//! Regenerates the paper's Tables 1–6 from the simulated-time model.
//!
//! Every cell runs the *real* middleware — graphs are built, serialized,
//! shipped over the in-process transport, mutated, and restored — while
//! the [`SimEnv`] accounts what that work would have cost on the paper's
//! 2003 testbed (750 MHz + 440 MHz hosts, 100 Mbps LAN). The reported
//! value is simulated milliseconds per call, directly comparable to the
//! published numbers in [`paper`](crate::paper).

use nrmi_core::{CallOptions, JdkGeneration, NrmiFlavor, PassMode, RuntimeProfile, Session};
use nrmi_heap::{Heap, Value};
use nrmi_transport::{LinkSpec, MachineSpec, SimEnv};

use crate::manual::manual_restore_call;
use crate::paper::{format_paper_cell, paper_cell, table_title};
use crate::workload::{
    bench_classes, build_workload, mutate_tree, mutation_cost_us_per_node, scenario_service,
    Scenario, TREE_SIZES,
};

/// Deterministic workload seed (the venue's opening date).
pub const SEED: u64 = 2003_0519;

/// One regenerated cell: primary simulated ms, optional secondary value
/// (slow machine / optimized flavor), and whether the run completed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredCell {
    /// Primary value (ms/call).
    pub primary: f64,
    /// Secondary value for paired cells.
    pub secondary: Option<f64>,
}

impl MeasuredCell {
    fn fmt_value(v: f64) -> String {
        if v < 1.0 {
            "<1".to_owned()
        } else if v < 10.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.0}")
        }
    }

    /// Formats the cell in the paper's style.
    pub fn format(&self) -> String {
        match self.secondary {
            Some(s) => format!("{} / {}", Self::fmt_value(self.primary), Self::fmt_value(s)),
            None => Self::fmt_value(self.primary),
        }
    }
}

/// A regenerated table: rows are scenarios, columns are
/// (JDK 1.3 × sizes) then (JDK 1.4 × sizes).
#[derive(Clone, Debug)]
pub struct TableData {
    /// Table number (1–6).
    pub id: usize,
    /// Cells indexed `[scenario][jdk][size]` with jdk 0 = 1.3, 1 = 1.4.
    pub cells: Vec<Vec<Vec<MeasuredCell>>>,
}

impl TableData {
    /// The measured cell for `(scenario, jdk, size)`.
    pub fn cell(&self, scenario: Scenario, jdk: JdkGeneration, size: usize) -> MeasuredCell {
        let si = Scenario::ALL
            .iter()
            .position(|&s| s == scenario)
            .expect("valid scenario");
        let ji = match jdk {
            JdkGeneration::Jdk13 => 0,
            JdkGeneration::Jdk14 => 1,
        };
        let zi = TREE_SIZES
            .iter()
            .position(|&z| z == size)
            .expect("valid size");
        self.cells[si][ji][zi]
    }
}

const JDKS: [JdkGeneration; 2] = [JdkGeneration::Jdk13, JdkGeneration::Jdk14];

fn profile_for(jdk: JdkGeneration, flavor: NrmiFlavor) -> RuntimeProfile {
    RuntimeProfile { jdk, flavor }
}

/// Table 1 — local execution: the remote method's computation run in
/// one address space, on the fast and the slow machine.
pub fn run_table1() -> TableData {
    build_table(1, |scenario, jdk, size| {
        let classes = bench_classes();
        let mut values = [0.0f64; 2];
        for (i, machine) in [MachineSpec::fast(), MachineSpec::slow()]
            .into_iter()
            .enumerate()
        {
            let env = SimEnv::new();
            let mut heap = Heap::new(classes.registry.clone());
            let w = build_workload(&mut heap, &classes, scenario, size, SEED).expect("workload");
            let report = mutate_tree(&mut heap, w.root, scenario, SEED).expect("mutation");
            env.charge_cpu(
                &machine,
                report.nodes_visited as f64 * mutation_cost_us_per_node(scenario, jdk),
            );
            values[i] = env.report().total_ms();
        }
        MeasuredCell {
            primary: values[0],
            secondary: Some(values[1]),
        }
    })
}

/// Builds a simulated session for one cell and runs `run` against it.
#[allow(clippy::too_many_arguments)]
fn simulated_call(
    scenario: Scenario,
    size: usize,
    jdk: JdkGeneration,
    flavor: NrmiFlavor,
    link: LinkSpec,
    client_machine: MachineSpec,
    server_machine: MachineSpec,
    run: impl FnOnce(&mut Session, nrmi_heap::ObjId, &[nrmi_heap::ObjId]),
) -> f64 {
    let classes = bench_classes();
    let env = SimEnv::new();
    let svc = scenario_service(
        &classes,
        scenario,
        SEED,
        Some(env.clone()),
        server_machine.clone(),
        jdk,
    );
    let mut session = Session::builder(classes.registry.clone())
        .serve("bench", Box::new(svc))
        .simulated(
            env.clone(),
            link,
            client_machine,
            server_machine,
            profile_for(jdk, flavor),
        )
        .build();
    let w = build_workload(session.heap(), &classes, scenario, size, SEED).expect("workload");
    run(&mut session, w.root, &w.aliases);
    env.report().total_ms()
}

/// Table 2 — RMI without restore: call-by-copy, one-way payload, the
/// server's changes discarded.
pub fn run_table2() -> TableData {
    build_table(2, |scenario, jdk, size| {
        let ms = simulated_call(
            scenario,
            size,
            jdk,
            NrmiFlavor::Portable,
            LinkSpec::lan_100mbps(),
            MachineSpec::slow(),
            MachineSpec::fast(),
            |session, root, _aliases| {
                session
                    .call_with(
                        "bench",
                        "mutate",
                        &[Value::Ref(root)],
                        CallOptions::forced(PassMode::Copy),
                    )
                    .expect("call");
            },
        );
        MeasuredCell {
            primary: ms,
            secondary: None,
        }
    })
}

/// Table 3 — RMI with manual restore, both JVMs on the one dual-CPU
/// machine (no real network).
pub fn run_table3() -> TableData {
    build_table(3, |scenario, jdk, size| {
        let ms = simulated_call(
            scenario,
            size,
            jdk,
            NrmiFlavor::Portable,
            LinkSpec::same_machine(),
            MachineSpec::fast(),
            MachineSpec::fast(),
            |session, root, aliases| {
                manual_restore_call(session, "bench", scenario, root, aliases).expect("manual");
            },
        );
        MeasuredCell {
            primary: ms,
            secondary: None,
        }
    })
}

/// Table 4 — RMI with manual restore over the LAN: the real competitor
/// to NRMI, with the programmer's hand-written fix-up code.
pub fn run_table4() -> TableData {
    build_table(4, |scenario, jdk, size| {
        let ms = simulated_call(
            scenario,
            size,
            jdk,
            NrmiFlavor::Portable,
            LinkSpec::lan_100mbps(),
            MachineSpec::slow(),
            MachineSpec::fast(),
            |session, root, aliases| {
                manual_restore_call(session, "bench", scenario, root, aliases).expect("manual");
            },
        );
        MeasuredCell {
            primary: ms,
            secondary: None,
        }
    })
}

/// Table 5 — NRMI call-by-copy-restore. JDK 1.3 runs the portable
/// implementation; JDK 1.4 cells report portable / optimized.
pub fn run_table5() -> TableData {
    build_table(5, |scenario, jdk, size| {
        let run_flavor = |flavor| {
            simulated_call(
                scenario,
                size,
                jdk,
                flavor,
                LinkSpec::lan_100mbps(),
                MachineSpec::slow(),
                MachineSpec::fast(),
                |session, root, _aliases| {
                    session
                        .call_with(
                            "bench",
                            "mutate",
                            &[Value::Ref(root)],
                            CallOptions::forced(PassMode::CopyRestore),
                        )
                        .expect("call");
                },
            )
        };
        match jdk {
            JdkGeneration::Jdk13 => MeasuredCell {
                primary: run_flavor(NrmiFlavor::Portable),
                secondary: None,
            },
            JdkGeneration::Jdk14 => MeasuredCell {
                primary: run_flavor(NrmiFlavor::Portable),
                secondary: Some(run_flavor(NrmiFlavor::Optimized)),
            },
        }
    })
}

/// Table 6 — call-by-reference with remote pointers: every field access
/// is a network round trip.
pub fn run_table6() -> TableData {
    build_table(6, |scenario, jdk, size| {
        let ms = simulated_call(
            scenario,
            size,
            jdk,
            NrmiFlavor::Portable,
            LinkSpec::lan_100mbps(),
            MachineSpec::slow(),
            MachineSpec::fast(),
            |session, root, _aliases| {
                session
                    .call_with(
                        "bench",
                        "mutate",
                        &[Value::Ref(root)],
                        CallOptions::forced(PassMode::RemoteRef),
                    )
                    .expect("call");
            },
        );
        MeasuredCell {
            primary: ms,
            secondary: None,
        }
    })
}

/// Runs the given cell function over the full scenario × JDK × size grid.
fn build_table(
    id: usize,
    mut cell: impl FnMut(Scenario, JdkGeneration, usize) -> MeasuredCell,
) -> TableData {
    let cells = Scenario::ALL
        .iter()
        .map(|&scenario| {
            JDKS.iter()
                .map(|&jdk| {
                    TREE_SIZES
                        .iter()
                        .map(|&size| cell(scenario, jdk, size))
                        .collect()
                })
                .collect()
        })
        .collect();
    TableData { id, cells }
}

/// Runs one table by number.
///
/// # Panics
/// Panics for ids outside 1..=6.
pub fn run_table(id: usize) -> TableData {
    match id {
        1 => run_table1(),
        2 => run_table2(),
        3 => run_table3(),
        4 => run_table4(),
        5 => run_table5(),
        6 => run_table6(),
        other => panic!("no such table: {other}"),
    }
}

/// Renders a regenerated table next to the paper's published values.
pub fn render_comparison(table: &TableData) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", table_title(table.id));
    let _ = writeln!(
        out,
        "(milliseconds per call; measured = this reproduction, paper = published)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>11} {:>11} {:>7}   jdk",
        "bench", "size", "measured", "paper", "Δ%"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for &scenario in &Scenario::ALL {
        for &jdk in &JDKS {
            for &size in &TREE_SIZES {
                let measured = table.cell(scenario, jdk, size);
                let published = paper_cell(table.id, scenario, jdk, size);
                let jdk_name = match jdk {
                    JdkGeneration::Jdk13 => "1.3",
                    JdkGeneration::Jdk14 => "1.4",
                };
                // Relative error of the primary value, where the paper
                // printed an exact number (skip "<1" and "-" cells).
                let delta = match published.primary {
                    Some(p) if p >= 1.0 => {
                        format!("{:+.0}%", (measured.primary - p) / p * 100.0)
                    }
                    _ => "-".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{:<10} {:>6} {:>11} {:>11} {:>7}   {}",
                    scenario.label(),
                    size,
                    measured.format(),
                    format_paper_cell(published),
                    delta,
                    jdk_name
                );
            }
        }
    }
    out
}

/// Renders a regenerated table alone, in the paper's grid layout.
pub fn render(table: &TableData) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", table_title(table.id));
    let _ = write!(out, "{:<8}", "bench");
    for jdk in ["JDK 1.3", "JDK 1.4"] {
        for &size in &TREE_SIZES {
            let _ = write!(out, "{:>12}", format!("{jdk}/{size}"));
        }
    }
    let _ = writeln!(out);
    for &scenario in &Scenario::ALL {
        let _ = write!(out, "{:<8}", scenario.label());
        for &jdk in &JDKS {
            for &size in &TREE_SIZES {
                let _ = write!(out, "{:>12}", table.cell(scenario, jdk, size).format());
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_local_costs() {
        let t = run_table1();
        // Larger trees cost more; III > I; slow machine > fast machine.
        let small = t.cell(Scenario::I, JdkGeneration::Jdk14, 16);
        let large = t.cell(Scenario::I, JdkGeneration::Jdk14, 1024);
        assert!(large.primary > small.primary);
        assert!(
            large.secondary.unwrap() > large.primary,
            "slow machine is slower"
        );
        let iii = t.cell(Scenario::III, JdkGeneration::Jdk14, 1024);
        assert!(iii.primary > large.primary, "III does more work than I");
        // JDK 1.3 slower than 1.4.
        let old = t.cell(Scenario::I, JdkGeneration::Jdk13, 1024);
        assert!(old.primary > large.primary);
    }

    #[test]
    fn table2_one_way_is_cheaper_than_table4_two_way() {
        let t2 = run_table2();
        let t4 = run_table4();
        for &scenario in &Scenario::ALL {
            for &jdk in &JDKS {
                for &size in &TREE_SIZES {
                    let one_way = t2.cell(scenario, jdk, size).primary;
                    let two_way = t4.cell(scenario, jdk, size).primary;
                    assert!(
                        one_way < two_way,
                        "{scenario:?}/{jdk:?}/{size}: {one_way} !< {two_way}"
                    );
                }
            }
        }
    }

    #[test]
    fn nrmi_cost_is_invariant_to_alias_count() {
        // The usability claim quantified: the caller's aliases cost NRMI
        // nothing — no per-alias bookkeeping exists anywhere in the
        // pipeline. Scenario II (2 aliases at size 64) and a variant
        // with 16 aliases must price identically.
        use nrmi_core::{CallOptions, PassMode};
        use nrmi_transport::SimEnv;
        let run_with_aliases = |alias_count: usize| -> f64 {
            let classes = bench_classes();
            let env = SimEnv::new();
            let svc = scenario_service(
                &classes,
                Scenario::II,
                SEED,
                Some(env.clone()),
                MachineSpec::fast(),
                JdkGeneration::Jdk14,
            );
            let mut session = nrmi_core::Session::builder(classes.registry.clone())
                .serve("bench", Box::new(svc))
                .simulated(
                    env.clone(),
                    LinkSpec::lan_100mbps(),
                    MachineSpec::slow(),
                    MachineSpec::fast(),
                    profile_for(JdkGeneration::Jdk14, NrmiFlavor::Optimized),
                )
                .build();
            let w =
                build_workload(session.heap(), &classes, Scenario::II, 64, SEED).expect("workload");
            // Take extra aliases beyond the scenario's default; they are
            // client-side handles and never touch the wire.
            let nodes = nrmi_heap::tree::collect_nodes(session.heap(), w.root).unwrap();
            let _aliases: Vec<_> = nodes.iter().cycle().take(alias_count).collect();
            session
                .call_with(
                    "bench",
                    "mutate",
                    &[nrmi_heap::Value::Ref(w.root)],
                    CallOptions::forced(PassMode::CopyRestore),
                )
                .expect("call");
            env.report().total_ms()
        };
        let few = run_with_aliases(2);
        let many = run_with_aliases(64);
        assert!(
            (few - many).abs() < 1e-9,
            "alias count must not affect NRMI cost: {few} vs {many}"
        );
    }

    #[test]
    fn rendering_produces_all_rows() {
        let t = run_table1();
        let grid = render(&t);
        assert!(grid.contains("JDK 1.3/16"));
        let cmp = render_comparison(&t);
        assert!(cmp.contains("measured"));
        assert!(cmp.lines().count() > 24);
    }
}
