//! # nrmi-bench — the paper's evaluation, regenerated
//!
//! Section 5.3 of the paper evaluates NRMI with three micro-benchmarks —
//! a randomly generated binary tree passed to a remote method that
//! performs random changes, under three aliasing scenarios — across tree
//! sizes 16/64/256/1024, two JDK generations, and five middleware
//! configurations (Tables 1–6). This crate rebuilds that evaluation:
//!
//! * [`workload`] — the scenario definitions (I: no aliases; II: aliases,
//!   fixed shape; III: aliases + structural change), seeded tree
//!   generation, the random mutator, and the per-scenario computation
//!   cost model behind Table 1;
//! * [`manual`] — the hand-written restore emulations a programmer
//!   would need with plain RMI (§5.3.2): return-value reassignment (I),
//!   isomorphic parallel traversal (II), and the shadow tree (III),
//!   plus their lines-of-code accounting;
//! * [`tables`] — regenerates Tables 1–6 from the simulated-time model,
//!   side by side with the paper's published numbers;
//! * [`figures`] — regenerates Figures 1–9 as ASCII heap diagrams;
//! * [`paper`] — the published numbers, embedded for comparison;
//! * [`observations`] — machine-checks the paper's §5.3.3 claims
//!   against the regenerated tables;
//! * [`sensitivity`] — sweeps bandwidth × machine speed to check the
//!   paper's prediction that NRMI's relative overhead shrinks on faster
//!   machines and slower networks.
//!
//! Binaries: `cargo run -p nrmi-bench --bin tables -- all` and
//! `cargo run -p nrmi-bench --bin figures`.

#![deny(unsafe_code)] // alloc_count opts out locally for its GlobalAlloc impl
#![warn(missing_docs)]

pub mod alloc_count;
pub mod delta_sweep;
pub mod ext_collections;
pub mod faults;
pub mod figures;
pub mod hotpath;
pub mod leak;
pub mod manual;
pub mod observations;
pub mod paper;
pub mod scaling;
pub mod semantics_matrix;
pub mod sensitivity;
pub mod tables;
pub mod warm;
pub mod workload;
