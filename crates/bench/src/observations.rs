//! Machine-checked reproduction of the paper's §5.3.3 observations.
//!
//! The point of the reproduction is not matching absolute milliseconds —
//! our substrate is a simulator, theirs was two Sun workstations — but
//! the *shape* of the results: who wins, by roughly what factor, and
//! where the crossovers fall. Each [`Observation`] states one published
//! claim and whether the regenerated tables support it.

use nrmi_core::JdkGeneration::{Jdk13, Jdk14};

use crate::tables::{run_table, TableData};
use crate::workload::{Scenario, TREE_SIZES};

/// One checked claim.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The claim, quoted or paraphrased from §5.3.3.
    pub claim: String,
    /// Whether the regenerated tables support it.
    pub holds: bool,
    /// Supporting numbers.
    pub detail: String,
}

/// The six regenerated tables, bundled for the checks.
#[derive(Clone, Debug)]
pub struct AllTables {
    /// Tables 1–6 in order.
    pub tables: Vec<TableData>,
}

/// Runs all six tables.
pub fn run_all_tables() -> AllTables {
    AllTables {
        tables: (1..=6).map(run_table).collect(),
    }
}

impl AllTables {
    fn t(&self, id: usize) -> &TableData {
        &self.tables[id - 1]
    }
}

/// Checks every §5.3.3 claim against the regenerated tables.
pub fn check_observations(all: &AllTables) -> Vec<Observation> {
    let mut obs = Vec::new();
    let big = 1024;

    // 1. "Java RMI in JDK 1.4 is significantly faster than RMI in JDK
    //    1.3. The speedup is in the order of 50-60%."
    {
        let t2 = all.t(2);
        let mut ratios = Vec::new();
        for &s in &Scenario::ALL {
            let old = t2.cell(s, Jdk13, big).primary;
            let new = t2.cell(s, Jdk14, big).primary;
            ratios.push(old / new);
        }
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        obs.push(Observation {
            claim: "RMI on JDK 1.4 is ~50-60% faster than on JDK 1.3".into(),
            holds: min >= 1.4,
            detail: format!("1024-node one-way speedups: {ratios:.2?} (want ≳1.5x)"),
        });
    }

    // 2. "Even the portable version is rarely more than 30% slower than
    //    the corresponding RMI version" (benchmarks I and II).
    {
        let t4 = all.t(4);
        let t5 = all.t(5);
        let mut worst: f64 = 0.0;
        for &s in [Scenario::I, Scenario::II].iter() {
            for &size in &TREE_SIZES[2..] {
                let rmi = t4.cell(s, Jdk14, size).primary;
                let nrmi_portable = t5.cell(s, Jdk14, size).primary;
                worst = worst.max(nrmi_portable / rmi);
            }
        }
        obs.push(Observation {
            claim: "Portable NRMI rarely more than 30% over RMI-with-restore (I, II)".into(),
            holds: worst <= 1.45,
            detail: format!("worst portable/RMI ratio at 256/1024 nodes: {worst:.2}"),
        });
    }

    // 3. "The optimized implementation of NRMI is about 20% slower than
    //    RMI in JDK 1.4" (benchmarks I and II).
    {
        let t4 = all.t(4);
        let t5 = all.t(5);
        let mut ratios = Vec::new();
        for &s in [Scenario::I, Scenario::II].iter() {
            let rmi = t4.cell(s, Jdk14, big).primary;
            let nrmi_opt = t5.cell(s, Jdk14, big).secondary.expect("paired cell");
            ratios.push(nrmi_opt / rmi);
        }
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        obs.push(Observation {
            claim: "Optimized NRMI ≈20% over RMI-with-restore on JDK 1.4 (I, II)".into(),
            holds: ratios.iter().all(|&r| r > 1.0 && r <= 1.35),
            detail: format!("optimized/RMI ratios at 1024 nodes: {ratios:.2?} (max {max:.2})"),
        });
    }

    // 4. "The optimized implementation of NRMI for JDK 1.4 is 20-30%
    //    faster than regular RMI in JDK 1.3."
    {
        let t4 = all.t(4);
        let t5 = all.t(5);
        let mut holds = true;
        let mut detail = Vec::new();
        for &s in &Scenario::ALL {
            let rmi13 = t4.cell(s, Jdk13, big).primary;
            let nrmi14 = t5.cell(s, Jdk14, big).secondary.expect("paired cell");
            detail.push(format!("{}: {nrmi14:.0} vs {rmi13:.0}", s.label()));
            holds &= nrmi14 < rmi13;
        }
        obs.push(Observation {
            claim: "Optimized NRMI on 1.4 beats regular RMI-with-restore on 1.3".into(),
            holds,
            detail: detail.join(", "),
        });
    }

    // 5. "For benchmark III ... the portable implementation of NRMI gets
    //    similar performance to regular RMI in all cases, while the
    //    optimized implementation is faster" — the shadow tree ships
    //    more data than NRMI's (never-transmitted) linear map.
    {
        let t4 = all.t(4);
        let t5 = all.t(5);
        let rmi = t4.cell(Scenario::III, Jdk14, big).primary;
        let portable = t5.cell(Scenario::III, Jdk14, big).primary;
        let optimized = t5
            .cell(Scenario::III, Jdk14, big)
            .secondary
            .expect("paired cell");
        obs.push(Observation {
            claim: "Benchmark III: optimized NRMI beats manual RMI (shadow-tree bytes)".into(),
            holds: optimized < rmi && portable <= rmi * 1.15,
            detail: format!(
                "RMI {rmi:.0} ms, NRMI portable {portable:.0} ms, optimized {optimized:.0} ms"
            ),
        });
    }

    // 6. "Call-by-reference implemented by remote pointers is extremely
    //    inefficient (as expected)."
    {
        let t5 = all.t(5);
        let t6 = all.t(6);
        let mut min_ratio = f64::INFINITY;
        for &s in &Scenario::ALL {
            for &size in &TREE_SIZES[..3] {
                let nrmi = t5
                    .cell(s, Jdk14, size)
                    .secondary
                    .unwrap_or_else(|| t5.cell(s, Jdk14, size).primary);
                let remote = t6.cell(s, Jdk14, size).primary;
                min_ratio = min_ratio.min(remote / nrmi);
            }
        }
        obs.push(Observation {
            claim: "Remote pointers are an order of magnitude slower than NRMI".into(),
            holds: min_ratio >= 5.0,
            detail: format!("minimum remote-ref/NRMI ratio (16-256 nodes): {min_ratio:.1}x"),
        });
    }

    // 7. Cost ordering per configuration: one-way < manual restore <
    //    NRMI (for I/II) — each layer adds its work.
    {
        let t2 = all.t(2);
        let t4 = all.t(4);
        let t5 = all.t(5);
        let mut holds = true;
        for &s in &Scenario::ALL {
            let a = t2.cell(s, Jdk14, big).primary;
            let b = t4.cell(s, Jdk14, big).primary;
            let c = t5.cell(s, Jdk14, big).primary;
            holds &= a < b && (s == Scenario::III || b < c * 1.05);
        }
        obs.push(Observation {
            claim: "Per-cell ordering: one-way < with-restore ≲ NRMI (crossover only in III)"
                .into(),
            holds,
            detail: "compares Tables 2, 4, 5 at 1024 nodes".into(),
        });
    }

    obs
}

/// Renders the observation report.
pub fn render_observations(obs: &[Observation]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "§5.3.3 observation checks (shape reproduction):");
    for o in obs {
        let _ = writeln!(
            out,
            "  [{}] {}",
            if o.holds { "PASS" } else { "FAIL" },
            o.claim
        );
        let _ = writeln!(out, "        {}", o.detail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_report_renders() {
        // Cheap smoke test on a subset: tables 2 and 4 orderings are
        // covered by tables::tests; here just check the report plumbing
        // with real (but small) data.
        let all = run_all_tables();
        let obs = check_observations(&all);
        assert_eq!(obs.len(), 7);
        let report = render_observations(&obs);
        assert!(report.contains("PASS") || report.contains("FAIL"));
    }
}
