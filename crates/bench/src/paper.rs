//! The paper's published numbers (Tables 1–6, §5.3.3), embedded for
//! side-by-side comparison with the regenerated tables.
//!
//! All values are milliseconds per remote call, as printed in the paper.
//! `"<1"` cells are stored as `0.5`; the `-` cells of Table 6 (the
//! 1024-node remote-reference runs that exceeded the 1 GB heap limit and
//! failed to complete) are stored as `None`.

use crate::workload::Scenario;
use nrmi_core::JdkGeneration;

/// One published cell: the primary value and, where the paper prints a
/// pair ("a / b"), the secondary value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperCell {
    /// Primary value in ms (`None` for the paper's `-` entries).
    pub primary: Option<f64>,
    /// Secondary value for paired cells: the slow machine in Table 1,
    /// the optimized NRMI implementation in Table 5's JDK 1.4 columns.
    pub secondary: Option<f64>,
}

impl PaperCell {
    const fn one(v: f64) -> Self {
        PaperCell {
            primary: Some(v),
            secondary: None,
        }
    }

    const fn pair(a: f64, b: f64) -> Self {
        PaperCell {
            primary: Some(a),
            secondary: Some(b),
        }
    }

    const fn missing() -> Self {
        PaperCell {
            primary: None,
            secondary: None,
        }
    }
}

/// Looks up the published cell for `(table, scenario, jdk, size)`.
/// `size` must be one of 16/64/256/1024; `table` one of 1..=6.
///
/// # Panics
/// Panics on an out-of-range table id or size.
pub fn paper_cell(table: usize, scenario: Scenario, jdk: JdkGeneration, size: usize) -> PaperCell {
    let si = match size {
        16 => 0,
        64 => 1,
        256 => 2,
        1024 => 3,
        other => panic!("no such benchmark size: {other}"),
    };
    let row = match (table, jdk, scenario) {
        // Table 1: local execution, fast / slow machine.
        (1, JdkGeneration::Jdk13, Scenario::I) => [
            P::pair(0.5, 0.5),
            P::pair(0.5, 1.0),
            P::pair(1.0, 2.0),
            P::pair(6.0, 8.0),
        ],
        (1, JdkGeneration::Jdk13, Scenario::II) => [
            P::pair(0.5, 1.0),
            P::pair(1.0, 1.0),
            P::pair(4.0, 5.0),
            P::pair(15.0, 20.0),
        ],
        (1, JdkGeneration::Jdk13, Scenario::III) => [
            P::pair(0.5, 1.0),
            P::pair(1.0, 2.0),
            P::pair(5.0, 6.0),
            P::pair(19.0, 24.0),
        ],
        (1, JdkGeneration::Jdk14, Scenario::I) => [
            P::pair(0.5, 0.5),
            P::pair(0.5, 1.0),
            P::pair(1.0, 1.0),
            P::pair(4.0, 6.0),
        ],
        (1, JdkGeneration::Jdk14, Scenario::II) => [
            P::pair(0.5, 1.0),
            P::pair(1.0, 1.0),
            P::pair(3.0, 4.0),
            P::pair(12.0, 16.0),
        ],
        (1, JdkGeneration::Jdk14, Scenario::III) => [
            P::pair(0.5, 1.0),
            P::pair(1.0, 1.0),
            P::pair(4.0, 5.0),
            P::pair(15.0, 19.0),
        ],
        // Table 2: RMI execution without restore (one-way traffic).
        (2, JdkGeneration::Jdk13, Scenario::I) => {
            [P::one(3.0), P::one(7.0), P::one(18.0), P::one(65.0)]
        }
        (2, JdkGeneration::Jdk13, Scenario::II) => {
            [P::one(3.0), P::one(7.0), P::one(21.0), P::one(74.0)]
        }
        (2, JdkGeneration::Jdk13, Scenario::III) => {
            [P::one(3.0), P::one(8.0), P::one(22.0), P::one(79.0)]
        }
        (2, JdkGeneration::Jdk14, Scenario::I) => {
            [P::one(2.0), P::one(4.0), P::one(9.0), P::one(33.0)]
        }
        (2, JdkGeneration::Jdk14, Scenario::II) => {
            [P::one(3.0), P::one(4.0), P::one(12.0), P::one(41.0)]
        }
        (2, JdkGeneration::Jdk14, Scenario::III) => {
            [P::one(3.0), P::one(5.0), P::one(12.0), P::one(44.0)]
        }
        // Table 3: RMI with restore on one machine (no network).
        (3, JdkGeneration::Jdk13, Scenario::I) => {
            [P::one(3.0), P::one(7.0), P::one(17.0), P::one(59.0)]
        }
        (3, JdkGeneration::Jdk13, Scenario::II) => {
            [P::one(4.0), P::one(8.0), P::one(19.0), P::one(67.0)]
        }
        (3, JdkGeneration::Jdk13, Scenario::III) => {
            [P::one(4.0), P::one(9.0), P::one(24.0), P::one(87.0)]
        }
        (3, JdkGeneration::Jdk14, Scenario::I) => {
            [P::one(3.0), P::one(4.0), P::one(11.0), P::one(41.0)]
        }
        (3, JdkGeneration::Jdk14, Scenario::II) => {
            [P::one(3.0), P::one(5.0), P::one(13.0), P::one(48.0)]
        }
        (3, JdkGeneration::Jdk14, Scenario::III) => {
            [P::one(3.0), P::one(6.0), P::one(16.0), P::one(66.0)]
        }
        // Table 4: RMI with restore (two-way traffic).
        (4, JdkGeneration::Jdk13, Scenario::I) => {
            [P::one(5.0), P::one(11.0), P::one(29.0), P::one(102.0)]
        }
        (4, JdkGeneration::Jdk13, Scenario::II) => {
            [P::one(5.0), P::one(12.0), P::one(32.0), P::one(112.0)]
        }
        (4, JdkGeneration::Jdk13, Scenario::III) => {
            [P::one(6.0), P::one(13.0), P::one(38.0), P::one(143.0)]
        }
        (4, JdkGeneration::Jdk14, Scenario::I) => {
            [P::one(4.0), P::one(6.0), P::one(18.0), P::one(68.0)]
        }
        (4, JdkGeneration::Jdk14, Scenario::II) => {
            [P::one(4.0), P::one(7.0), P::one(21.0), P::one(77.0)]
        }
        (4, JdkGeneration::Jdk14, Scenario::III) => {
            [P::one(4.0), P::one(9.0), P::one(27.0), P::one(106.0)]
        }
        // Table 5: NRMI copy-restore. JDK 1.4 cells pair
        // portable / optimized.
        (5, JdkGeneration::Jdk13, Scenario::I) => {
            [P::one(6.0), P::one(13.0), P::one(36.0), P::one(130.0)]
        }
        (5, JdkGeneration::Jdk13, Scenario::II) => {
            [P::one(6.0), P::one(13.0), P::one(38.0), P::one(141.0)]
        }
        (5, JdkGeneration::Jdk13, Scenario::III) => {
            [P::one(6.0), P::one(14.0), P::one(39.0), P::one(146.0)]
        }
        (5, JdkGeneration::Jdk14, Scenario::I) => [
            P::pair(5.0, 4.0),
            P::pair(8.0, 8.0),
            P::pair(25.0, 22.0),
            P::pair(93.0, 82.0),
        ],
        (5, JdkGeneration::Jdk14, Scenario::II) => [
            P::pair(5.0, 4.0),
            P::pair(9.0, 8.0),
            P::pair(27.0, 24.0),
            P::pair(103.0, 95.0),
        ],
        (5, JdkGeneration::Jdk14, Scenario::III) => [
            P::pair(5.0, 4.0),
            P::pair(9.0, 8.0),
            P::pair(28.0, 25.0),
            P::pair(106.0, 97.0),
        ],
        // Table 6: call-by-reference via remote pointers. The 1024 runs
        // failed to complete (distributed circular garbage exhausted the
        // 1 GB heap).
        (6, JdkGeneration::Jdk13, Scenario::I) => {
            [P::one(41.0), P::one(50.0), P::one(87.0), P::missing()]
        }
        (6, JdkGeneration::Jdk13, Scenario::II) => {
            [P::one(35.0), P::one(50.0), P::one(85.0), P::missing()]
        }
        (6, JdkGeneration::Jdk13, Scenario::III) => {
            [P::one(113.0), P::one(123.0), P::one(164.0), P::missing()]
        }
        (6, JdkGeneration::Jdk14, Scenario::I) => {
            [P::one(44.0), P::one(48.0), P::one(124.0), P::missing()]
        }
        (6, JdkGeneration::Jdk14, Scenario::II) => {
            [P::one(49.0), P::one(53.0), P::one(95.0), P::missing()]
        }
        (6, JdkGeneration::Jdk14, Scenario::III) => {
            [P::one(131.0), P::one(131.0), P::one(228.0), P::missing()]
        }
        (table, _, _) => panic!("no such table: {table}"),
    };
    row[si]
}

use PaperCell as P;

/// The paper's table titles, for report rendering.
pub fn table_title(table: usize) -> &'static str {
    match table {
        1 => "Table 1: Baseline 1 — Local Execution (processing overhead), fast / slow machine",
        2 => "Table 2: Baseline 2 — RMI Execution, without Restore (one-way traffic)",
        3 => "Table 3: Baseline 3 — RMI Execution with Restore on local machine (no network)",
        4 => "Table 4: RMI Execution with Restore (two-way traffic)",
        5 => "Table 5: NRMI (Call-by-copy-restore); JDK 1.4 cells: portable / optimized",
        6 => "Table 6: Call-by-Reference with Remote References (RMI)",
        _ => "unknown table",
    }
}

/// Formats a published cell the way the paper prints it.
pub fn format_paper_cell(cell: PaperCell) -> String {
    fn fmt(v: f64) -> String {
        if v < 1.0 {
            "<1".to_owned()
        } else {
            format!("{v:.0}")
        }
    }
    match (cell.primary, cell.secondary) {
        (None, _) => "-".to_owned(),
        (Some(a), None) => fmt(a),
        (Some(a), Some(b)) => format!("{} / {}", fmt(a), fmt(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_check_published_values() {
        // Table 5, JDK 1.4, scenario I, 1024 nodes: 93 / 82.
        let c = paper_cell(5, Scenario::I, JdkGeneration::Jdk14, 1024);
        assert_eq!(c, PaperCell::pair(93.0, 82.0));
        // Table 2, JDK 1.4, I, 1024: 33.
        let c = paper_cell(2, Scenario::I, JdkGeneration::Jdk14, 1024);
        assert_eq!(c.primary, Some(33.0));
        // Table 6 1024 runs failed.
        let c = paper_cell(6, Scenario::III, JdkGeneration::Jdk14, 1024);
        assert_eq!(c, PaperCell::missing());
    }

    #[test]
    fn formatting() {
        assert_eq!(format_paper_cell(PaperCell::one(0.5)), "<1");
        assert_eq!(format_paper_cell(PaperCell::one(12.0)), "12");
        assert_eq!(format_paper_cell(PaperCell::pair(5.0, 4.0)), "5 / 4");
        assert_eq!(format_paper_cell(PaperCell::missing()), "-");
    }

    #[test]
    fn paper_internal_consistency_nrmi_within_30pct_of_rmi() {
        // §5.3.3: optimized NRMI ≈ 20% over RMI-with-restore on 1.4.
        for scenario in Scenario::ALL {
            let nrmi = paper_cell(5, scenario, JdkGeneration::Jdk14, 1024)
                .secondary
                .unwrap();
            let rmi = paper_cell(4, scenario, JdkGeneration::Jdk14, 1024)
                .primary
                .unwrap();
            assert!(
                nrmi <= rmi * 1.30 || nrmi <= rmi + 5.0,
                "{scenario:?}: {nrmi} vs {rmi}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no such benchmark size")]
    fn bad_size_panics() {
        let _ = paper_cell(1, Scenario::I, JdkGeneration::Jdk14, 100);
    }
}
