//! Hand-written restore over plain call-by-copy RMI (§5.3.2).
//!
//! "Consider how a programmer can replay the server changes on the
//! client using regular Java RMI" — this module is that programmer. It
//! implements the three emulation strategies the paper walks through,
//! each paired with the call-by-copy service methods in
//! [`workload`](crate::workload):
//!
//! * **Scenario I** — return the parameter as the return value and
//!   reassign the caller's reference (plus the boilerplate of a combined
//!   return type when the method already returns something).
//! * **Scenario II** — the tree shape is unchanged, so traverse the
//!   original and returned trees *in lockstep* and reassign each alias
//!   to the corresponding node of the returned tree.
//! * **Scenario III** — shapes diverge and mutated nodes may be
//!   unlinked, so the server builds a **shadow tree** of the original
//!   structure before mutating and ships it back too; the client walks
//!   original-vs-shadow to map every original node to its mutated
//!   version, then reassigns root and aliases.
//!
//! Note what NRMI spares the user: all of this code, plus the global
//! knowledge it demands (every alias, and what the server changed).
//! [`loc`] records the paper's lines-of-code accounting for it.

use std::collections::HashMap;

use nrmi_core::{CallOptions, NrmiError, PassMode, Session};
use nrmi_heap::{Heap, HeapAccess, ObjId, Value};

use crate::workload::Scenario;

/// The client's view after a manual-restore call: the (reassigned) root
/// and the (reassigned) aliases. Under manual emulation the caller ends
/// up pointing at *replacement* objects — unlike NRMI, which preserves
/// object identity.
#[derive(Clone, Debug)]
pub struct ManualOutcome {
    /// The new root reference.
    pub root: ObjId,
    /// The reassigned aliases, in the same order as the inputs.
    pub aliases: Vec<ObjId>,
}

/// Performs one call-by-copy remote call plus the scenario's hand-written
/// client-side restore, exactly as the paper's §5.3.2 prescribes.
///
/// # Errors
/// Remote-call failures, or heap errors during the fix-up traversals.
pub fn manual_restore_call(
    session: &mut Session,
    service: &str,
    scenario: Scenario,
    root: ObjId,
    aliases: &[ObjId],
) -> Result<ManualOutcome, NrmiError> {
    let copy = CallOptions::forced(PassMode::Copy);
    match scenario {
        Scenario::I => {
            // "The parameter just has to be returned as the return value
            // of the remote method. Once the remote call completes, the
            // reference pointing to the original data structure gets
            // reassigned to point to the return value."
            let ret = session.call_with(service, "mutate_return", &[Value::Ref(root)], copy)?;
            let new_root = ret
                .as_ref_id()
                .ok_or_else(|| NrmiError::Protocol("manual I: expected tree return".into()))?;
            Ok(ManualOutcome {
                root: new_root,
                aliases: Vec::new(),
            })
        }
        Scenario::II => {
            // "Both the original and the modified trees (that are now
            // isomorphic) can be traversed simultaneously. Upon
            // encountering each node, all aliases should be reassigned."
            let ret = session.call_with(service, "mutate_return", &[Value::Ref(root)], copy)?;
            let new_root = ret
                .as_ref_id()
                .ok_or_else(|| NrmiError::Protocol("manual II: expected tree return".into()))?;
            let map = lockstep_map(session.heap(), root, new_root)?;
            let aliases = translate_aliases(&map, aliases, "II")?;
            Ok(ManualOutcome {
                root: new_root,
                aliases,
            })
        }
        Scenario::III => {
            // "The simplest way to do it is by having the remote method
            // create a 'shadow tree' of its tree parameter prior to
            // making any changes... Then both the parameter tree and the
            // 'shadow tree' are returned to the caller."
            let ret = session.call_with(service, "mutate_shadow", &[Value::Ref(root)], copy)?;
            let pair = ret
                .as_ref_id()
                .ok_or_else(|| NrmiError::Protocol("manual III: expected pair return".into()))?;
            let heap = session.heap();
            let new_root = heap
                .get_ref(pair, "first")?
                .ok_or_else(|| NrmiError::Protocol("manual III: missing tree".into()))?;
            let shadow = heap
                .get_ref(pair, "second")?
                .ok_or_else(|| NrmiError::Protocol("manual III: missing shadow".into()))?;
            // Walk original structure against the shadow: shadow.orig is
            // the mutated version of the corresponding original node.
            let map = shadow_map(heap, root, shadow)?;
            let aliases = translate_aliases(&map, aliases, "III")?;
            Ok(ManualOutcome {
                root: new_root,
                aliases,
            })
        }
    }
}

fn translate_aliases(
    map: &HashMap<ObjId, ObjId>,
    aliases: &[ObjId],
    scenario: &str,
) -> Result<Vec<ObjId>, NrmiError> {
    aliases
        .iter()
        .map(|a| {
            map.get(a).copied().ok_or_else(|| {
                NrmiError::Protocol(format!("manual {scenario}: alias target not found in map"))
            })
        })
        .collect()
}

/// Simultaneous traversal of two isomorphic trees, producing the
/// original → replacement node map (scenario II's fix-up).
///
/// # Errors
/// [`NrmiError::Protocol`] if the trees turn out not to be isomorphic
/// (the scenario's contract was violated).
pub fn lockstep_map(
    heap: &mut Heap,
    original: ObjId,
    replacement: ObjId,
) -> Result<HashMap<ObjId, ObjId>, NrmiError> {
    let mut map = HashMap::new();
    let mut stack = vec![(original, replacement)];
    while let Some((orig, repl)) = stack.pop() {
        if map.insert(orig, repl).is_some() {
            continue; // shared subtree already mapped
        }
        for side in ["left", "right"] {
            let o = heap.get_ref(orig, side)?;
            let r = heap.get_ref(repl, side)?;
            match (o, r) {
                (Some(o), Some(r)) => stack.push((o, r)),
                (None, None) => {}
                _ => {
                    return Err(NrmiError::Protocol(
                        "manual II: trees are not isomorphic".into(),
                    ))
                }
            }
        }
    }
    Ok(map)
}

/// Walks the client's original tree against the returned shadow tree,
/// producing the original → mutated-version map (scenario III's fix-up).
/// The shadow mirrors the *pre-mutation* structure, so this works even
/// though the mutated tree's shape diverged and some mutated nodes are
/// no longer linked to it.
///
/// # Errors
/// [`NrmiError::Protocol`] if the shadow does not mirror the original.
pub fn shadow_map(
    heap: &mut Heap,
    original: ObjId,
    shadow: ObjId,
) -> Result<HashMap<ObjId, ObjId>, NrmiError> {
    let mut map = HashMap::new();
    let mut stack = vec![(original, shadow)];
    while let Some((orig, sh)) = stack.pop() {
        let mutated = heap
            .get_ref(sh, "orig")?
            .ok_or_else(|| NrmiError::Protocol("manual III: shadow node missing target".into()))?;
        if map.insert(orig, mutated).is_some() {
            continue;
        }
        for side in ["left", "right"] {
            let o = heap.get_ref(orig, side)?;
            let s = heap.get_ref(sh, side)?;
            match (o, s) {
                (Some(o), Some(s)) => stack.push((o, s)),
                (None, None) => {}
                _ => {
                    return Err(NrmiError::Protocol(
                        "manual III: shadow does not mirror the original".into(),
                    ))
                }
            }
        }
    }
    Ok(map)
}

/// Lines-of-code accounting for the manual emulations, as reported in
/// §5.3.2: "about 45 lines of code were needed in order to define return
/// types. For the second and third benchmark scenario, an extra 16 lines
/// of code were needed to perform the updating traversal. For the third
/// benchmark scenario, about 35 more lines of code were needed for the
/// 'shadow tree'."
pub fn loc(scenario: Scenario) -> LocBreakdown {
    match scenario {
        Scenario::I => LocBreakdown {
            return_types: 45,
            traversal: 0,
            shadow: 0,
        },
        Scenario::II => LocBreakdown {
            return_types: 45,
            traversal: 16,
            shadow: 0,
        },
        Scenario::III => LocBreakdown {
            return_types: 45,
            traversal: 16,
            shadow: 35,
        },
    }
}

/// Extra lines a plain-RMI programmer writes per remote call, versus ~0
/// for NRMI (implement `Restorable`, look up the method).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocBreakdown {
    /// Combined return-type definitions and plumbing.
    pub return_types: usize,
    /// The updating (lockstep) traversal.
    pub traversal: usize,
    /// Shadow-tree construction and handling.
    pub shadow: usize,
}

impl LocBreakdown {
    /// Total extra lines.
    pub fn total(&self) -> usize {
        self.return_types + self.traversal + self.shadow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{
        bench_classes, build_workload, mutate_tree, scenario_service, BenchClasses,
    };
    use nrmi_heap::graph::isomorphic_multi;
    use nrmi_transport::MachineSpec;

    /// End-to-end check: the manual emulation satisfies the paper's
    /// invariant ("all the changes are visible to the caller") for each
    /// scenario, verified against a local-execution oracle.
    fn manual_matches_local_oracle(scenario: Scenario, size: usize, seed: u64) {
        let classes: BenchClasses = bench_classes();

        // Local oracle.
        let mut oracle = Heap::new(classes.registry.clone());
        let w_oracle = build_workload(&mut oracle, &classes, scenario, size, seed).unwrap();
        mutate_tree(&mut oracle, w_oracle.root, scenario, seed).unwrap();
        let mut oracle_roots = vec![w_oracle.root];
        oracle_roots.extend(&w_oracle.aliases);

        // Remote + manual restore.
        let svc = scenario_service(
            &classes,
            scenario,
            seed,
            None,
            MachineSpec::fast(),
            nrmi_core::JdkGeneration::Jdk14,
        );
        let mut session = Session::builder(classes.registry.clone())
            .serve("bench", Box::new(svc))
            .build();
        let w = build_workload(session.heap(), &classes, scenario, size, seed).unwrap();
        let outcome =
            manual_restore_call(&mut session, "bench", scenario, w.root, &w.aliases).unwrap();
        let mut client_roots = vec![outcome.root];
        client_roots.extend(&outcome.aliases);

        assert!(
            isomorphic_multi(&oracle, &oracle_roots, session.heap(), &client_roots).unwrap(),
            "manual restore for scenario {scenario:?} diverged from local execution"
        );
    }

    #[test]
    fn manual_scenario_i_matches_local() {
        manual_matches_local_oracle(Scenario::I, 32, 11);
        manual_matches_local_oracle(Scenario::I, 64, 12);
    }

    #[test]
    fn manual_scenario_ii_matches_local() {
        manual_matches_local_oracle(Scenario::II, 32, 21);
        manual_matches_local_oracle(Scenario::II, 64, 22);
    }

    #[test]
    fn manual_scenario_iii_matches_local() {
        manual_matches_local_oracle(Scenario::III, 32, 31);
        manual_matches_local_oracle(Scenario::III, 64, 32);
    }

    #[test]
    fn manual_replaces_identity_nrmi_preserves_it() {
        // The qualitative difference the paper's usability argument
        // rests on: after manual restore the caller holds NEW objects;
        // after NRMI copy-restore it holds the SAME objects.
        let classes = bench_classes();
        let seed = 77;

        let svc = scenario_service(
            &classes,
            Scenario::II,
            seed,
            None,
            MachineSpec::fast(),
            nrmi_core::JdkGeneration::Jdk14,
        );
        let mut session = Session::builder(classes.registry.clone())
            .serve("bench", Box::new(svc))
            .build();
        let w = build_workload(session.heap(), &classes, Scenario::II, 16, seed).unwrap();
        let outcome =
            manual_restore_call(&mut session, "bench", Scenario::II, w.root, &w.aliases).unwrap();
        assert_ne!(
            outcome.root, w.root,
            "manual restore reassigns to a replacement"
        );

        let svc2 = scenario_service(
            &classes,
            Scenario::II,
            seed,
            None,
            MachineSpec::fast(),
            nrmi_core::JdkGeneration::Jdk14,
        );
        let mut session2 = Session::builder(classes.registry.clone())
            .serve("bench", Box::new(svc2))
            .build();
        let w2 = build_workload(session2.heap(), &classes, Scenario::II, 16, seed).unwrap();
        session2
            .call_with(
                "bench",
                "mutate",
                &[Value::Ref(w2.root)],
                CallOptions::forced(PassMode::CopyRestore),
            )
            .unwrap();
        // Same root object, mutated in place; aliases untouched.
        let nodes = nrmi_heap::tree::collect_nodes(session2.heap(), w2.root).unwrap();
        assert!(nodes.contains(&w2.root));
    }

    #[test]
    fn loc_accounting_matches_paper() {
        assert_eq!(loc(Scenario::I).total(), 45);
        assert_eq!(loc(Scenario::II).total(), 61);
        assert_eq!(
            loc(Scenario::III).total(),
            96,
            "up to ~100 lines per remote call"
        );
    }

    #[test]
    fn lockstep_rejects_non_isomorphic() {
        let classes = bench_classes();
        let mut heap = Heap::new(classes.registry.clone());
        let t1 = nrmi_heap::tree::build_random_tree(
            &mut heap,
            &nrmi_heap::tree::TreeClasses { tree: classes.tree },
            8,
            1,
        )
        .unwrap();
        let t2 = nrmi_heap::tree::build_random_tree(
            &mut heap,
            &nrmi_heap::tree::TreeClasses { tree: classes.tree },
            9,
            2,
        )
        .unwrap();
        assert!(lockstep_map(&mut heap, t1, t2).is_err());
    }
}
