//! The semantics matrix: every calling mode × every workload scenario,
//! machine-checked for network transparency.
//!
//! This is the paper's Sections 2–4 as one executable table. For each
//! cell we run the scenario's mutation once locally (the oracle) and
//! once remotely under the mode, then compare the caller-visible graphs
//! (argument + all aliases) up to isomorphism:
//!
//! * **copy** — never transparent under mutation (changes lost);
//! * **copy-restore / delta** — always transparent (the paper's claim);
//! * **DCE RPC** — diverges only when mutated data becomes unreachable
//!   from the parameters AND the caller can still see it through an
//!   alias (scenario III). Scenario I unlinks nodes too, but with no
//!   aliases nobody can observe the dropped updates — DCE is
//!   *observationally* transparent there, which is precisely the
//!   paper's point about when the approximation is "good enough";
//! * **remote-ref** — transparent for caller-owned data, but
//!   server-allocated nodes remain remote (the structural scenarios
//!   splice nodes), so the caller-side graph holds stubs where the
//!   local oracle holds trees.
//!
//! Each cell runs several seeds; one observed divergence marks the cell.

use nrmi_core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi_heap::graph::first_difference;
use nrmi_heap::{Heap, Value};

use crate::workload::{bench_classes, build_workload, mutate_tree, Scenario};

/// One checked cell.
#[derive(Clone, Debug)]
pub struct MatrixCell {
    /// Calling semantics label.
    pub mode: &'static str,
    /// Workload scenario.
    pub scenario: Scenario,
    /// `None` = transparent; `Some(reason)` = first divergence.
    pub divergence: Option<String>,
}

// Sample seeds. The dce-rpc/III divergence (an aliased, data-changed node
// detached mid-call) is a property of the seed's mutation schedule, so the
// set must contain seeds that land in that region; these were re-drawn for
// the vendored deterministic RNG (seeds 4/5/8/13 detach aliased nodes).
const SEEDS: [u64; 6] = [4, 5, 8, 13, 42, 900913];
const SIZE: usize = 48;

fn run_seed(opts: CallOptions, scenario: Scenario, seed: u64) -> Option<String> {
    let classes = bench_classes();

    // Oracle: local execution.
    let mut oracle = Heap::new(classes.registry.clone());
    let w_oracle = build_workload(&mut oracle, &classes, scenario, SIZE, seed).expect("workload");
    mutate_tree(&mut oracle, w_oracle.root, scenario, seed).expect("mutation");
    let mut oracle_roots = vec![w_oracle.root];
    oracle_roots.extend(&w_oracle.aliases);

    // Remote execution.
    let mut session = Session::builder(classes.registry.clone())
        .serve(
            "mutator",
            Box::new(FnService::new(move |_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                mutate_tree(heap, root, scenario, seed)?;
                Ok(Value::Null)
            })),
        )
        .build();
    let w = build_workload(session.heap(), &classes, scenario, SIZE, seed).expect("workload");
    session
        .call_with("mutator", "run", &[Value::Ref(w.root)], opts)
        .expect("remote call");
    let mut client_roots = vec![w.root];
    client_roots.extend(&w.aliases);

    first_difference(&oracle, &oracle_roots, session.heap(), &client_roots)
        .unwrap_or_else(|e| Some(format!("(comparison failed: {e})")))
}

fn run_cell(mode: &'static str, opts: CallOptions, scenario: Scenario) -> MatrixCell {
    let divergence = SEEDS
        .iter()
        .find_map(|&seed| run_seed(opts, scenario, seed).map(|d| format!("seed {seed}: {d}")));
    MatrixCell {
        mode,
        scenario,
        divergence,
    }
}

/// Runs the full matrix.
pub fn run_matrix() -> Vec<MatrixCell> {
    let modes: [(&'static str, CallOptions); 5] = [
        ("copy", CallOptions::forced(PassMode::Copy)),
        ("copy-restore", CallOptions::forced(PassMode::CopyRestore)),
        ("copy-restore+delta", CallOptions::copy_restore_delta()),
        ("dce-rpc", CallOptions::forced(PassMode::DceRpc)),
        ("remote-ref", CallOptions::forced(PassMode::RemoteRef)),
    ];
    let mut cells = Vec::new();
    for (label, opts) in modes {
        for scenario in Scenario::ALL {
            cells.push(run_cell(label, opts, scenario));
        }
    }
    cells
}

/// Renders the matrix in a grid.
pub fn render_matrix(cells: &[MatrixCell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Network-transparency matrix: remote outcome ≡ local outcome? ({SIZE}-node trees)"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>6} {:>6}",
        "semantics", "I", "II", "III"
    );
    let mut modes: Vec<&'static str> = Vec::new();
    for c in cells {
        if !modes.contains(&c.mode) {
            modes.push(c.mode);
        }
    }
    for mode in modes {
        let _ = write!(out, "{mode:<20}");
        for scenario in Scenario::ALL {
            let cell = cells
                .iter()
                .find(|c| c.mode == mode && c.scenario == scenario)
                .expect("full matrix");
            let mark = if cell.divergence.is_none() {
                "yes"
            } else {
                "NO"
            };
            let _ = write!(out, " {mark:>6}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "\nfirst divergences:");
    for c in cells {
        if let Some(d) = &c.divergence {
            let _ = writeln!(out, "  {} / {}: {}", c.mode, c.scenario.label(), d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(cells: &'a [MatrixCell], mode: &str, scenario: Scenario) -> &'a MatrixCell {
        cells
            .iter()
            .find(|c| c.mode == mode && c.scenario == scenario)
            .expect("cell")
    }

    #[test]
    fn matrix_matches_the_papers_semantics() {
        let cells = run_matrix();
        assert_eq!(cells.len(), 15);
        for scenario in Scenario::ALL {
            // Copy-restore (full and delta) is ALWAYS transparent.
            assert!(
                cell(&cells, "copy-restore", scenario).divergence.is_none(),
                "{scenario:?}"
            );
            assert!(
                cell(&cells, "copy-restore+delta", scenario)
                    .divergence
                    .is_none(),
                "{scenario:?}"
            );
            // Plain copy never is (the mutation always changes data).
            assert!(
                cell(&cells, "copy", scenario).divergence.is_some(),
                "{scenario:?}"
            );
        }
        // DCE matches copy-restore when the structure is untouched (II)
        // and — with no aliases to observe the dropped updates — also in
        // scenario I. Scenario III's aliases expose the divergence.
        assert!(cell(&cells, "dce-rpc", Scenario::I).divergence.is_none());
        assert!(cell(&cells, "dce-rpc", Scenario::II).divergence.is_none());
        assert!(cell(&cells, "dce-rpc", Scenario::III).divergence.is_some());
        // Remote-ref: scenario II (data only) is fully transparent; the
        // structural scenarios splice SERVER-resident nodes, which the
        // caller sees as stubs — transparent semantics, split heaps.
        assert!(cell(&cells, "remote-ref", Scenario::II)
            .divergence
            .is_none());
        assert!(cell(&cells, "remote-ref", Scenario::I).divergence.is_some());
        assert!(cell(&cells, "remote-ref", Scenario::III)
            .divergence
            .is_some());
    }

    #[test]
    fn matrix_renders() {
        let cells = run_matrix();
        let text = render_matrix(&cells);
        assert!(text.contains("semantics"));
        assert!(text.contains("copy-restore"));
        assert!(text.contains("first divergences"));
    }
}
