//! Benchmark workloads: the paper's three scenarios (§5.3.2).
//!
//! "Each benchmark consists of a single randomly-generated binary tree
//! parameter passed to a remote method. The remote method performs
//! random changes to its input tree. The invariant maintained is that
//! all the changes are visible to the caller."
//!
//! * **Scenario I** — no client-side aliases into the tree; data and
//!   structure may change.
//! * **Scenario II** — aliases exist, but the tree's shape is preserved;
//!   only node data changes.
//! * **Scenario III** — aliases exist and the structure changes
//!   arbitrarily (nodes unlinked, spliced, shared).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nrmi_core::NrmiError;
use nrmi_heap::tree::{register_tree_classes, TreeClasses};
use nrmi_heap::{ClassId, ClassRegistry, Heap, HeapAccess, ObjId, SharedRegistry, Value};

/// The paper's three aliasing scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// No aliases; arbitrary changes.
    I,
    /// Aliases; data-only changes (shape preserved).
    II,
    /// Aliases; arbitrary structural changes.
    III,
}

impl Scenario {
    /// All scenarios, in the paper's order.
    pub const ALL: [Scenario; 3] = [Scenario::I, Scenario::II, Scenario::III];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::I => "I",
            Scenario::II => "II",
            Scenario::III => "III",
        }
    }

    /// Number of aliases the client keeps into the tree.
    pub fn alias_count(self, size: usize) -> usize {
        match self {
            Scenario::I => 0,
            // A handful of aliases, growing slowly with the tree.
            Scenario::II | Scenario::III => (size / 16).clamp(2, 16),
        }
    }

    /// True if the mutator may change the tree's shape.
    pub fn structural(self) -> bool {
        !matches!(self, Scenario::II)
    }
}

/// The benchmark tree sizes of Tables 1–6.
pub const TREE_SIZES: [usize; 4] = [16, 64, 256, 1024];

/// Registry + class handles shared by every benchmark component.
#[derive(Clone, Debug)]
pub struct BenchClasses {
    /// The shared registry snapshot.
    pub registry: SharedRegistry,
    /// The restorable `Tree` class.
    pub tree: ClassId,
    /// `ShadowNode { orig, left, right }` for the scenario-III manual
    /// emulation.
    pub shadow: ClassId,
    /// `Pair { first, second }` for multi-value returns.
    pub pair: ClassId,
}

/// Registers the benchmark classes and freezes the registry.
pub fn bench_classes() -> BenchClasses {
    let mut reg = ClassRegistry::new();
    let TreeClasses { tree } = register_tree_classes(&mut reg);
    let shadow = reg
        .define("ShadowNode")
        .field_ref("orig")
        .field_ref("left")
        .field_ref("right")
        .serializable()
        .register();
    let pair = reg
        .define("Pair")
        .field_ref("first")
        .field_ref("second")
        .serializable()
        .register();
    BenchClasses {
        registry: reg.snapshot(),
        tree,
        shadow,
        pair,
    }
}

/// A generated workload instance on some heap: the tree root plus the
/// client's aliases into its interior.
#[derive(Clone, Debug)]
pub struct WorkloadInstance {
    /// The tree root (the remote call's argument).
    pub root: ObjId,
    /// Aliases into the tree's interior (empty for scenario I).
    pub aliases: Vec<ObjId>,
}

/// Builds the benchmark tree (exactly `size` nodes, seeded) and the
/// scenario's aliases into `heap`.
///
/// # Errors
/// Propagates allocation errors.
pub fn build_workload(
    heap: &mut Heap,
    classes: &BenchClasses,
    scenario: Scenario,
    size: usize,
    seed: u64,
) -> Result<WorkloadInstance, nrmi_heap::HeapError> {
    let tree_classes = TreeClasses { tree: classes.tree };
    let root = nrmi_heap::tree::build_random_tree(heap, &tree_classes, size, seed)?;
    let nodes = nrmi_heap::tree::collect_nodes(heap, root)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa11a5);
    let alias_count = scenario.alias_count(size);
    let mut aliases = Vec::with_capacity(alias_count);
    for _ in 0..alias_count {
        // Interior preference: skip the root itself when possible.
        let idx = if nodes.len() > 1 {
            rng.gen_range(1..nodes.len())
        } else {
            0
        };
        aliases.push(nodes[idx]);
    }
    Ok(WorkloadInstance { root, aliases })
}

/// What the mutator did — drives the simulated computation charge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationReport {
    /// Nodes visited by the mutation pass.
    pub nodes_visited: usize,
    /// Data fields rewritten.
    pub data_changes: usize,
    /// Structural edits (children nulled/swapped, nodes spliced).
    pub structural_changes: usize,
    /// Nodes allocated by the mutation.
    pub new_nodes: usize,
}

/// Walks the tree via [`HeapAccess`] (so it also runs over remote
/// pointers), returning nodes in preorder. Cycle-safe.
///
/// # Errors
/// Propagates heap/proxy access errors.
pub fn walk_tree(
    heap: &mut dyn HeapAccess,
    root: ObjId,
) -> Result<Vec<ObjId>, nrmi_heap::HeapError> {
    let mut order = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if !seen.insert(node) {
            continue;
        }
        order.push(node);
        // Push right first so left is visited first.
        if let Some(right) = heap.get_ref(node, "right")? {
            stack.push(right);
        }
        if let Some(left) = heap.get_ref(node, "left")? {
            stack.push(left);
        }
    }
    Ok(order)
}

/// The remote method's "random changes" (§5.3.2), deterministic per
/// seed. Scenario II touches only `data`; I and III also unlink, swap,
/// and splice (III's client-side aliases are what make that hard to
/// emulate by hand).
///
/// # Errors
/// Propagates heap/proxy access errors.
pub fn mutate_tree(
    heap: &mut dyn HeapAccess,
    root: ObjId,
    scenario: Scenario,
    seed: u64,
) -> Result<MutationReport, nrmi_heap::HeapError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut report = MutationReport::default();
    let nodes = walk_tree(heap, root)?;
    report.nodes_visited = nodes.len();
    let tree_class = heap.class_of(root)?;

    // Data pass: roughly half the nodes get new values.
    for &node in &nodes {
        if rng.gen_bool(0.5) {
            heap.set_field(node, "data", Value::Int(rng.gen_range(-1000..1000)))?;
            report.data_changes += 1;
        }
    }

    // Structural pass (scenarios I and III).
    if scenario.structural() {
        let edits = (nodes.len() / 8).max(2);
        for _ in 0..edits {
            let node = nodes[rng.gen_range(0..nodes.len())];
            match rng.gen_range(0..4) {
                0 => {
                    // Unlink a child (it may still be aliased!).
                    let side = if rng.gen_bool(0.5) { "left" } else { "right" };
                    if heap.get_ref(node, side)?.is_some() {
                        heap.set_field(node, side, Value::Null)?;
                        report.structural_changes += 1;
                    }
                }
                1 => {
                    // Swap children.
                    let l = heap.get_field(node, "left")?;
                    let r = heap.get_field(node, "right")?;
                    heap.set_field(node, "left", r)?;
                    heap.set_field(node, "right", l)?;
                    report.structural_changes += 1;
                }
                2 => {
                    // Splice a fresh node above a child (like `foo`).
                    let side = if rng.gen_bool(0.5) { "left" } else { "right" };
                    let child = heap.get_field(node, side)?;
                    let fresh = heap.alloc_raw(
                        tree_class,
                        vec![Value::Int(rng.gen_range(-1000..1000)), child, Value::Null],
                    )?;
                    heap.set_field(node, side, Value::Ref(fresh))?;
                    report.structural_changes += 1;
                    report.new_nodes += 1;
                }
                _ => {
                    // Share: point a child slot at another subtree
                    // (creates aliasing within the tree, but no cycles:
                    // target is drawn from the original preorder, and we
                    // only relink *forward* in that order).
                    let pos = nodes.iter().position(|&n| n == node).unwrap_or(0);
                    if pos + 1 < nodes.len() {
                        let target = nodes[rng.gen_range(pos + 1..nodes.len())];
                        heap.set_field(node, "right", Value::Ref(target))?;
                        report.structural_changes += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Per-node computation cost of the mutation (µs at reference speed),
/// calibrated so a local run regenerates Table 1's shape.
pub fn mutation_cost_us_per_node(scenario: Scenario, jdk: nrmi_core::JdkGeneration) -> f64 {
    use nrmi_core::JdkGeneration::*;
    match (scenario, jdk) {
        (Scenario::I, Jdk13) => 5.9,
        (Scenario::I, Jdk14) => 3.9,
        (Scenario::II, Jdk13) => 14.6,
        (Scenario::II, Jdk14) => 11.7,
        (Scenario::III, Jdk13) => 18.5,
        (Scenario::III, Jdk14) => 14.6,
    }
}

/// Builds the benchmark service closure: mutates its tree argument and
/// charges the simulated environment for the computation (the Table 1
/// baseline work). Methods:
///
/// * `"mutate"` — mutate in place, return null (NRMI and one-way paths);
/// * `"mutate_return"` — mutate and return the tree (manual I and II);
/// * `"mutate_shadow"` — build a shadow tree first, mutate, return
///   `Pair(tree, shadow)` (manual III).
pub fn scenario_service(
    classes: &BenchClasses,
    scenario: Scenario,
    seed: u64,
    env: Option<nrmi_transport::SimEnv>,
    machine: nrmi_transport::MachineSpec,
    jdk: nrmi_core::JdkGeneration,
) -> ScenarioService {
    let shadow_class = classes.shadow;
    let pair_class = classes.pair;
    nrmi_core::FnService::new(Box::new(
        move |method: &str, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args
                .first()
                .and_then(Value::as_ref_id)
                .ok_or_else(|| NrmiError::app("expected a tree argument"))?;
            let charge = |report: &MutationReport| {
                if let Some(env) = &env {
                    env.charge_cpu(
                        &machine,
                        report.nodes_visited as f64 * mutation_cost_us_per_node(scenario, jdk),
                    );
                }
            };
            match method {
                "mutate" => {
                    let report = mutate_tree(heap, root, scenario, seed)?;
                    charge(&report);
                    Ok(Value::Null)
                }
                "mutate_return" => {
                    let report = mutate_tree(heap, root, scenario, seed)?;
                    charge(&report);
                    Ok(Value::Ref(root))
                }
                "mutate_shadow" => {
                    // Shadow BEFORE mutation: mirrors the original structure
                    // and pins every original node (§5.3.2, scenario III).
                    let shadow = build_shadow(heap, root, shadow_class)?;
                    let report = mutate_tree(heap, root, scenario, seed)?;
                    charge(&report);
                    let pair =
                        heap.alloc_raw(pair_class, vec![Value::Ref(root), Value::Ref(shadow)])?;
                    Ok(Value::Ref(pair))
                }
                other => Err(NrmiError::app(format!("unknown benchmark method {other}"))),
            }
        },
    ))
}

/// The boxed service type returned by [`scenario_service`].
pub type ScenarioService = nrmi_core::FnService<
    Box<dyn FnMut(&str, &[Value], &mut dyn HeapAccess) -> Result<Value, NrmiError> + Send>,
>;

/// Builds the scenario-III "shadow tree": an isomorphic mirror of the
/// (pre-mutation) tree whose every node points at the corresponding tree
/// node. The paper: "The 'shadow tree' points to the original tree's
/// data and serves as a reminder of the structure of the original tree."
///
/// # Errors
/// Propagates heap/proxy access errors.
pub fn build_shadow(
    heap: &mut dyn HeapAccess,
    node: ObjId,
    shadow_class: ClassId,
) -> Result<ObjId, nrmi_heap::HeapError> {
    let left = heap.get_ref(node, "left")?;
    let right = heap.get_ref(node, "right")?;
    let left_shadow = match left {
        Some(child) => Value::Ref(build_shadow(heap, child, shadow_class)?),
        None => Value::Null,
    };
    let right_shadow = match right {
        Some(child) => Value::Ref(build_shadow(heap, child, shadow_class)?),
        None => Value::Null,
    };
    heap.alloc_raw(
        shadow_class,
        vec![Value::Ref(node), left_shadow, right_shadow],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_and_classes() -> (Heap, BenchClasses) {
        let classes = bench_classes();
        (Heap::new(classes.registry.clone()), classes)
    }

    #[test]
    fn workload_sizes_and_aliases() {
        let (mut heap, classes) = heap_and_classes();
        for scenario in Scenario::ALL {
            let w = build_workload(&mut heap, &classes, scenario, 64, 1).unwrap();
            let nodes = nrmi_heap::tree::collect_nodes(&heap, w.root).unwrap();
            assert_eq!(nodes.len(), 64);
            assert_eq!(w.aliases.len(), scenario.alias_count(64));
            for alias in &w.aliases {
                assert!(nodes.contains(alias), "aliases point into the tree");
            }
        }
        assert_eq!(Scenario::I.alias_count(1024), 0);
        assert!(Scenario::III.alias_count(1024) >= 2);
    }

    #[test]
    fn mutation_is_deterministic() {
        let (mut h1, c1) = heap_and_classes();
        let (mut h2, _) = heap_and_classes();
        let w1 = build_workload(&mut h1, &c1, Scenario::III, 64, 9).unwrap();
        let w2 = build_workload(&mut h2, &c1, Scenario::III, 64, 9).unwrap();
        let r1 = mutate_tree(&mut h1, w1.root, Scenario::III, 9).unwrap();
        let r2 = mutate_tree(&mut h2, w2.root, Scenario::III, 9).unwrap();
        assert_eq!(r1, r2);
        assert!(nrmi_heap::graph::isomorphic(&h1, w1.root, &h2, w2.root).unwrap());
    }

    #[test]
    fn scenario_ii_preserves_shape() {
        let (mut heap, classes) = heap_and_classes();
        let w = build_workload(&mut heap, &classes, Scenario::II, 128, 3).unwrap();
        let shape_before: Vec<(Option<ObjId>, Option<ObjId>)> = walk_tree(&mut heap, w.root)
            .unwrap()
            .iter()
            .map(|&n| {
                (
                    heap.get_ref(n, "left").unwrap(),
                    heap.get_ref(n, "right").unwrap(),
                )
            })
            .collect();
        let report = mutate_tree(&mut heap, w.root, Scenario::II, 3).unwrap();
        assert_eq!(report.structural_changes, 0);
        assert_eq!(report.new_nodes, 0);
        assert!(report.data_changes > 0);
        let shape_after: Vec<(Option<ObjId>, Option<ObjId>)> = walk_tree(&mut heap, w.root)
            .unwrap()
            .iter()
            .map(|&n| {
                (
                    heap.get_ref(n, "left").unwrap(),
                    heap.get_ref(n, "right").unwrap(),
                )
            })
            .collect();
        assert_eq!(
            shape_before, shape_after,
            "scenario II must not change structure"
        );
    }

    #[test]
    fn scenario_iii_changes_structure() {
        let (mut heap, classes) = heap_and_classes();
        let w = build_workload(&mut heap, &classes, Scenario::III, 128, 4).unwrap();
        let report = mutate_tree(&mut heap, w.root, Scenario::III, 4).unwrap();
        assert!(report.structural_changes > 0);
    }

    #[test]
    fn mutation_never_creates_cycles() {
        let (mut heap, classes) = heap_and_classes();
        for seed in 0..20 {
            let w = build_workload(&mut heap, &classes, Scenario::III, 64, seed).unwrap();
            mutate_tree(&mut heap, w.root, Scenario::III, seed).unwrap();
            // A cycle would make this loop diverge; walk_tree is
            // cycle-safe, so instead verify: following left/right from
            // any node never revisits an ancestor.
            assert!(acyclic(&mut heap, w.root), "seed {seed} created a cycle");
        }
    }

    fn acyclic(heap: &mut Heap, root: ObjId) -> bool {
        fn visit(
            heap: &mut Heap,
            node: ObjId,
            path: &mut std::collections::HashSet<ObjId>,
        ) -> bool {
            if !path.insert(node) {
                return false;
            }
            for side in ["left", "right"] {
                if let Some(child) = heap.get_ref(node, side).unwrap() {
                    if !visit(heap, child, path) {
                        return false;
                    }
                }
            }
            path.remove(&node);
            true
        }
        visit(heap, root, &mut std::collections::HashSet::new())
    }

    #[test]
    fn shadow_mirrors_structure_and_pins_originals() {
        let (mut heap, classes) = heap_and_classes();
        let w = build_workload(&mut heap, &classes, Scenario::III, 32, 5).unwrap();
        let shadow = build_shadow(&mut heap, w.root, classes.shadow).unwrap();
        // Shadow root points at the tree root.
        assert_eq!(heap.get_ref(shadow, "orig").unwrap(), Some(w.root));
        // Walk both in lockstep: every shadow node mirrors one tree node.
        fn check(heap: &mut Heap, shadow: ObjId, node: ObjId) -> usize {
            assert_eq!(heap.get_ref(shadow, "orig").unwrap(), Some(node));
            let mut count = 1;
            for side in ["left", "right"] {
                let s_child = heap.get_ref(shadow, side).unwrap();
                let n_child = heap.get_ref(node, side).unwrap();
                assert_eq!(s_child.is_some(), n_child.is_some());
                if let (Some(s), Some(n)) = (s_child, n_child) {
                    count += check(heap, s, n);
                }
            }
            count
        }
        assert_eq!(check(&mut heap, shadow, w.root), 32);
    }

    #[test]
    fn scenario_iii_mutations_create_in_graph_sharing() {
        // The "share" edit points a child slot at another subtree; over
        // several seeds the post-mutation graphs must exhibit in-degree
        // ≥ 2 nodes — the aliasing that makes scenario III hard to
        // emulate by hand.
        let mut saw_sharing = false;
        for seed in 0..10 {
            let (mut heap, classes) = heap_and_classes();
            let w = build_workload(&mut heap, &classes, Scenario::III, 96, seed).unwrap();
            mutate_tree(&mut heap, w.root, Scenario::III, seed).unwrap();
            let stats = nrmi_heap::graph::graph_stats(&heap, &[w.root]).unwrap();
            assert!(stats.objects > 0 && stats.edges >= stats.objects - 1);
            if stats.shared_objects > 0 {
                saw_sharing = true;
            }
        }
        assert!(
            saw_sharing,
            "III should produce shared subtrees across 10 seeds"
        );
    }

    #[test]
    fn mutation_costs_ordered_like_table_1() {
        use nrmi_core::JdkGeneration::*;
        for jdk in [Jdk13, Jdk14] {
            let i = mutation_cost_us_per_node(Scenario::I, jdk);
            let ii = mutation_cost_us_per_node(Scenario::II, jdk);
            let iii = mutation_cost_us_per_node(Scenario::III, jdk);
            assert!(i < ii && ii < iii, "{jdk:?}");
        }
        assert!(
            mutation_cost_us_per_node(Scenario::I, Jdk13)
                > mutation_cost_us_per_node(Scenario::I, Jdk14)
        );
    }
}
