//! Warm-call ablation (§5.2.4, optimization 2, extended to *requests*).
//!
//! The delta-reply sweep ([`crate::delta_sweep`]) showed that replies
//! need not re-ship unchanged graphs. Warm calls close the other half of
//! the loop: once a client has seeded a session cache, later requests
//! ship only the dirty slots, new objects, and frees since the previous
//! call. This module measures that ablation directly — the same
//! `k`-call workload run cold (full copy-restore request each call,
//! today's protocol) and warm (seed once, then request deltas) — while
//! sweeping the per-call mutation rate δ (fraction of tree nodes the
//! *client* dirties between calls).
//!
//! Expected shape: at δ = 0 a warm request is O(1) bytes; at small δ it
//! is proportional to the churn, not the graph; as δ → 1 the delta
//! approaches (and framing-wise can exceed) the full request, which is
//! exactly the eviction threshold a deployment would tune.

use std::time::Instant;

use nrmi_core::{CallOptions, FnService, NrmiError, RemoteService, Session};
use nrmi_heap::{HeapAccess, Value};

use crate::tables::SEED;
use crate::workload::{bench_classes, build_workload, walk_tree, Scenario};

/// Aggregate transfer/latency numbers for one (δ, mode) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmPoint {
    /// Fraction of nodes the client mutates between calls (0.0–1.0).
    pub mutation_rate: f64,
    /// Bytes of the first request (cold: full graph; warm: the seed).
    pub first_request_bytes: usize,
    /// Request bytes summed over the k−1 *steady-state* calls.
    pub steady_request_bytes: usize,
    /// Reply bytes summed over all k calls.
    pub reply_bytes: usize,
    /// Wall-clock microseconds over the k−1 steady-state calls.
    pub steady_us: u128,
}

/// One δ row: the cold and warm measurements side by side.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmRow {
    /// Cold: every call is a full copy-restore request.
    pub cold: WarmPoint,
    /// Warm: call 0 seeds the session cache, calls 1..k ship deltas.
    pub warm: WarmPoint,
}

/// The mutation rates swept.
pub const RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.5];

/// Calls per measurement (1 seed + k−1 steady-state).
pub const CALLS: usize = 8;

/// A read-only service: replies stay tiny in both modes, so the request
/// path dominates and the ablation isolates what warm calls change.
fn sum_service() -> Box<dyn RemoteService> {
    Box::new(FnService::new(
        |_m, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            let mut sum = 0i64;
            for node in walk_tree(heap, root)? {
                sum += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
            }
            Ok(Value::Int(sum as i32))
        },
    ))
}

/// Measures k calls at client mutation rate δ.
///
/// Between calls the client dirties `round(n·δ)` nodes, rotating the
/// window each call so the dirty set is not pinned to one hot region.
fn measure(size: usize, rate: f64, warm: bool) -> WarmPoint {
    let classes = bench_classes();
    let mut session = Session::builder(classes.registry.clone())
        .serve("sum", sum_service())
        .build();
    let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED).expect("workload");
    let nodes = walk_tree(session.heap(), w.root).expect("walk");
    let touch = ((nodes.len() as f64) * rate).round() as usize;
    let opts = CallOptions::copy_restore_delta();

    let mut point = WarmPoint {
        mutation_rate: rate,
        first_request_bytes: 0,
        steady_request_bytes: 0,
        reply_bytes: 0,
        steady_us: 0,
    };
    for call in 0..CALLS {
        let started = Instant::now();
        let stats = if warm {
            session
                .call_warm_with_stats("sum", "sum", &[Value::Ref(w.root)])
                .expect("warm")
                .1
        } else {
            session
                .call_with_stats("sum", "sum", &[Value::Ref(w.root)], opts)
                .expect("cold")
                .1
        };
        let elapsed = started.elapsed().as_micros();
        point.reply_bytes += stats.reply_bytes;
        if call == 0 {
            point.first_request_bytes = stats.request_bytes;
        } else {
            point.steady_request_bytes += stats.request_bytes;
            point.steady_us += elapsed;
        }
        // Client-side churn before the next call.
        for i in 0..touch {
            let node = nodes[(call * touch + i) % nodes.len()];
            let v = session
                .heap()
                .get_field(node, "data")
                .expect("get")
                .as_int()
                .unwrap_or(0);
            session
                .heap()
                .set_field(node, "data", Value::Int(v ^ 0x2a))
                .expect("set");
        }
    }
    point
}

/// Runs the full ablation: each δ in [`RATES`], cold vs warm, on a
/// `size`-node tree.
pub fn run_warm_ablation(size: usize) -> Vec<WarmRow> {
    RATES
        .iter()
        .map(|&rate| WarmRow {
            cold: measure(size, rate, false),
            warm: measure(size, rate, true),
        })
        .collect()
}

/// Renders the ablation as an aligned table.
pub fn render_warm_ablation(size: usize, rows: &[WarmRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Warm-call ablation — {size}-node tree, {CALLS} calls (1 seed + {} steady)",
        CALLS - 1
    );
    let _ = writeln!(
        out,
        "(request bytes: cold re-ships the graph, warm ships the delta)\n"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>8} {:>11} {:>11}",
        "δ", "cold req B", "warm req B", "ratio", "cold µs", "warm µs"
    );
    for row in rows {
        let ratio = if row.warm.steady_request_bytes == 0 {
            f64::INFINITY
        } else {
            row.cold.steady_request_bytes as f64 / row.warm.steady_request_bytes as f64
        };
        let _ = writeln!(
            out,
            "{:>5.0}% {:>12} {:>12} {:>7.1}x {:>11} {:>11}",
            row.cold.mutation_rate * 100.0,
            row.cold.steady_request_bytes,
            row.warm.steady_request_bytes,
            ratio,
            row.cold.steady_us,
            row.warm.steady_us,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_request_is_byte_identical_to_cold() {
        // The warm seed must marshal exactly what today's cold protocol
        // marshals — byte-for-byte, so a cache miss costs nothing extra.
        for row in run_warm_ablation(256) {
            assert_eq!(
                row.warm.first_request_bytes, row.cold.first_request_bytes,
                "δ={}: seed differs from cold request",
                row.cold.mutation_rate
            );
        }
    }

    #[test]
    fn low_churn_warm_requests_are_much_smaller() {
        let rows = run_warm_ablation(1024);
        for row in &rows {
            if row.cold.mutation_rate <= 0.1 {
                assert!(
                    row.warm.steady_request_bytes * 5 < row.cold.steady_request_bytes,
                    "δ={}: warm {} B vs cold {} B",
                    row.cold.mutation_rate,
                    row.warm.steady_request_bytes,
                    row.cold.steady_request_bytes
                );
            }
        }
        // And an untouched graph ships almost nothing per call.
        let clean = &rows[0];
        assert!(
            clean.warm.steady_request_bytes < 48 * (CALLS - 1),
            "δ=0 steady requests: {} bytes",
            clean.warm.steady_request_bytes
        );
    }

    #[test]
    fn warm_request_bytes_grow_with_churn() {
        let rows = run_warm_ablation(512);
        for pair in rows.windows(2) {
            assert!(
                pair[1].warm.steady_request_bytes >= pair[0].warm.steady_request_bytes,
                "delta size must grow with churn: {pair:?}"
            );
        }
    }

    #[test]
    fn low_churn_warm_calls_are_faster() {
        // Wall-clock, so keep the margin generous: at δ ≤ 10% a warm
        // call skips marshalling ~90% of a 1k-node graph and must not be
        // slower than the cold call in aggregate.
        let rows = run_warm_ablation(1024);
        let clean = &rows[0];
        assert!(
            clean.warm.steady_us < clean.cold.steady_us,
            "δ=0: warm {}µs vs cold {}µs",
            clean.warm.steady_us,
            clean.cold.steady_us
        );
    }
}
