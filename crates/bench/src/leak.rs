//! The Table 6 footnote, reproduced: unbounded memory growth under
//! call-by-reference.
//!
//! "For the 1,024 node trees, the benchmarks ... failed to complete as
//! they exceeded the 1GB heap limit that we had set for our Java virtual
//! machines. The reason for the memory leak is that the references back
//! from the server to the client create distributed circular garbage.
//! Since RMI only supports reference counting garbage collection, it
//! cannot reclaim the garbage data."
//!
//! This experiment runs repeated remote-pointer calls with a client GC
//! after every call, measures the per-call growth in DGC-pinned exports
//! and live objects, and shows the trend is linear and unreclaimable —
//! the mechanism behind the paper's heap exhaustion (whose absolute pace
//! also included the JVM's per-stub, per-lease, and buffer overheads).

use nrmi_core::{CallOptions, FnService, NrmiError, PassMode, Session};
use nrmi_heap::Value;
use nrmi_transport::MachineSpec;

use crate::workload::{bench_classes, build_workload, mutate_tree, Scenario};

/// Measurements from the leak experiment.
#[derive(Clone, Debug)]
pub struct LeakReport {
    /// Tree size per call.
    pub tree_size: usize,
    /// Calls performed.
    pub calls: usize,
    /// Client exports pinned after each call.
    pub client_exports: Vec<usize>,
    /// Client live objects after each call (post-GC with only live roots).
    pub client_live: Vec<usize>,
    /// Estimated bytes per object (JVM-ish header + fields).
    pub bytes_per_object: usize,
}

impl LeakReport {
    /// Pinned-object growth per call (linear fit over the tail).
    pub fn growth_per_call(&self) -> f64 {
        if self.client_exports.len() < 2 {
            return 0.0;
        }
        let first = self.client_exports[0] as f64;
        let last = *self.client_exports.last().unwrap() as f64;
        (last - first) / (self.client_exports.len() - 1) as f64
    }

    /// Extrapolated calls until `heap_bytes` of pinned garbage accumulate.
    pub fn calls_until_exhaustion(&self, heap_bytes: usize) -> f64 {
        let per_call = self.growth_per_call() * self.bytes_per_object as f64;
        if per_call <= 0.0 {
            return f64::INFINITY;
        }
        heap_bytes as f64 / per_call
    }
}

/// Runs `calls` remote-pointer invocations of the scenario-I mutator on
/// fresh trees of `tree_size` nodes, collecting growth measurements.
/// Client GC runs after every call (as the JVM's would), so all growth
/// is DGC-pinned garbage, not collectable debris.
pub fn run_leak_experiment(tree_size: usize, calls: usize) -> LeakReport {
    let classes = bench_classes();
    let mut session = Session::builder(classes.registry.clone())
        .serve(
            "bench",
            Box::new(FnService::new(move |_m, args, heap| {
                let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
                let report = mutate_tree(heap, root, Scenario::I, 7)?;
                Ok(Value::Int(report.nodes_visited as i32))
            })),
        )
        .build();
    let _ = MachineSpec::fast();

    let mut client_exports = Vec::with_capacity(calls);
    let mut client_live = Vec::with_capacity(calls);
    for seed in 0..calls as u64 {
        let w = build_workload(session.heap(), &classes, Scenario::I, tree_size, seed)
            .expect("workload");
        session
            .call_with(
                "bench",
                "mutate",
                &[Value::Ref(w.root)],
                CallOptions::forced(PassMode::RemoteRef),
            )
            .expect("call");
        // The benchmark loop drops the tree after the call; client GC
        // runs with NO user roots — whatever survives is pinned by the
        // server's stubs (reference counts that never reach zero).
        let _ = session.collect_garbage(&[]).expect("gc");
        client_exports.push(session.client().state.exports.len());
        client_live.push(session.heap().live_count());
    }

    LeakReport {
        tree_size,
        calls,
        client_exports,
        client_live,
        // ~3-field object: 16-byte header + 3 slots + alignment.
        bytes_per_object: 48,
    }
}

/// Renders the leak report.
pub fn render_leak_report(report: &LeakReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6 footnote reproduction: remote-pointer calls leak pinned garbage"
    );
    let _ = writeln!(
        out,
        "({}-node trees, client GC after EVERY call; growth is DGC-pinned)\n",
        report.tree_size
    );
    let _ = writeln!(
        out,
        "{:>6} {:>16} {:>14}",
        "call", "pinned exports", "live objects"
    );
    for (i, (exports, live)) in report
        .client_exports
        .iter()
        .zip(&report.client_live)
        .enumerate()
    {
        let _ = writeln!(out, "{:>6} {:>16} {:>14}", i + 1, exports, live);
    }
    let growth = report.growth_per_call();
    let until = report.calls_until_exhaustion(1 << 30);
    let _ = writeln!(
        out,
        "\ngrowth: {growth:.1} pinned objects/call, never reclaimed (reference\n\
         counting cannot break the cross-heap pins). At ~48 B/object that\n\
         exhausts a 1 GB heap after ≈{until:.0} calls of pure object payload;\n\
         the JVM's far heavier per-stub/per-lease/per-buffer overheads are\n\
         what drove the paper's 1,000-repetition loop at 1,024 nodes into\n\
         its 1 GB limit."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_grows_linearly_despite_gc() {
        let report = run_leak_experiment(16, 6);
        assert_eq!(report.client_exports.len(), 6);
        // Strictly monotone growth: every call pins more garbage.
        for pair in report.client_exports.windows(2) {
            assert!(pair[1] > pair[0], "{:?}", report.client_exports);
        }
        let growth = report.growth_per_call();
        assert!(
            growth >= 10.0,
            "most of each 16-node tree stays pinned: {growth}"
        );
        let until = report.calls_until_exhaustion(1 << 30);
        assert!(until.is_finite());
        assert!(until > 0.0);
    }

    #[test]
    fn larger_trees_leak_proportionally_more() {
        let small = run_leak_experiment(8, 3);
        let large = run_leak_experiment(32, 3);
        assert!(large.growth_per_call() > small.growth_per_call() * 2.0);
        // Bigger leak → exhaustion in fewer calls.
        assert!(large.calls_until_exhaustion(1 << 30) < small.calls_until_exhaustion(1 << 30));
    }

    #[test]
    fn report_renders() {
        let report = run_leak_experiment(8, 3);
        let text = render_leak_report(&report);
        assert!(text.contains("pinned exports"));
        assert!(text.contains("exhausts a 1 GB heap"));
    }
}
