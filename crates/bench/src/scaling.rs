//! Multi-client scaling ablation: the pooled server vs the big lock.
//!
//! The hazard this measures is not CPU parallelism (the CI box may well
//! have one core) but *lock-held blocking*: the old
//! `serve_connection_shared` big lock is held across the mid-call
//! callback round trip of remote-reference calls, so while one client
//! thinks about a `GetField` answer, every other connection — even ones
//! using completely independent services — is frozen. The pooled
//! [`ServerPool`] server overlaps those waits: a callback parks only its
//! own connection's worker.
//!
//! Two measurements, both over real TCP:
//!
//! * **throughput** — N clients (1/2/4/8), each hammering its own
//!   service with remote-ref calls whose callback answer takes
//!   ~[`CALLBACK_TURNAROUND`] of client-side time. The big lock
//!   serializes the turnarounds; the pool overlaps them.
//! * **stall latency** — one client parks mid-call for [`STALL`] while a
//!   second client probes an independent service; we record the probe's
//!   worst-case latency under both servers.
//!
//! A third axis measures **in-flight depth** on a single connection:
//! one client issues [`PIPELINE_TOTAL_CALLS`] copy-mode calls in batches
//! of 1/4/16/64 through [`Session::call_pipelined`]'s request-map
//! multiplexing against the pipelined serve loop. Depth 1 pays one
//! network round trip per call; deeper batches amortize it, so depth 16
//! must beat depth 1 by at least 2x or the gate fails.
//!
//! A fourth axis isolates the **batched wire path**: the same pipelined
//! workload against *instant* echo services, measured once with wire
//! batching disabled (a `write` per frame) and once with vectored frame
//! trains (one `writev` per train, the default). With no service time
//! in the way, the cell measures framing and syscalls themselves; at
//! depth [`BATCHED_WIRE_DEPTHS`] the train must pay at least
//! [`BATCHED_WIRE_MIN_SPEEDUP`].
//!
//! A fifth axis measures **shared-graph contention**: N warm readers
//! each hold a leased [`CONTENTION_GRAPH_NODES`]-node chain on one
//! server heap while a writer dirties a few nodes of every leased graph
//! between reads. Targeted invalidation repairs each reader with a
//! `CacheStale` patch covering only the dirty positions; the baseline
//! is what the pre-lease protocol could do — treat any cross-session
//! write as total, evict, and reseed the full graph. The cell counts
//! wire bytes per steady-state call under both policies *and* audits
//! coherence: with targeted patches every read must see the writer's
//! values ([`ContentionPoint::stale_reads`] stays 0), while the reseed
//! baseline demonstrably clobbers peer writes
//! ([`ContentionPoint::lost_writes`]). This axis runs in process over
//! [`dispatch_warm_frame`] — it measures bytes and coherence, not
//! syscalls — so the numbers are deterministic.
//!
//! `tables -- scaling` renders the tables and emits `BENCH_scaling.json`;
//! the gate fails when the pool stops beating the serialized baseline,
//! a stalled client blocks the probe again, pipelining stops paying,
//! batched trains stop beating per-call writes, or targeted
//! invalidation stops beating the evict-and-reseed baseline (in bytes
//! or in coherence).

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use nrmi_core::{
    client_evict_warm, client_invoke, client_invoke_warm_with_stats, dispatch_warm_frame,
    serve_connection_pooled, serve_connection_shared, CallOptions, ClientNode, FnService,
    LockClass, NrmiError, PassMode, PipelinedCall, ServerNode, Session, SharedServer,
    TrackedMutex, WarmCaches,
};
use nrmi_heap::{ClassId, ClassRegistry, HeapAccess, ObjId, SharedRegistry, Value};
use nrmi_transport::{
    Frame, MachineSpec, TcpListenerTransport, TcpTransport, Transport, TransportError,
};

/// Client counts swept for the throughput measurement.
pub const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// In-flight call depths swept on one pipelined connection.
pub const PIPELINE_DEPTHS: [usize; 4] = [1, 4, 16, 64];

/// Calls issued per pipeline cell (spread over batches of the depth).
pub const PIPELINE_TOTAL_CALLS: usize = 256;

/// Service time per pipelined call. Depth 1 pays round trip + service
/// time serially for every call; deeper batches overlap the service
/// times across the serve loop's worker pool — that overlap (plus the
/// amortized round trips) is the speedup under test.
pub const PIPELINE_SERVICE_TIME: Duration = Duration::from_micros(500);

/// Remote-ref calls each client issues per throughput cell.
pub const CALLS_PER_CLIENT: usize = 10;

/// Calls per batched-wire measurement (per toggle state). The services
/// are instant echoes: with no service time in the way, what the cell
/// measures is the wire path itself — marshal, syscalls, and framing.
pub const BATCHED_WIRE_CALLS: usize = 4096;

/// Measurement repetitions per toggle state; the cell keeps the best
/// run of each. Throughput noise on a shared machine is one-sided (a
/// scheduler preemption only ever *subtracts* calls/sec), so best-of-N
/// is the estimator that converges on the workload's real rate instead
/// of the machine's worst moment.
pub const BATCHED_WIRE_REPS: usize = 3;

/// Depths measured for the batched wire path: depth 1 as the control (a
/// train of one frame takes the plain path, so batching must cost
/// nothing there) and depth 16 as the gated cell.
pub const BATCHED_WIRE_DEPTHS: [usize; 2] = [1, 16];

/// The depth-16 batched train must beat per-call writes by this factor
/// on one connection, or `tables -- scaling` fails.
///
/// Calibration: batching eliminates nearly all wire syscalls (measured
/// ~8.0 → ~0.5 syscalls per call at depth 16), but both toggle states
/// share the RPC stack's dispatch cost — marshal, request-map
/// bookkeeping, worker-pool handoffs — which bounds the end-to-end
/// ratio below the raw syscall ratio. Release builds (how `tables --
/// scaling` runs, locally and in CI) measure 2.1–2.3x; the gate's
/// margin under that band absorbs machine noise without ever accepting
/// a regression to the per-write wire (1.0x). Debug builds compress
/// the ratio toward ~1.4x because unoptimized dispatch dominates —
/// gate-relevant measurements are release only.
pub const BATCHED_WIRE_MIN_SPEEDUP: f64 = 1.5;

/// Connection counts swept for the mostly-idle fleet axis. A fourth
/// point at 10,000 joins the sweep when `NRMI_SCALING_10K` is set in
/// the environment (it needs a generous fd limit and a minute of
/// patience on small machines).
pub const CONNECTION_COUNTS: [usize; 3] = [1, 100, 1000];

/// Opt-in 10k fleet point (environment variable name).
pub const TEN_K_ENV: &str = "NRMI_SCALING_10K";

/// Busy clients inside the fleet (the rest of the connections are
/// parked idle — the realistic shape the reactor is built for).
pub const CONN_BUSY_CLIENTS: usize = 8;

/// Tagged copy-mode calls each busy client completes per fleet cell.
pub const CONN_CALLS_PER_BUSY: usize = 64;

/// In-flight depth each busy client pipelines at.
pub const CONN_PIPELINE_DEPTH: usize = 16;

/// Warm reader counts swept for the shared-graph contention axis.
pub const CONTENTION_READER_COUNTS: [usize; 3] = [1, 2, 4];

/// Nodes in each reader's leased chain. This is what a full reseed
/// re-ships and what a targeted patch must *not* re-ship.
pub const CONTENTION_GRAPH_NODES: usize = 64;

/// Writer rounds per contention cell; every round dirties each reader's
/// leased graph and then every reader calls once.
pub const CONTENTION_ROUNDS: usize = 16;

/// Nodes the writer dirties per leased graph per round — the size of
/// the coherence patch, against [`CONTENTION_GRAPH_NODES`] for a reseed.
pub const CONTENTION_DIRTY_PER_ROUND: usize = 2;

/// A steady-state reseed call must cost at least this many times the
/// bytes of a targeted-patch call, or `tables -- scaling` fails: the
/// whole point of the lease table is that a cross-session write
/// invalidates positions, not sessions.
pub const CONTENTION_MIN_BYTES_RATIO: f64 = 2.0;

/// Simulated client-side "think time" before answering each `GetField`
/// callback. This is the blocking the big lock serializes.
pub const CALLBACK_TURNAROUND: Duration = Duration::from_millis(2);

/// How long the stalling client parks mid-call in the latency probe.
pub const STALL: Duration = Duration::from_millis(300);

/// Probe calls timed while the other client is stalled.
pub const STALL_PROBE_CALLS: usize = 5;

/// One throughput cell: N clients against one server flavor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Total calls completed across all clients.
    pub calls: usize,
    /// Wall-clock time for the whole cell, in milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate throughput, calls per second.
    pub calls_per_sec: f64,
}

/// One pipeline cell: a fixed call budget at one in-flight depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelinePoint {
    /// Calls in flight per batch.
    pub depth: usize,
    /// Total calls completed.
    pub calls: usize,
    /// Wall-clock time for the whole cell, in milliseconds.
    pub elapsed_ms: f64,
    /// Throughput, calls per second.
    pub calls_per_sec: f64,
}

/// One batched-wire cell: the same pipelined workload measured twice —
/// once with wire batching disabled (every frame pays its own `write`)
/// and once with vectored frame trains (the default) — on one TCP
/// connection against instant echo services.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchedPoint {
    /// Calls in flight per train.
    pub depth: usize,
    /// Calls completed per toggle state.
    pub calls: usize,
    /// Throughput with a `write` syscall per frame.
    pub per_write_calls_per_sec: f64,
    /// Throughput with one `writev` per frame train.
    pub batched_calls_per_sec: f64,
}

impl BatchedPoint {
    /// Batched over per-call-write throughput.
    pub fn speedup(&self) -> f64 {
        self.batched_calls_per_sec / self.per_write_calls_per_sec.max(1e-9)
    }
}

/// One fleet cell: `connections` total connections, of which `busy`
/// run tagged pipelined calls while the rest sit parked.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectionPoint {
    /// Total connections held open (busy + idle).
    pub connections: usize,
    /// Clients actually issuing calls.
    pub busy: usize,
    /// Total calls completed across the busy clients.
    pub calls: usize,
    /// Wall-clock for the cell — connect storm included, since paying a
    /// thread (or six) per idle connection is exactly the cost under
    /// test — in milliseconds.
    pub elapsed_ms: f64,
    /// Aggregate throughput, calls per second.
    pub calls_per_sec: f64,
}

/// One contention cell: N warm readers leased on one server heap, a
/// writer dirtying every leased graph between reads, measured under
/// targeted invalidation and under the evict-and-reseed baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContentionPoint {
    /// Warm reader sessions sharing the server heap.
    pub readers: usize,
    /// Writer rounds (each reader calls once per round).
    pub rounds: usize,
    /// Steady-state reader calls measured per policy.
    pub calls: usize,
    /// Reads that missed the writer's values under targeted
    /// invalidation — the reply value or the repaired client graph
    /// disagreeing with the oracle. Must be zero.
    pub stale_reads: usize,
    /// Peer writes the reseed baseline clobbered (the reseed ships the
    /// client's stale graph back over the writer's values). Nonzero by
    /// construction — it is why "just reseed" was never a fix.
    pub lost_writes: usize,
    /// Mean wire bytes per steady-state call with `CacheStale` patches.
    pub patched_bytes_per_call: f64,
    /// Mean wire bytes per steady-state call evicting and reseeding.
    pub reseed_bytes_per_call: f64,
}

impl ContentionPoint {
    /// Reseed over targeted-patch bytes per call.
    pub fn bytes_ratio(&self) -> f64 {
        self.reseed_bytes_per_call / self.patched_bytes_per_call.max(1e-9)
    }
}

/// The probe client's latency while the other client is stalled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallPoint {
    /// Probe calls issued.
    pub probe_calls: usize,
    /// Mean probe latency, microseconds.
    pub mean_us: u64,
    /// Worst probe latency, microseconds.
    pub max_us: u64,
}

/// The full ablation: throughput sweep plus the stall probe, both modes.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingReport {
    /// Calls per client per throughput cell.
    pub calls_per_client: usize,
    /// Callback turnaround per call, microseconds.
    pub turnaround_us: u64,
    /// Throughput under the serialized big-lock server.
    pub biglock: Vec<ScalingPoint>,
    /// Throughput under the pooled server.
    pub pooled: Vec<ScalingPoint>,
    /// Stall duration for the latency probe, milliseconds.
    pub stall_ms: u64,
    /// Probe latency under the big lock (head-of-line blocking).
    pub stall_biglock: StallPoint,
    /// Probe latency under the pool (bounded).
    pub stall_pooled: StallPoint,
    /// Single-connection throughput per in-flight depth.
    pub pipeline: Vec<PipelinePoint>,
    /// Vectored frame trains vs per-call writes, instant services.
    pub batched: Vec<BatchedPoint>,
    /// Mostly-idle fleet throughput, thread-per-connection server.
    pub connections_pooled: Vec<ConnectionPoint>,
    /// Mostly-idle fleet throughput, reactor server.
    pub connections_reactor: Vec<ConnectionPoint>,
    /// Shared-graph contention: targeted invalidation vs full reseed.
    pub contention: Vec<ContentionPoint>,
}

/// Which serve loop a cell runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerFlavor {
    /// `serve_connection_shared` behind one `Mutex<ServerNode>`.
    BigLock,
    /// `serve_connection_pooled` / per-connection state.
    Pooled,
}

struct Schema {
    registry: SharedRegistry,
    cell: ClassId,
}

fn schema() -> Schema {
    let mut reg = ClassRegistry::new();
    // class Cell extends UnicastRemoteObject { int v; } — the remote-ref
    // argument whose reads call back to the client mid-call.
    let cell = reg.define("Cell").field_int("v").remote().register();
    Schema {
        registry: reg.snapshot(),
        cell,
    }
}

/// Builds the server: one independent service per potential client, plus
/// the stall pair ("slow" with a callback, "probe" without).
fn build_server(registry: &SharedRegistry) -> ServerNode {
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    let read_cell = || {
        FnService::new(|_m, args, heap| {
            let cell = args[0].as_ref_id().ok_or_else(|| NrmiError::app("cell"))?;
            let v = heap.get_field(cell, "v")?.as_int().unwrap_or(0);
            Ok(Value::Int(v + 1))
        })
    };
    for i in 0..CLIENT_COUNTS[CLIENT_COUNTS.len() - 1] {
        server.bind(format!("svc{i}"), Box::new(read_cell()));
    }
    server.bind("slow", Box::new(read_cell()));
    server.bind(
        "probe",
        Box::new(FnService::new(|_m, args, _h| {
            Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
        })),
    );
    server
}

/// Client-side transport that sleeps for `delay` after receiving each
/// callback, modelling the caller computing the answer. The server-side
/// cost of that think time is what differs between the two serve loops.
struct CallbackThinkTime {
    inner: TcpTransport,
    delay: Duration,
    /// When set, only the FIRST callback is delayed (the stall probe).
    once: bool,
    fired: bool,
}

impl Transport for CallbackThinkTime {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        self.inner.send(frame)
    }

    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        let frame = self.inner.recv()?;
        if matches!(frame, Frame::GetField { .. } | Frame::SetField { .. })
            && (!self.once || !self.fired)
        {
            self.fired = true;
            thread::sleep(self.delay);
        }
        Ok(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.inner.recv_timeout(timeout)
    }
}

/// Runs `clients` workers against a freshly served node of the given
/// flavor; returns when every client finished its calls.
fn throughput_cell(flavor: ServerFlavor, clients: usize) -> ScalingPoint {
    let schema = schema();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = build_server(&schema.registry);

    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut client_threads = Vec::new();
    for i in 0..clients {
        let registry = schema.registry.clone();
        let cell_cls = schema.cell;
        let barrier = Arc::clone(&barrier);
        client_threads.push(thread::spawn(move || {
            let mut transport = CallbackThinkTime {
                inner: TcpTransport::connect(addr).expect("connect"),
                delay: CALLBACK_TURNAROUND,
                once: false,
                fired: false,
            };
            let mut client = ClientNode::new(registry, MachineSpec::fast());
            let cell = client
                .state
                .heap
                .alloc_raw(cell_cls, vec![Value::Int(i as i32)])
                .expect("alloc");
            let service = format!("svc{i}");
            barrier.wait();
            for _ in 0..CALLS_PER_CLIENT {
                client_invoke(
                    &mut client,
                    &mut transport,
                    &service,
                    "read",
                    &[Value::Ref(cell)],
                    CallOptions::forced(PassMode::RemoteRef),
                )
                .expect("scaling call");
            }
            let _ = transport.send(&Frame::Shutdown);
        }));
    }

    let elapsed = match flavor {
        ServerFlavor::BigLock => {
            let shared = Arc::new(TrackedMutex::new(LockClass::NodeHeap, server));
            let mut workers = Vec::new();
            for _ in 0..clients {
                let mut conn = listener.accept().expect("accept");
                let shared = Arc::clone(&shared);
                workers.push(thread::spawn(move || {
                    let _ = serve_connection_shared(&shared, &mut conn);
                }));
            }
            barrier.wait();
            let started = Instant::now();
            for t in client_threads {
                t.join().expect("client");
            }
            let elapsed = started.elapsed();
            for w in workers {
                w.join().expect("worker");
            }
            elapsed
        }
        ServerFlavor::Pooled => {
            let shared = Arc::new(SharedServer::from_node(server));
            let mut workers = Vec::new();
            for _ in 0..clients {
                let mut conn = listener.accept().expect("accept");
                let shared = Arc::clone(&shared);
                workers.push(thread::spawn(move || {
                    let _ = serve_connection_pooled(&shared, &mut conn);
                }));
            }
            barrier.wait();
            let started = Instant::now();
            for t in client_threads {
                t.join().expect("client");
            }
            let elapsed = started.elapsed();
            for w in workers {
                w.join().expect("worker");
            }
            elapsed
        }
    };

    let calls = clients * CALLS_PER_CLIENT;
    let secs = elapsed.as_secs_f64();
    ScalingPoint {
        clients,
        calls,
        elapsed_ms: secs * 1e3,
        calls_per_sec: calls as f64 / secs.max(1e-9),
    }
}

/// One client parks mid-call for [`STALL`]; a probe client times its own
/// calls on an independent service meanwhile.
fn stall_cell(flavor: ServerFlavor) -> StallPoint {
    let schema = schema();
    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = build_server(&schema.registry);

    // Two connections, accepted up front so both flavors pay identical
    // accept costs.
    let serve = |conns: Vec<TcpTransport>| -> Vec<thread::JoinHandle<()>> {
        match flavor {
            ServerFlavor::BigLock => {
                let shared = Arc::new(TrackedMutex::new(LockClass::NodeHeap, server));
                conns
                    .into_iter()
                    .map(|mut conn| {
                        let shared = Arc::clone(&shared);
                        thread::spawn(move || {
                            let _ = serve_connection_shared(&shared, &mut conn);
                        })
                    })
                    .collect()
            }
            ServerFlavor::Pooled => {
                let shared = Arc::new(SharedServer::from_node(server));
                conns
                    .into_iter()
                    .map(|mut conn| {
                        let shared = Arc::clone(&shared);
                        thread::spawn(move || {
                            let _ = serve_connection_pooled(&shared, &mut conn);
                        })
                    })
                    .collect()
            }
        }
    };

    let registry = schema.registry.clone();
    let cell_cls = schema.cell;
    let (in_call_tx, in_call_rx) = mpsc::channel();
    let staller = thread::spawn(move || {
        let mut transport = CallbackThinkTime {
            inner: TcpTransport::connect(addr).expect("connect"),
            delay: STALL,
            once: true,
            fired: false,
        };
        let mut client = ClientNode::new(registry, MachineSpec::fast());
        let cell = client
            .state
            .heap
            .alloc_raw(cell_cls, vec![Value::Int(7)])
            .expect("alloc");
        in_call_tx.send(()).unwrap();
        client_invoke(
            &mut client,
            &mut transport,
            "slow",
            "read",
            &[Value::Ref(cell)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("stalled call");
        let _ = transport.send(&Frame::Shutdown);
    });

    let mut probe_conn = TcpTransport::connect(addr).expect("connect probe");
    let staller_conn = listener.accept().expect("accept staller");
    let probe_srv_conn = listener.accept().expect("accept probe");
    let workers = serve(vec![staller_conn, probe_srv_conn]);

    in_call_rx.recv().expect("staller started");
    // Give the stalling call time to reach the server and park on its
    // callback before the probe starts timing.
    thread::sleep(Duration::from_millis(50));

    let registry = schema.registry;
    let mut probe = ClientNode::new(registry, MachineSpec::fast());
    let mut latencies = Vec::with_capacity(STALL_PROBE_CALLS);
    for i in 0..STALL_PROBE_CALLS {
        let started = Instant::now();
        client_invoke(
            &mut probe,
            &mut probe_conn,
            "probe",
            "echo",
            &[Value::Int(i as i32)],
            CallOptions::forced(PassMode::Copy),
        )
        .expect("probe call");
        latencies.push(started.elapsed());
    }
    let _ = probe_conn.send(&Frame::Shutdown);

    staller.join().expect("staller thread");
    for w in workers {
        w.join().expect("worker");
    }

    let max = latencies.iter().max().copied().unwrap_or_default();
    let total: Duration = latencies.iter().sum();
    StallPoint {
        probe_calls: STALL_PROBE_CALLS,
        mean_us: (total / STALL_PROBE_CALLS as u32).as_micros() as u64,
        max_us: max.as_micros() as u64,
    }
}

/// Service bindings the pipeline cell spreads its calls across. Each
/// binding is its own mutex on the server, so this — matched to the
/// serve loop's worker pool — is what lets in-flight calls execute
/// concurrently; calls to one service stay mutually exclusive by
/// design (services may hold state).
const PIPELINE_SERVICES: usize = 4;

/// One client, one TCP connection, [`PIPELINE_TOTAL_CALLS`] copy-mode
/// calls in batches of `depth` through the request-map client against
/// the pipelined serve loop, round-robined over
/// [`PIPELINE_SERVICES`] bindings. The registry carries no
/// remote-marked classes, so the server's worker pool is eligible and
/// replies may complete out of order; the reliable client reorders
/// them by call id.
fn pipeline_cell(depth: usize) -> PipelinePoint {
    let mut reg = ClassRegistry::new();
    // Copy-only schema: no remote classes, so calls are pipelineable
    // end to end (remote-ref callbacks would force exclusive dispatch).
    reg.define("Payload")
        .field_int("v")
        .serializable()
        .register();
    let registry = reg.snapshot();

    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    for s in 0..PIPELINE_SERVICES {
        server.bind(
            format!("echo{s}"),
            Box::new(FnService::new(|_m, args, _h| {
                thread::sleep(PIPELINE_SERVICE_TIME);
                Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
            })),
        );
    }
    let shared = Arc::new(SharedServer::from_node(server));
    let server_thread = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let _ = serve_connection_pooled(&shared, &mut conn);
        })
    };

    let mut session =
        Session::connect_tcp_reliable(registry, addr, nrmi_core::RetryPolicy::default())
            .expect("connect");
    // Warm up the connection (and the server's worker pool) off-clock.
    let warmup = [PipelinedCall::new("echo0", "inc", vec![Value::Int(-1)])];
    session.call_pipelined(&warmup).expect("warmup");

    let started = Instant::now();
    let mut done = 0usize;
    while done < PIPELINE_TOTAL_CALLS {
        let batch: Vec<PipelinedCall> = (0..depth.min(PIPELINE_TOTAL_CALLS - done))
            .map(|j| {
                PipelinedCall::new(
                    format!("echo{}", (done + j) % PIPELINE_SERVICES),
                    "inc",
                    vec![Value::Int((done + j) as i32)],
                )
            })
            .collect();
        let results = session.call_pipelined(&batch).expect("pipelined batch");
        for (j, slot) in results.into_iter().enumerate() {
            let got = slot.expect("pipelined call");
            assert_eq!(
                got,
                Value::Int((done + j) as i32 + 1),
                "reply routed to the wrong slot at depth {depth}"
            );
        }
        done += batch.len();
    }
    let elapsed = started.elapsed();
    let _ = session.close();
    server_thread.join().expect("server thread");

    let secs = elapsed.as_secs_f64();
    PipelinePoint {
        depth,
        calls: PIPELINE_TOTAL_CALLS,
        elapsed_ms: secs * 1e3,
        calls_per_sec: PIPELINE_TOTAL_CALLS as f64 / secs.max(1e-9),
    }
}

/// Restores the process-global wire-batching toggle on drop, so a
/// panicking measurement cannot leave the per-call-write mode on for
/// everything that runs after it.
struct BatchingGuard;

impl Drop for BatchingGuard {
    fn drop(&mut self) {
        nrmi_transport::set_wire_batching(true);
    }
}

/// One run of the batched-wire workload: [`BATCHED_WIRE_CALLS`] calls
/// at `depth` through the request-map client against the pipelined
/// serve loop, services answering instantly. With `batching` off every
/// request and reply frame pays its own `write`; with it on the client
/// flushes each train with one `writev` and the server's reply writer
/// drains its queue into vectored trains.
fn batched_wire_run(depth: usize, batching: bool) -> f64 {
    let mut reg = ClassRegistry::new();
    reg.define("Payload")
        .field_int("v")
        .serializable()
        .register();
    let registry = reg.snapshot();

    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    for s in 0..PIPELINE_SERVICES {
        server.bind(
            format!("echo{s}"),
            Box::new(FnService::new(|_m, args, _h| {
                Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
            })),
        );
    }
    let shared = Arc::new(SharedServer::from_node(server));
    let server_thread = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            let mut conn = listener.accept().expect("accept");
            let _ = serve_connection_pooled(&shared, &mut conn);
        })
    };

    let mut session =
        Session::connect_tcp_reliable(registry, addr, nrmi_core::RetryPolicy::default())
            .expect("connect");
    let warmup = [PipelinedCall::new("echo0", "inc", vec![Value::Int(-1)])];
    session.call_pipelined(&warmup).expect("warmup");

    let _restore = BatchingGuard;
    nrmi_transport::set_wire_batching(batching);
    let started = Instant::now();
    let mut done = 0usize;
    while done < BATCHED_WIRE_CALLS {
        let batch: Vec<PipelinedCall> = (0..depth.min(BATCHED_WIRE_CALLS - done))
            .map(|j| {
                PipelinedCall::new(
                    format!("echo{}", (done + j) % PIPELINE_SERVICES),
                    "inc",
                    vec![Value::Int((done + j) as i32)],
                )
            })
            .collect();
        let results = session.call_pipelined(&batch).expect("batched-wire batch");
        for (j, slot) in results.into_iter().enumerate() {
            assert_eq!(
                slot.expect("batched-wire call"),
                Value::Int((done + j) as i32 + 1),
                "reply routed to the wrong slot at depth {depth}"
            );
        }
        done += batch.len();
    }
    let elapsed = started.elapsed();
    nrmi_transport::set_wire_batching(true);
    let _ = session.close();
    server_thread.join().expect("server thread");

    BATCHED_WIRE_CALLS as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// One batched-wire cell: per-call-write baseline, then the vectored
/// train, same depth and budget — best of [`BATCHED_WIRE_REPS`] runs
/// per toggle state.
fn batched_wire_cell(depth: usize) -> BatchedPoint {
    let best = |batching: bool| {
        (0..BATCHED_WIRE_REPS)
            .map(|_| batched_wire_run(depth, batching))
            .fold(0.0_f64, f64::max)
    };
    let per_write = best(false);
    let batched = best(true);
    BatchedPoint {
        depth,
        calls: BATCHED_WIRE_CALLS,
        per_write_calls_per_sec: per_write,
        batched_calls_per_sec: batched,
    }
}

/// Which server core a fleet cell runs against — both through
/// [`ServerPool`], differing only in the serve mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreFlavor {
    /// [`ServerPool::serve`]: a thread per connection (several once a
    /// connection goes pipelined).
    PooledThreads,
    /// [`ServerPool::serve_reactor`]: one event loop plus a fixed
    /// worker pool for every connection.
    Reactor,
}

/// The connection counts for this run: the static sweep, plus 10k when
/// [`TEN_K_ENV`] is set.
pub fn connection_counts() -> Vec<usize> {
    let mut counts = CONNECTION_COUNTS.to_vec();
    if std::env::var_os(TEN_K_ENV).is_some() {
        counts.push(10_000);
    }
    counts
}

/// One fleet cell: hold `connections` open with [`CONN_BUSY_CLIENTS`]
/// of them running pipelined tagged calls. The clock covers the connect
/// storm and the calls; idle connections send nothing, which is
/// precisely what makes them nearly free on the reactor and a thread
/// each on the pooled server.
fn connection_cell(flavor: CoreFlavor, connections: usize) -> ConnectionPoint {
    use nrmi_core::ServerPool;

    let mut reg = ClassRegistry::new();
    // Copy-only schema: calls are pipelineable end to end, so the
    // reactor offloads them to its worker pool instead of escalating.
    reg.define("Payload")
        .field_int("v")
        .serializable()
        .register();
    let registry = reg.snapshot();

    let listener = TcpListenerTransport::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    for s in 0..PIPELINE_SERVICES {
        server.bind(
            format!("echo{s}"),
            Box::new(FnService::new(|_m, args, _h| {
                Ok(Value::Int(args[0].as_int().unwrap_or(0) + 1))
            })),
        );
    }
    let busy = CONN_BUSY_CLIENTS.min(connections);
    let idle = connections - busy;
    let pool = ServerPool::new().max_live_connections(connections + 8);
    let handle = match flavor {
        CoreFlavor::PooledThreads => pool.serve(server, listener),
        CoreFlavor::Reactor => pool.serve_reactor(server, listener).expect("serve_reactor"),
    };

    // Flow-controlled connect storm: chunks small enough to stay inside
    // the listener's accept backlog, waiting for the server to take each
    // chunk before sending the next. Real clients back off the same way;
    // without it the cell measures kernel SYN-retransmission timeouts
    // (a dropped SYN costs ~1s) instead of the server's accept-and-hold
    // capacity — which is the cost under test, and which stays on the
    // clock: the pooled server pays a thread per accepted connection,
    // the reactor a registration.
    const STORM_CHUNK: usize = 64;
    let started = Instant::now();
    let mut idle_conns: Vec<std::net::TcpStream> = Vec::with_capacity(idle);
    while idle_conns.len() < idle {
        let next = (idle_conns.len() + STORM_CHUNK).min(idle);
        while idle_conns.len() < next {
            let i = idle_conns.len();
            idle_conns.push(
                std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle {i}: {e}")),
            );
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        while handle.live_connections() < idle_conns.len() {
            assert!(
                Instant::now() < deadline,
                "accept stalled at {} of {}",
                handle.live_connections(),
                idle_conns.len()
            );
            thread::sleep(Duration::from_millis(1));
        }
    }

    let mut busy_threads = Vec::new();
    for c in 0..busy {
        let registry = registry.clone();
        busy_threads.push(thread::spawn(move || {
            let mut session =
                Session::connect_tcp_reliable(registry, addr, nrmi_core::RetryPolicy::default())
                    .expect("connect busy");
            let mut done = 0usize;
            while done < CONN_CALLS_PER_BUSY {
                let batch: Vec<PipelinedCall> = (0..CONN_PIPELINE_DEPTH
                    .min(CONN_CALLS_PER_BUSY - done))
                    .map(|j| {
                        PipelinedCall::new(
                            format!("echo{}", (done + j) % PIPELINE_SERVICES),
                            "inc",
                            vec![Value::Int((done + j) as i32)],
                        )
                    })
                    .collect();
                let results = session.call_pipelined(&batch).expect("fleet batch");
                for (j, slot) in results.into_iter().enumerate() {
                    assert_eq!(
                        slot.expect("fleet call"),
                        Value::Int((done + j) as i32 + 1),
                        "client {c}: reply routed to the wrong slot"
                    );
                }
                done += batch.len();
            }
            let _ = session.close();
        }));
    }
    for t in busy_threads {
        t.join().expect("busy client");
    }
    let elapsed = started.elapsed();

    // Idle clients must disconnect before shutdown: the pooled server
    // joins per-connection workers, which exit on client disconnect.
    drop(idle_conns);
    handle.shutdown().expect("shutdown");

    let calls = busy * CONN_CALLS_PER_BUSY;
    let secs = elapsed.as_secs_f64();
    ConnectionPoint {
        connections,
        busy,
        calls,
        elapsed_ms: secs * 1e3,
        calls_per_sec: calls as f64 / secs.max(1e-9),
    }
}

/// Stands in for the dispatch's (unused) callback channel.
struct NullWire;

impl Transport for NullWire {
    fn send(&mut self, _frame: &Frame) -> nrmi_transport::Result<()> {
        Ok(())
    }
    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        Err(TransportError::Disconnected)
    }
    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        Err(TransportError::Disconnected)
    }
}

/// One reader's connection to the shared server: `send` runs the frame
/// through [`dispatch_warm_frame`] against the one server node (pushes
/// enabled, queued ahead of the reply exactly as the serve loops write
/// them); `recv` drains the queue. Each reader has its own
/// [`WarmCaches`], all built over the node's one lease table — the
/// per-connection shape of the real servers.
struct WarmLink {
    server: Arc<Mutex<ServerNode>>,
    caches: WarmCaches,
    replies: VecDeque<Frame>,
}

impl Transport for WarmLink {
    fn send(&mut self, frame: &Frame) -> nrmi_transport::Result<()> {
        let mut server = self.server.lock().expect("server");
        let out = dispatch_warm_frame(
            &mut server,
            &mut self.caches,
            &mut NullWire,
            frame.clone(),
            true,
        );
        drop(server);
        self.replies.extend(out);
        Ok(())
    }
    fn recv(&mut self) -> nrmi_transport::Result<Frame> {
        self.replies.pop_front().ok_or(TransportError::Disconnected)
    }
    fn recv_timeout(&mut self, _timeout: Duration) -> nrmi_transport::Result<Frame> {
        self.recv()
    }
}

/// One warm reader: its client node, its connection, its chain's client
/// root, and the oracle mirror of what the chain must hold.
struct WarmReader {
    client: ClientNode,
    link: WarmLink,
    root: ObjId,
    oracle: Vec<i32>,
}

const CONTENTION_SVC: &str = "sum";

/// The chain's `data` values in link order, read from `heap`.
fn chain_values(heap: &mut dyn HeapAccess, root: ObjId) -> Vec<i32> {
    let mut values = Vec::new();
    let mut node = Some(root);
    while let Some(id) = node {
        values.push(
            heap.get_field(id, "data")
                .expect("chain data")
                .as_int()
                .unwrap_or(i32::MIN),
        );
        node = heap.get_field(id, "next").expect("chain next").as_ref_id();
    }
    values
}

/// Runs one contention workload: seed every reader, then
/// [`CONTENTION_ROUNDS`] rounds of writer-dirties-then-reader-reads per
/// reader. Returns (stale reads, lost peer writes, steady wire bytes,
/// steady calls).
///
/// `targeted` keeps the leases warm and lets `CacheStale` patches do
/// the repair; otherwise each read evicts first and reseeds the full
/// graph — the only coherent-looking move the one-owner protocol had,
/// which both costs the whole graph per call *and* ships the client's
/// stale values back over the writer's.
fn contention_run(readers: usize, targeted: bool) -> (usize, usize, usize, usize) {
    let mut reg = ClassRegistry::new();
    // class Node implements java.rmi.Restorable { int data; Node next; }
    let node_cls = reg
        .define("Node")
        .field_int("data")
        .field_ref("next")
        .restorable()
        .register();
    let registry = reg.snapshot();

    let mut server = ServerNode::new(registry.clone(), MachineSpec::fast());
    server.bind(
        CONTENTION_SVC,
        Box::new(FnService::new(|_m, args, heap| {
            let mut node = args[0].as_ref_id();
            let mut sum = 0i64;
            while let Some(id) = node {
                sum += i64::from(heap.get_field(id, "data")?.as_int().unwrap_or(0));
                node = heap.get_field(id, "next")?.as_ref_id();
            }
            Ok(Value::Int(sum as i32))
        })),
    );
    let leases = Arc::clone(&server.leases);
    let server = Arc::new(Mutex::new(server));

    let mut fleet: Vec<WarmReader> = (0..readers)
        .map(|_| {
            let mut client = ClientNode::new(registry.clone(), MachineSpec::fast());
            let mut next = Value::Null;
            let mut root = None;
            for i in (0..CONTENTION_GRAPH_NODES).rev() {
                let id = client
                    .state
                    .heap
                    .alloc(node_cls, vec![Value::Int(i as i32), next])
                    .expect("alloc chain");
                next = Value::Ref(id);
                root = Some(id);
            }
            WarmReader {
                client,
                link: WarmLink {
                    server: Arc::clone(&server),
                    caches: WarmCaches::with_leases(Arc::clone(&leases)),
                    replies: VecDeque::new(),
                },
                root: root.expect("nonempty chain"),
                oracle: (0..CONTENTION_GRAPH_NODES).map(|i| i as i32).collect(),
            }
        })
        .collect();

    // Seed every lease off-clock: the seed costs the same under both
    // policies (it is byte-identical to a cold call), so the comparison
    // is over steady-state calls only.
    for rd in &mut fleet {
        client_invoke_warm_with_stats(
            &mut rd.client,
            &mut rd.link,
            CONTENTION_SVC,
            "sum",
            &[Value::Ref(rd.root)],
        )
        .expect("seed");
    }

    let mut stale_reads = 0usize;
    let mut lost_writes = 0usize;
    let mut steady_bytes = 0usize;
    let mut steady_calls = 0usize;

    for round in 0..CONTENTION_ROUNDS {
        for (j, rd) in fleet.iter_mut().enumerate() {
            // The writer: dirty a few positions of this reader's leased
            // server graph out of band — a committed cross-session write
            // from this lease's point of view.
            let cache_id = rd
                .client
                .warm
                .cache_id(CONTENTION_SVC)
                .expect("warm session");
            let ids: Vec<ObjId> = rd
                .link
                .caches
                .sync_ids_of(cache_id)
                .expect("leased")
                .to_vec();
            let mut written = Vec::new();
            {
                let mut server = rd.link.server.lock().expect("server");
                for k in 0..CONTENTION_DIRTY_PER_ROUND {
                    let pos = (round * CONTENTION_DIRTY_PER_ROUND + k) % CONTENTION_GRAPH_NODES;
                    let value = 1_000 + (round * readers + j) as i32;
                    server
                        .state
                        .heap
                        .set_field(ids[pos], "data", Value::Int(value))
                        .expect("writer poke");
                    written.push((pos, value));
                }
            }

            if targeted {
                for &(pos, value) in &written {
                    rd.oracle[pos] = value;
                }
                let (got, stats) = client_invoke_warm_with_stats(
                    &mut rd.client,
                    &mut rd.link,
                    CONTENTION_SVC,
                    "sum",
                    &[Value::Ref(rd.root)],
                )
                .expect("patched call");
                steady_bytes += stats.request_bytes + stats.reply_bytes;
                steady_calls += 1;
                let want: i64 = rd.oracle.iter().map(|&v| i64::from(v)).sum();
                if got != Value::Int(want as i32) {
                    stale_reads += 1;
                }
                if chain_values(&mut rd.client.state.heap, rd.root) != rd.oracle {
                    stale_reads += 1;
                }
            } else {
                client_evict_warm(&mut rd.client, &mut rd.link, CONTENTION_SVC).expect("evict");
                let (_got, stats) = client_invoke_warm_with_stats(
                    &mut rd.client,
                    &mut rd.link,
                    CONTENTION_SVC,
                    "sum",
                    &[Value::Ref(rd.root)],
                )
                .expect("reseed call");
                steady_bytes += stats.request_bytes + stats.reply_bytes;
                steady_calls += 1;
                // The reseed shipped the client's stale graph: any
                // position the new server copy no longer carries at the
                // writer's value is a clobbered peer write.
                let cache_id = rd.client.warm.cache_id(CONTENTION_SVC).expect("reseeded");
                let ids: Vec<ObjId> = rd
                    .link
                    .caches
                    .sync_ids_of(cache_id)
                    .expect("leased")
                    .to_vec();
                let mut server = rd.link.server.lock().expect("server");
                for &(pos, value) in &written {
                    let now = server
                        .state
                        .heap
                        .get_field(ids[pos], "data")
                        .expect("read back")
                        .as_int();
                    if now != Some(value) {
                        lost_writes += 1;
                    }
                }
            }
        }
    }
    (stale_reads, lost_writes, steady_bytes, steady_calls)
}

/// One contention cell: the same workload under targeted invalidation
/// and under the evict-and-reseed baseline.
fn contention_cell(readers: usize) -> ContentionPoint {
    let (stale_reads, _, patched_bytes, patched_calls) = contention_run(readers, true);
    let (_, lost_writes, reseed_bytes, reseed_calls) = contention_run(readers, false);
    ContentionPoint {
        readers,
        rounds: CONTENTION_ROUNDS,
        calls: patched_calls,
        stale_reads,
        lost_writes,
        patched_bytes_per_call: patched_bytes as f64 / patched_calls.max(1) as f64,
        reseed_bytes_per_call: reseed_bytes as f64 / reseed_calls.max(1) as f64,
    }
}

/// Runs the full ablation: both flavors through the sweep and the probe.
pub fn run_scaling() -> ScalingReport {
    ScalingReport {
        calls_per_client: CALLS_PER_CLIENT,
        turnaround_us: CALLBACK_TURNAROUND.as_micros() as u64,
        biglock: CLIENT_COUNTS
            .iter()
            .map(|&n| throughput_cell(ServerFlavor::BigLock, n))
            .collect(),
        pooled: CLIENT_COUNTS
            .iter()
            .map(|&n| throughput_cell(ServerFlavor::Pooled, n))
            .collect(),
        stall_ms: STALL.as_millis() as u64,
        stall_biglock: stall_cell(ServerFlavor::BigLock),
        stall_pooled: stall_cell(ServerFlavor::Pooled),
        pipeline: PIPELINE_DEPTHS.iter().map(|&d| pipeline_cell(d)).collect(),
        batched: BATCHED_WIRE_DEPTHS
            .iter()
            .map(|&d| batched_wire_cell(d))
            .collect(),
        connections_pooled: connection_counts()
            .iter()
            .map(|&n| connection_cell(CoreFlavor::PooledThreads, n))
            .collect(),
        connections_reactor: connection_counts()
            .iter()
            .map(|&n| connection_cell(CoreFlavor::Reactor, n))
            .collect(),
        contention: CONTENTION_READER_COUNTS
            .iter()
            .map(|&n| contention_cell(n))
            .collect(),
    }
}

/// Audits the report. Empty means the pool still delivers: multi-client
/// throughput beats the serialized baseline, and a stalled client no
/// longer blocks an independent probe.
pub fn scaling_violations(report: &ScalingReport) -> Vec<String> {
    let mut violations = Vec::new();
    if let (Some(big), Some(pool)) = (report.biglock.last(), report.pooled.last()) {
        if pool.calls_per_sec <= big.calls_per_sec {
            violations.push(format!(
                "{} clients: pooled {:.0} calls/s does not beat big-lock {:.0} calls/s — \
                 callback waits are serializing again",
                pool.clients, pool.calls_per_sec, big.calls_per_sec
            ));
        }
    }
    let bound_us = (STALL.as_micros() / 2) as u64;
    if report.stall_pooled.max_us >= bound_us {
        violations.push(format!(
            "stall probe: worst pooled latency {}us >= {}us — a stalled client \
             is blocking independent connections",
            report.stall_pooled.max_us, bound_us
        ));
    }
    let depth_point = |d: usize| report.pipeline.iter().find(|p| p.depth == d);
    if let (Some(d1), Some(d16)) = (depth_point(1), depth_point(16)) {
        if d16.calls_per_sec < 2.0 * d1.calls_per_sec {
            violations.push(format!(
                "pipelining: depth 16 at {:.0} calls/s fails to double depth 1 at \
                 {:.0} calls/s — in-flight calls are serializing again",
                d16.calls_per_sec, d1.calls_per_sec
            ));
        }
    }
    // The batched-wire gate: at depth 16 on one connection, vectored
    // frame trains must beat a write-per-frame wire by the committed
    // factor — the whole point of coalescing the train into one writev.
    if let Some(b) = report
        .batched
        .iter()
        .find(|b| b.depth == BATCHED_WIRE_DEPTHS[BATCHED_WIRE_DEPTHS.len() - 1])
    {
        if b.speedup() < BATCHED_WIRE_MIN_SPEEDUP {
            violations.push(format!(
                "batched wire: depth {} trains at {:.0} calls/s are only {:.2}x the \
                 per-call-write wire's {:.0} calls/s (need {:.1}x) — frames are paying \
                 per-write syscalls again",
                b.depth,
                b.batched_calls_per_sec,
                b.speedup(),
                b.per_write_calls_per_sec,
                BATCHED_WIRE_MIN_SPEEDUP
            ));
        }
    }
    // The reactor gate: at 1000 mostly-idle connections the event loop
    // must deliver at least 4x the thread-per-connection aggregate —
    // the tentpole claim, kept honest in CI.
    let fleet_point =
        |points: &[ConnectionPoint], n: usize| points.iter().find(|p| p.connections == n).copied();
    if let (Some(pooled), Some(reactor)) = (
        fleet_point(&report.connections_pooled, 1000),
        fleet_point(&report.connections_reactor, 1000),
    ) {
        if reactor.calls_per_sec < 4.0 * pooled.calls_per_sec {
            violations.push(format!(
                "fleet: reactor {:.0} calls/s under 1000 idle connections is below 4x \
                 the pooled server's {:.0} calls/s — idle connections are costing \
                 threads again",
                reactor.calls_per_sec, pooled.calls_per_sec
            ));
        }
    }
    // The contention gates: targeted invalidation must keep every warm
    // reader coherent (zero stale reads), and a patched steady-state
    // call must undercut the evict-and-reseed baseline's bytes by the
    // committed factor at every reader count.
    for c in &report.contention {
        if c.stale_reads > 0 {
            violations.push(format!(
                "contention: {} readers saw {} stale reads across {} patched calls — \
                 targeted invalidation is missing cross-session writes",
                c.readers, c.stale_reads, c.calls
            ));
        }
        if c.bytes_ratio() < CONTENTION_MIN_BYTES_RATIO {
            violations.push(format!(
                "contention: {} readers: reseed at {:.0} B/call is only {:.2}x the \
                 patched call's {:.0} B/call (need {:.1}x) — coherence patches are \
                 re-shipping the graph again",
                c.readers,
                c.reseed_bytes_per_call,
                c.bytes_ratio(),
                c.patched_bytes_per_call,
                CONTENTION_MIN_BYTES_RATIO
            ));
        }
    }
    violations
}

/// Renders the sweep and probe as aligned tables with the gate verdict.
pub fn render_scaling(report: &ScalingReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Multi-client scaling — {} remote-ref calls/client, {}us callback turnaround",
        report.calls_per_client, report.turnaround_us
    );
    let _ = writeln!(
        out,
        "\n{:<9} {:>16} {:>16} {:>9}",
        "clients", "biglock calls/s", "pooled calls/s", "speedup"
    );
    for (b, p) in report.biglock.iter().zip(&report.pooled) {
        let _ = writeln!(
            out,
            "{:<9} {:>16.0} {:>16.0} {:>8.2}x",
            b.clients,
            b.calls_per_sec,
            p.calls_per_sec,
            p.calls_per_sec / b.calls_per_sec.max(1e-9)
        );
    }
    let _ = writeln!(
        out,
        "\nStall probe — one client parked {}ms mid-call, {} probe calls on an independent service:",
        report.stall_ms, report.stall_biglock.probe_calls
    );
    let _ = writeln!(out, "{:<9} {:>12} {:>12}", "server", "mean us", "max us");
    let _ = writeln!(
        out,
        "{:<9} {:>12} {:>12}",
        "biglock", report.stall_biglock.mean_us, report.stall_biglock.max_us
    );
    let _ = writeln!(
        out,
        "{:<9} {:>12} {:>12}",
        "pooled", report.stall_pooled.mean_us, report.stall_pooled.max_us
    );
    let _ = writeln!(
        out,
        "\nPipelining — one connection, {} copy calls in batches of each depth:",
        PIPELINE_TOTAL_CALLS
    );
    let _ = writeln!(
        out,
        "{:<9} {:>12} {:>16} {:>9}",
        "depth", "elapsed ms", "calls/s", "vs d=1"
    );
    let d1_rate = report
        .pipeline
        .iter()
        .find(|p| p.depth == 1)
        .map_or(0.0, |p| p.calls_per_sec);
    for p in &report.pipeline {
        let _ = writeln!(
            out,
            "{:<9} {:>12.1} {:>16.0} {:>8.2}x",
            p.depth,
            p.elapsed_ms,
            p.calls_per_sec,
            p.calls_per_sec / d1_rate.max(1e-9)
        );
    }
    let _ = writeln!(
        out,
        "\nBatched wire — one connection, {} instant echo calls per toggle state:",
        BATCHED_WIRE_CALLS
    );
    let _ = writeln!(
        out,
        "{:<9} {:>18} {:>16} {:>9}",
        "depth", "per-write calls/s", "batched calls/s", "speedup"
    );
    for b in &report.batched {
        let _ = writeln!(
            out,
            "{:<9} {:>18.0} {:>16.0} {:>8.2}x",
            b.depth,
            b.per_write_calls_per_sec,
            b.batched_calls_per_sec,
            b.speedup()
        );
    }
    let _ = writeln!(
        out,
        "\nMostly-idle fleet — {} busy clients x {} calls at depth {}, the rest parked:",
        CONN_BUSY_CLIENTS, CONN_CALLS_PER_BUSY, CONN_PIPELINE_DEPTH
    );
    let _ = writeln!(
        out,
        "{:<12} {:>16} {:>16} {:>9}",
        "connections", "pooled calls/s", "reactor calls/s", "speedup"
    );
    for (p, r) in report
        .connections_pooled
        .iter()
        .zip(&report.connections_reactor)
    {
        let _ = writeln!(
            out,
            "{:<12} {:>16.0} {:>16.0} {:>8.2}x",
            p.connections,
            p.calls_per_sec,
            r.calls_per_sec,
            r.calls_per_sec / p.calls_per_sec.max(1e-9)
        );
    }
    let _ = writeln!(
        out,
        "\nShared-graph contention — {CONTENTION_GRAPH_NODES}-node leased chains, \
         {CONTENTION_DIRTY_PER_ROUND} nodes dirtied per graph per round, {CONTENTION_ROUNDS} rounds:"
    );
    let _ = writeln!(
        out,
        "{:<9} {:>13} {:>13} {:>7} {:>11} {:>11}",
        "readers", "patch B/call", "reseed B/call", "ratio", "stale reads", "lost writes"
    );
    for c in &report.contention {
        let _ = writeln!(
            out,
            "{:<9} {:>13.0} {:>13.0} {:>6.1}x {:>11} {:>11}",
            c.readers,
            c.patched_bytes_per_call,
            c.reseed_bytes_per_call,
            c.bytes_ratio(),
            c.stale_reads,
            c.lost_writes
        );
    }
    let violations = scaling_violations(report);
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "\n[PASS] pooled server beats the serialized baseline; stalls stay \
             per-connection; pipelining pays; the reactor holds idle fleets for free; \
             targeted invalidation keeps shared graphs coherent for a fraction of a reseed"
        );
    } else {
        let _ = writeln!(out, "\n[FAIL] scaling regressions:");
        for v in &violations {
            let _ = writeln!(out, "  - {v}");
        }
    }
    out
}

fn point_json(p: &ScalingPoint) -> String {
    format!(
        "{{\"clients\": {}, \"calls\": {}, \"elapsed_ms\": {:.3}, \"calls_per_sec\": {:.1}}}",
        p.clients, p.calls, p.elapsed_ms, p.calls_per_sec
    )
}

fn stall_json(p: &StallPoint) -> String {
    format!(
        "{{\"probe_calls\": {}, \"mean_us\": {}, \"max_us\": {}}}",
        p.probe_calls, p.mean_us, p.max_us
    )
}

fn pipeline_json(p: &PipelinePoint) -> String {
    format!(
        "{{\"depth\": {}, \"calls\": {}, \"elapsed_ms\": {:.3}, \"calls_per_sec\": {:.1}}}",
        p.depth, p.calls, p.elapsed_ms, p.calls_per_sec
    )
}

fn batched_json(p: &BatchedPoint) -> String {
    format!(
        "{{\"depth\": {}, \"calls\": {}, \"per_write_calls_per_sec\": {:.1}, \"batched_calls_per_sec\": {:.1}, \"speedup\": {:.2}}}",
        p.depth, p.calls, p.per_write_calls_per_sec, p.batched_calls_per_sec, p.speedup()
    )
}

fn contention_json(p: &ContentionPoint) -> String {
    format!(
        "{{\"readers\": {}, \"rounds\": {}, \"calls\": {}, \"stale_reads\": {}, \"lost_writes\": {}, \"patched_bytes_per_call\": {:.1}, \"reseed_bytes_per_call\": {:.1}, \"bytes_ratio\": {:.2}}}",
        p.readers,
        p.rounds,
        p.calls,
        p.stale_reads,
        p.lost_writes,
        p.patched_bytes_per_call,
        p.reseed_bytes_per_call,
        p.bytes_ratio()
    )
}

fn connection_json(p: &ConnectionPoint) -> String {
    format!(
        "{{\"connections\": {}, \"busy\": {}, \"calls\": {}, \"elapsed_ms\": {:.3}, \"calls_per_sec\": {:.1}}}",
        p.connections, p.busy, p.calls, p.elapsed_ms, p.calls_per_sec
    )
}

/// Serializes the ablation as the `BENCH_scaling.json` document.
pub fn to_json(report: &ScalingReport) -> String {
    let join =
        |points: &[ScalingPoint]| points.iter().map(point_json).collect::<Vec<_>>().join(", ");
    let pipeline = report
        .pipeline
        .iter()
        .map(pipeline_json)
        .collect::<Vec<_>>()
        .join(", ");
    let batched = report
        .batched
        .iter()
        .map(batched_json)
        .collect::<Vec<_>>()
        .join(", ");
    let fleet = |points: &[ConnectionPoint]| {
        points
            .iter()
            .map(connection_json)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let contention = report
        .contention
        .iter()
        .map(contention_json)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"workload\": \"remote-ref calls with {}us client-side callback turnaround, independent services\",\n  \"calls_per_client\": {},\n  \"biglock\": [{}],\n  \"pooled\": [{}],\n  \"stall_ms\": {},\n  \"stall_biglock\": {},\n  \"stall_pooled\": {},\n  \"pipeline\": [{}],\n  \"batched_wire\": [{}],\n  \"connections_pooled\": [{}],\n  \"connections_reactor\": [{}],\n  \"contention\": [{}]\n}}\n",
        report.turnaround_us,
        report.calls_per_client,
        join(&report.biglock),
        join(&report.pooled),
        report.stall_ms,
        stall_json(&report.stall_biglock),
        stall_json(&report.stall_pooled),
        pipeline,
        batched,
        fleet(&report.connections_pooled),
        fleet(&report.connections_reactor),
        contention
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_beats_biglock_with_multiple_clients() {
        let big = throughput_cell(ServerFlavor::BigLock, 4);
        let pool = throughput_cell(ServerFlavor::Pooled, 4);
        assert!(
            pool.calls_per_sec > big.calls_per_sec,
            "pooled {:.0} calls/s vs biglock {:.0} calls/s",
            pool.calls_per_sec,
            big.calls_per_sec
        );
    }

    #[test]
    fn stalled_client_does_not_slow_pooled_probe() {
        let p = stall_cell(ServerFlavor::Pooled);
        assert!(
            u128::from(p.max_us) < STALL.as_micros() / 2,
            "probe max {}us under a {}ms stall",
            p.max_us,
            STALL.as_millis()
        );
    }

    #[test]
    fn json_has_both_flavors() {
        let point = ScalingPoint {
            clients: 2,
            calls: 40,
            elapsed_ms: 10.0,
            calls_per_sec: 4000.0,
        };
        let stall = StallPoint {
            probe_calls: 5,
            mean_us: 100,
            max_us: 200,
        };
        let report = ScalingReport {
            calls_per_client: 20,
            turnaround_us: 2000,
            biglock: vec![point],
            pooled: vec![point],
            stall_ms: 300,
            stall_biglock: stall,
            stall_pooled: stall,
            pipeline: vec![PipelinePoint {
                depth: 16,
                calls: 256,
                elapsed_ms: 10.0,
                calls_per_sec: 25_600.0,
            }],
            batched: vec![batched_point(16, 10_000.0, 25_000.0)],
            connections_pooled: vec![fleet_point(1000, 3_200.0)],
            connections_reactor: vec![fleet_point(1000, 14_000.0)],
            contention: vec![contention_point(4, 0, 120.0, 2_400.0)],
        };
        let json = to_json(&report);
        assert!(json.contains("\"biglock\""));
        assert!(json.contains("\"pooled\""));
        assert!(json.contains("\"stall_pooled\""));
        assert!(json.contains("\"pipeline\""));
        assert!(json.contains("\"depth\": 16"));
        assert!(json.contains("\"batched_wire\""));
        assert!(json.contains("\"per_write_calls_per_sec\": 10000.0"));
        assert!(json.contains("\"speedup\": 2.50"));
        assert!(json.contains("\"connections_pooled\""));
        assert!(json.contains("\"connections_reactor\""));
        assert!(json.contains("\"connections\": 1000"));
        assert!(json.contains("\"contention\""));
        assert!(json.contains("\"stale_reads\": 0"));
        assert!(json.contains("\"bytes_ratio\": 20.00"));
    }

    fn contention_point(
        readers: usize,
        stale_reads: usize,
        patched: f64,
        reseed: f64,
    ) -> ContentionPoint {
        ContentionPoint {
            readers,
            rounds: CONTENTION_ROUNDS,
            calls: CONTENTION_ROUNDS * readers,
            stale_reads,
            lost_writes: 0,
            patched_bytes_per_call: patched,
            reseed_bytes_per_call: reseed,
        }
    }

    fn fleet_point(connections: usize, calls_per_sec: f64) -> ConnectionPoint {
        ConnectionPoint {
            connections,
            busy: 8,
            calls: 512,
            elapsed_ms: 512.0 / calls_per_sec * 1e3,
            calls_per_sec,
        }
    }

    fn batched_point(depth: usize, per_write: f64, batched: f64) -> BatchedPoint {
        BatchedPoint {
            depth,
            calls: BATCHED_WIRE_CALLS,
            per_write_calls_per_sec: per_write,
            batched_calls_per_sec: batched,
        }
    }

    #[test]
    fn depth16_pipelining_doubles_depth1_throughput() {
        let d1 = pipeline_cell(1);
        let d16 = pipeline_cell(16);
        assert!(
            d16.calls_per_sec >= 2.0 * d1.calls_per_sec,
            "depth 16 {:.0} calls/s vs depth 1 {:.0} calls/s",
            d16.calls_per_sec,
            d1.calls_per_sec
        );
    }

    #[test]
    fn violation_fires_when_pipelining_stops_paying() {
        let flat = |depth: usize| PipelinePoint {
            depth,
            calls: 256,
            elapsed_ms: 100.0,
            calls_per_sec: 2_560.0,
        };
        let report = ScalingReport {
            calls_per_client: 20,
            turnaround_us: 2000,
            biglock: vec![],
            pooled: vec![],
            stall_ms: 300,
            stall_biglock: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            stall_pooled: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            pipeline: vec![flat(1), flat(16)],
            batched: vec![],
            connections_pooled: vec![],
            connections_reactor: vec![],
            contention: vec![],
        };
        let violations = scaling_violations(&report);
        assert!(
            violations.iter().any(|v| v.contains("pipelining")),
            "{violations:?}"
        );
    }

    /// The batched-wire gate fires when depth-16 trains stop beating a
    /// write-per-frame wire by [`BATCHED_WIRE_MIN_SPEEDUP`] — and stays
    /// quiet above the line.
    #[test]
    fn violation_fires_when_batching_stops_paying() {
        let report = |batched: Vec<BatchedPoint>| ScalingReport {
            calls_per_client: 20,
            turnaround_us: 2000,
            biglock: vec![],
            pooled: vec![],
            stall_ms: 300,
            stall_biglock: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            stall_pooled: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            pipeline: vec![],
            batched,
            connections_pooled: vec![],
            connections_reactor: vec![],
            contention: vec![],
        };
        let flat = report(vec![batched_point(16, 10_000.0, 11_000.0)]);
        let violations = scaling_violations(&flat);
        assert!(
            violations.iter().any(|v| v.contains("batched wire")),
            "{violations:?}"
        );
        let paying = report(vec![batched_point(16, 10_000.0, 20_000.0)]);
        assert!(
            !scaling_violations(&paying)
                .iter()
                .any(|v| v.contains("batched wire")),
            "gate must stay quiet at 2.0x"
        );
    }

    /// The fleet gate fires when the reactor's aggregate throughput at
    /// 1000 connections falls under 4x the pooled server's.
    #[test]
    fn violation_fires_when_reactor_stops_paying() {
        let report = ScalingReport {
            calls_per_client: 20,
            turnaround_us: 2000,
            biglock: vec![],
            pooled: vec![],
            stall_ms: 300,
            stall_biglock: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            stall_pooled: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            pipeline: vec![],
            batched: vec![],
            connections_pooled: vec![fleet_point(1000, 3_200.0)],
            connections_reactor: vec![fleet_point(1000, 6_000.0)],
            contention: vec![],
        };
        let violations = scaling_violations(&report);
        assert!(
            violations.iter().any(|v| v.contains("fleet")),
            "{violations:?}"
        );
    }

    /// The contention gates fire on a stale read and on patches that
    /// stop undercutting a reseed — and stay quiet on a healthy cell.
    #[test]
    fn violation_fires_on_stale_reads_or_expensive_patches() {
        let report = |contention: Vec<ContentionPoint>| ScalingReport {
            calls_per_client: 20,
            turnaround_us: 2000,
            biglock: vec![],
            pooled: vec![],
            stall_ms: 300,
            stall_biglock: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            stall_pooled: StallPoint {
                probe_calls: 5,
                mean_us: 100,
                max_us: 200,
            },
            pipeline: vec![],
            batched: vec![],
            connections_pooled: vec![],
            connections_reactor: vec![],
            contention,
        };
        let stale = report(vec![contention_point(4, 3, 120.0, 2_400.0)]);
        assert!(
            scaling_violations(&stale)
                .iter()
                .any(|v| v.contains("stale reads")),
            "stale reads must trip the gate"
        );
        let pricey = report(vec![contention_point(4, 0, 1_600.0, 2_400.0)]);
        assert!(
            scaling_violations(&pricey)
                .iter()
                .any(|v| v.contains("re-shipping")),
            "a 1.5x ratio must trip the {CONTENTION_MIN_BYTES_RATIO}x gate"
        );
        let healthy = report(vec![contention_point(4, 0, 120.0, 2_400.0)]);
        assert!(
            !scaling_violations(&healthy)
                .iter()
                .any(|v| v.contains("contention")),
            "a healthy cell must pass"
        );
    }

    /// The real cell, smallest reader count: targeted invalidation must
    /// deliver zero stale reads and undercut the evict-and-reseed
    /// baseline's bytes by the gated factor, while the baseline
    /// demonstrably loses the writer's values.
    #[test]
    fn targeted_invalidation_beats_reseed_and_stays_coherent() {
        let p = contention_cell(2);
        assert_eq!(p.readers, 2);
        assert_eq!(p.calls, 2 * CONTENTION_ROUNDS);
        assert_eq!(p.stale_reads, 0, "patched readers saw stale state");
        assert!(
            p.bytes_ratio() >= CONTENTION_MIN_BYTES_RATIO,
            "patched {:.0} B/call vs reseed {:.0} B/call",
            p.patched_bytes_per_call,
            p.reseed_bytes_per_call
        );
        assert!(
            p.lost_writes > 0,
            "the reseed baseline should clobber peer writes — that is why it was never a fix"
        );
    }

    /// Smoke: the batched-wire cell completes under both toggle states
    /// — the run itself asserts every reply routes to the right slot —
    /// and leaves the process-global batching toggle back on. (The
    /// 1.5x gate runs in the `tables -- scaling` regeneration, where
    /// the measurement is long enough to be stable.)
    #[test]
    fn batched_wire_cell_round_trips_and_restores_toggle() {
        let p = batched_wire_cell(4);
        assert_eq!(p.depth, 4);
        assert_eq!(p.calls, BATCHED_WIRE_CALLS);
        assert!(p.per_write_calls_per_sec > 0.0);
        assert!(p.batched_calls_per_sec > 0.0);
        assert!(
            nrmi_transport::wire_batching_enabled(),
            "measurement must restore the batching default"
        );
    }

    /// Smoke: one small fleet cell per server core completes with the
    /// right call accounting (the 1000-connection gate runs in the
    /// `tables -- scaling` regeneration, not per-test).
    #[test]
    fn fleet_cells_complete_on_both_cores() {
        for flavor in [CoreFlavor::PooledThreads, CoreFlavor::Reactor] {
            let p = connection_cell(flavor, 16);
            assert_eq!(p.connections, 16);
            assert_eq!(p.busy, CONN_BUSY_CLIENTS);
            assert_eq!(
                p.calls,
                CONN_BUSY_CLIENTS * CONN_CALLS_PER_BUSY,
                "{flavor:?}"
            );
            assert!(p.calls_per_sec > 0.0, "{flavor:?}");
        }
    }
}
