//! Sensitivity sweep: where does NRMI's overhead go?
//!
//! Section 5.3.3 of the paper predicts: "For faster machines and slower
//! networks, the performance of NRMI would strictly improve relative to
//! the baselines." The reasoning: NRMI's only *fundamental* extra cost
//! over call-by-copy is shipping the reply graph; its *implementation*
//! overheads (linear-map bookkeeping, restore traversal) are CPU work
//! that a faster machine shrinks, while a slower network inflates the
//! transfer time that both systems pay equally — so NRMI's relative
//! overhead falls on both axes. This module runs that experiment:
//! a grid over link bandwidth × machine speed, reporting the
//! NRMI-vs-manual-RMI ratio per cell, plus a machine check of the
//! monotonicity claim.
//!
//! The sweep sharpens that one-liner into two regimes:
//!
//! * **CPU-dominated** (fast network): faster machines shrink both
//!   sides' processing, and the NRMI/RMI ratio moves toward the ratio
//!   of *bytes shipped*.
//! * **Bandwidth-dominated** (slow network): the ratio converges to the
//!   byte ratio outright.
//!
//! The byte ratio is the crux. In scenario III the manual emulation's
//! shadow tree ships *more* data than NRMI's annotated reply, so NRMI
//! wins everywhere and wins *more* as the network slows — the paper's
//! prediction, reproduced. In scenario I the manual return-value trick
//! ships slightly *fewer* bytes, so there the slow-network limit mildly
//! favors the manual code instead. Both regimes are asserted by the
//! module's tests.

use nrmi_core::{CallOptions, JdkGeneration, NrmiFlavor, PassMode, RuntimeProfile, Session};
use nrmi_heap::Value;
use nrmi_transport::{LinkSpec, MachineSpec, SimEnv};

use crate::manual::manual_restore_call;
use crate::tables::SEED;
use crate::workload::{build_workload, scenario_service, Scenario};

/// One sweep cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepCell {
    /// Link bandwidth, bits/second.
    pub bandwidth_bps: f64,
    /// Machine speedup relative to the paper's testbed (2.0 = both
    /// machines twice as fast).
    pub machine_speedup: f64,
    /// Manual-restore RMI, simulated ms/call.
    pub rmi_ms: f64,
    /// NRMI (optimized), simulated ms/call.
    pub nrmi_ms: f64,
}

impl SweepCell {
    /// NRMI cost relative to manual-restore RMI (1.0 = parity).
    pub fn ratio(&self) -> f64 {
        self.nrmi_ms / self.rmi_ms
    }
}

/// The bandwidths swept (10 Mbps → 1 Gbps).
pub const BANDWIDTHS: [f64; 3] = [10e6, 100e6, 1000e6];
/// The machine speedups swept (testbed speed → 8× faster).
pub const SPEEDUPS: [f64; 3] = [1.0, 2.0, 8.0];

fn run_cell(scenario: Scenario, size: usize, bandwidth_bps: f64, speedup: f64) -> SweepCell {
    let classes = crate::workload::bench_classes();
    let jdk = JdkGeneration::Jdk14;
    let link = LinkSpec::new(200.0, bandwidth_bps);
    let client = MachineSpec::new("client", MachineSpec::slow().speed_factor / speedup);
    let server = MachineSpec::new("server", 1.0 / speedup);

    let measure = |nrmi: bool| -> f64 {
        let env = SimEnv::new();
        let svc = scenario_service(
            &classes,
            scenario,
            SEED,
            Some(env.clone()),
            server.clone(),
            jdk,
        );
        let mut session = Session::builder(classes.registry.clone())
            .serve("bench", Box::new(svc))
            .simulated(
                env.clone(),
                link,
                client.clone(),
                server.clone(),
                RuntimeProfile {
                    jdk,
                    flavor: NrmiFlavor::Optimized,
                },
            )
            .build();
        let w = build_workload(session.heap(), &classes, scenario, size, SEED).expect("workload");
        if nrmi {
            session
                .call_with(
                    "bench",
                    "mutate",
                    &[Value::Ref(w.root)],
                    CallOptions::forced(PassMode::CopyRestore),
                )
                .expect("call");
        } else {
            manual_restore_call(&mut session, "bench", scenario, w.root, &w.aliases)
                .expect("manual");
        }
        env.report().total_ms()
    };

    SweepCell {
        bandwidth_bps,
        machine_speedup: speedup,
        rmi_ms: measure(false),
        nrmi_ms: measure(true),
    }
}

/// Runs the full sweep for one scenario and tree size.
pub fn run_sweep(scenario: Scenario, size: usize) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &bw in &BANDWIDTHS {
        for &speedup in &SPEEDUPS {
            cells.push(run_cell(scenario, size, bw, speedup));
        }
    }
    cells
}

/// Checks the paper's prediction along the *network* axis: for each
/// fixed machine speed, NRMI's relative cost must not worsen as the
/// network slows — true whenever NRMI ships no more bytes than the
/// baseline (scenario III). Returns the violations (empty = reproduced).
pub fn monotonicity_violations(cells: &[SweepCell]) -> Vec<String> {
    let mut violations = Vec::new();
    let cell = |bw: f64, sp: f64| {
        cells
            .iter()
            .find(|c| c.bandwidth_bps == bw && c.machine_speedup == sp)
            .expect("full grid")
    };
    const TOLERANCE: f64 = 1.005; // allow rounding jitter
    for &sp in &SPEEDUPS {
        for pair in BANDWIDTHS.windows(2) {
            // pair[0] is the SLOWER network.
            let (slow_net, fast_net) = (cell(pair[0], sp), cell(pair[1], sp));
            if slow_net.ratio() > fast_net.ratio() * TOLERANCE {
                violations.push(format!(
                    "at {}x machines: ratio rose {:.3} -> {:.3} when network slowed {} -> {} Mbps",
                    sp,
                    fast_net.ratio(),
                    slow_net.ratio(),
                    pair[1] / 1e6,
                    pair[0] / 1e6
                ));
            }
        }
    }
    violations
}

/// Renders the sweep as a table.
pub fn render_sweep(scenario: Scenario, size: usize, cells: &[SweepCell]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sensitivity sweep — scenario {}, {} nodes, JDK 1.4 optimized NRMI vs manual RMI",
        scenario.label(),
        size
    );
    let _ = writeln!(
        out,
        "(§5.3.3: \"for faster machines and slower networks, the performance of NRMI\n would strictly improve relative to the baselines\")\n"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>9} {:>10} {:>10} {:>9}",
        "bandwidth", "machines", "RMI ms", "NRMI ms", "ratio"
    );
    for c in cells {
        let _ = writeln!(
            out,
            "{:>7.0}Mbps {:>8.1}x {:>10.1} {:>10.1} {:>9.3}",
            c.bandwidth_bps / 1e6,
            c.machine_speedup,
            c.rmi_ms,
            c.nrmi_ms,
            c.ratio()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_the_papers_prediction_for_scenario_iii() {
        // Scenario III: NRMI ships fewer bytes than the shadow-tree
        // emulation, so it wins everywhere and never loses ground as
        // the network slows.
        let cells = run_sweep(Scenario::III, 256);
        assert_eq!(cells.len(), 9);
        let violations = monotonicity_violations(&cells);
        assert!(violations.is_empty(), "{violations:#?}");
        for c in &cells {
            assert!(c.ratio() < 1.0, "NRMI should win scenario III: {c:?}");
        }
    }

    #[test]
    fn scenario_i_converges_to_the_byte_ratio_on_slow_networks() {
        // The nuance: manual scenario-I restore ships fewer bytes, so
        // on a slow network the ratio approaches the byte ratio (> 1)
        // rather than 1.0 — but stays bounded.
        let cells = run_sweep(Scenario::I, 256);
        for c in &cells {
            assert!(c.ratio() > 1.0 && c.ratio() < 1.5, "{c:?}");
        }
        // On the machine axis at generous bandwidth the CPU overhead
        // still shrinks toward the byte ratio from above... monotonicity
        // within a fixed bandwidth column holds at 1 Gbps:
        let at_1g: Vec<f64> = SPEEDUPS
            .iter()
            .map(|&sp| {
                cells
                    .iter()
                    .find(|c| c.bandwidth_bps == 1000e6 && c.machine_speedup == sp)
                    .unwrap()
                    .ratio()
            })
            .collect();
        assert!(at_1g[0] >= at_1g[2] - 0.01, "ratios at 1 Gbps: {at_1g:?}");
    }

    #[test]
    fn render_includes_all_cells() {
        let cells = run_sweep(Scenario::I, 64);
        let s = render_sweep(Scenario::I, 64, &cells);
        assert_eq!(s.lines().count(), 5 + 9);
    }
}
