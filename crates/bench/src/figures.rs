//! Regenerates the paper's Figures 1–9 as ASCII heap diagrams.
//!
//! The figures are state snapshots of the running example (the 7-node
//! tree with `alias1`/`alias2` and the mutator `foo`) under different
//! semantics and at different stages of the copy-restore algorithm.
//! Each function returns the rendered diagram; the `figures` binary
//! prints them all.

use std::fmt::Write as _;

use nrmi_core::{CallOptions, PassMode, Session};
use nrmi_heap::graph::{render_ascii, render_dot};
use nrmi_heap::tree::{self, RunningExample, TreeClasses};
use nrmi_heap::{ClassRegistry, Heap, LinearMap, ObjId, SharedRegistry, Value};
use nrmi_wire::{deserialize_graph, serialize_graph, serialize_graph_with};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    let _ = tree::register_tree_classes(&mut reg);
    reg.snapshot()
}

fn classes(heap: &Heap) -> TreeClasses {
    TreeClasses {
        tree: heap
            .registry_handle()
            .by_name("Tree")
            .expect("Tree registered"),
    }
}

fn example_roots(ex: &RunningExample) -> Vec<(String, ObjId)> {
    vec![
        ("t".to_owned(), ex.root),
        ("alias1".to_owned(), ex.alias1_target),
        ("alias2".to_owned(), ex.alias2_target),
    ]
}

/// Figure 1: the tree data structure and two aliasing references.
pub fn figure1() -> String {
    let mut heap = Heap::new(registry());
    let c = classes(&heap);
    let ex = tree::build_running_example(&mut heap, &c).expect("example");
    let mut out = String::from("Figure 1: a tree and two aliasing references into it\n\n");
    out.push_str(&render_ascii(&heap, &example_roots(&ex)).expect("render"));
    out
}

/// Figure 2: the state after a LOCAL call `foo(t)` — every change
/// visible through `t`, `alias1`, and `alias2`.
pub fn figure2() -> String {
    let mut heap = Heap::new(registry());
    let c = classes(&heap);
    let ex = tree::build_running_example(&mut heap, &c).expect("example");
    tree::run_foo(&mut heap, ex.root).expect("foo");
    let mut out =
        String::from("Figure 2: after a local call foo(t) — all reachable data affected\n\n");
    out.push_str(&render_ascii(&heap, &example_roots(&ex)).expect("render"));
    out
}

/// Figure 3: call-by-reference through remote pointers — the client keeps
/// the objects; the server sees a stub and every dereference crosses the
/// network. Rendered as the client heap plus the stub-induced traffic
/// summary after running `foo` remotely.
pub fn figure3() -> String {
    let reg = registry();
    let mut session = Session::builder(reg.clone())
        .serve(
            "figure3",
            Box::new(nrmi_core::FnService::new(|_m, args, heap| {
                let root = args[0].as_ref_id().expect("tree argument");
                tree::run_foo(heap, root)?;
                Ok(Value::Null)
            })),
        )
        .build();
    let c = classes(session.heap());
    let ex = tree::build_running_example(session.heap(), &c).expect("example");
    let (_, stats) = session
        .call_with_stats(
            "figure3",
            "foo",
            &[Value::Ref(ex.root)],
            CallOptions::forced(PassMode::RemoteRef),
        )
        .expect("remote-ref call");
    let mut out = String::from(
        "Figure 3: call-by-reference with remote references — the server\n\
         dereferences through the network; t.right is now a stub for a\n\
         server-resident node\n\n",
    );
    out.push_str(&render_ascii(session.heap(), &example_roots(&ex)).expect("render"));
    let _ = writeln!(
        out,
        "\ncallback round trips served by the client: {}",
        stats.callbacks_served
    );
    out
}

/// Figures 4–7: the four stages of the copy-restore algorithm on the
/// running example, rendered from the actual pipeline.
pub fn figures4_to_7() -> String {
    let reg = registry();
    let mut client = Heap::new(reg.clone());
    let c = classes(&client);
    let ex = tree::build_running_example(&mut client, &c).expect("example");
    let mut out = String::new();

    // Steps 1-2: linear map + ship to server; server runs foo.
    let client_map = LinearMap::build(&client, &[ex.root]).expect("map");
    let request = serialize_graph(&client, &[Value::Ref(ex.root)]).expect("request");
    let mut server = Heap::new(reg.clone());
    let decoded_req = deserialize_graph(&request.bytes, &mut server).expect("decode");
    let server_root = decoded_req.roots[0].as_ref_id().expect("root");
    let server_map = LinearMap::build(&server, &[server_root]).expect("server map");
    tree::run_foo(&mut server, server_root).expect("foo");

    let _ = writeln!(
        out,
        "Figure 4: after steps 1-2 — linear maps built on both sides\n\
         ({} entries each); foo has modified the server copy\n",
        client_map.len()
    );
    out.push_str("server heap (modified copy):\n");
    out.push_str(
        &render_ascii(
            &server,
            &server_map
                .order()
                .iter()
                .enumerate()
                .map(|(i, &id)| (format!("map[{i}]"), id))
                .collect::<Vec<_>>(),
        )
        .expect("render"),
    );

    // Step 3: reply marshalled from the server's linear map.
    let reply_roots: Vec<Value> = server_map
        .order()
        .iter()
        .map(|&id| Value::Ref(id))
        .collect();
    let reply = serialize_graph_with(&server, &reply_roots, Some(server_map.position_map()), None)
        .expect("reply");

    let decoded = deserialize_graph(&reply.bytes, &mut client).expect("decode reply");
    let _ = writeln!(
        out,
        "\nFigure 5: after steps 3-4 — modified objects copied back (even the\n\
         ones unreachable from tree) and matched to originals by linear-map\n\
         position: {} old objects, {} new",
        decoded.old_index.iter().filter(|o| o.is_some()).count(),
        decoded.old_index.iter().filter(|o| o.is_none()).count(),
    );
    for (temp, old) in decoded.iter_with_old() {
        match old {
            Some(pos) => {
                let orig = client_map.at(pos).expect("position");
                let _ = writeln!(
                    out,
                    "  modified {temp} -> original {orig} (map position {pos})"
                );
            }
            None => {
                let _ = writeln!(out, "  new object {temp} (allocated by the remote routine)");
            }
        }
    }

    // Steps 5-6: the restore.
    let outcome = nrmi_core::apply_restore(&mut client, &client_map, &decoded).expect("restore");
    let _ = writeln!(
        out,
        "\nFigures 6-7: after steps 5-6 — originals overwritten in place,\n\
         new objects' pointers converted, modified copies deallocated\n\
         ({} old objects restored, {} new spliced in):\n",
        outcome.stats.old_objects, outcome.stats.new_objects
    );
    out.push_str(&render_ascii(&client, &example_roots(&ex)).expect("render"));
    out.push_str("\n(identical to Figure 2 — the local-call result)\n");
    out
}

/// Figure 8 (= Figure 2) and Figure 9: full copy-restore vs DCE RPC
/// semantics on the same call.
pub fn figures8_and_9() -> String {
    let reg = registry();
    let mut out = String::new();
    for (figure, opts, note) in [
        (
            "Figure 8: changes after the method under full copy-restore (NRMI)",
            CallOptions::forced(PassMode::CopyRestore),
            "identical to the local call (Figure 2)",
        ),
        (
            "Figure 9: the same call under DCE RPC semantics",
            CallOptions::forced(PassMode::DceRpc),
            "changes to data unreachable from t are NOT restored:\n\
             alias1.data is still 3, alias2.data still 7, alias2.right still the old node",
        ),
    ] {
        let mut session = Session::builder(reg.clone())
            .serve(
                "figure",
                Box::new(nrmi_core::FnService::new(|_m, args, heap| {
                    let root = args[0].as_ref_id().expect("tree argument");
                    tree::run_foo(heap, root)?;
                    Ok(Value::Null)
                })),
            )
            .build();
        let c = classes(session.heap());
        let ex = tree::build_running_example(session.heap(), &c).expect("example");
        session
            .call_with("figure", "foo", &[Value::Ref(ex.root)], opts)
            .expect("call");
        let _ = writeln!(out, "{figure}\n");
        out.push_str(&render_ascii(session.heap(), &example_roots(&ex)).expect("render"));
        let _ = writeln!(out, "({note})\n");
    }
    out
}

/// Figures 1 and 2 in Graphviz DOT syntax (before/after the local call),
/// for `figures --dot` (pipe into `dot -Tsvg`).
pub fn figures_dot() -> String {
    let mut out = String::new();
    let mut heap = Heap::new(registry());
    let c = classes(&heap);
    let ex = tree::build_running_example(&mut heap, &c).expect("example");
    out.push_str(
        "// Figure 1: before the call
",
    );
    out.push_str(&render_dot(&heap, &example_roots(&ex)).expect("render"));
    tree::run_foo(&mut heap, ex.root).expect("foo");
    out.push_str(
        "
// Figure 2: after a local call foo(t)
",
    );
    out.push_str(&render_dot(&heap, &example_roots(&ex)).expect("render"));
    out
}

/// All figures, concatenated for the `figures` binary.
pub fn all_figures() -> String {
    let mut out = String::new();
    for section in [
        figure1(),
        figure2(),
        figure3(),
        figures4_to_7(),
        figures8_and_9(),
    ] {
        out.push_str(&section);
        out.push('\n');
        out.push_str(&"=".repeat(72));
        out.push_str("\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_tree_and_aliases() {
        let f = figure1();
        assert!(f.contains("alias1"));
        assert!(f.contains("data=5"));
        assert!(f.contains("-> @"), "aliases render as back-references");
    }

    #[test]
    fn figure2_shows_mutations() {
        let f = figure2();
        assert!(f.contains("data=0"), "t.left.data = 0 visible:\n{f}");
        assert!(f.contains("data=9"), "t.right.data = 9 visible");
        assert!(f.contains("data=2"), "new node visible");
    }

    #[test]
    fn figure3_reports_callbacks() {
        let f = figure3();
        assert!(f.contains("callback round trips"));
        assert!(
            f.contains("@RemoteStub"),
            "t.right should render as a stub:\n{f}"
        );
    }

    #[test]
    fn figures4_to_7_walk_the_algorithm() {
        let f = figures4_to_7();
        assert!(f.contains("Figure 4"));
        assert!(f.contains("modified"));
        assert!(f.contains("new object"), "foo's temp node is new:\n{f}");
        assert!(f.contains("identical to Figure 2"));
    }

    #[test]
    fn figure9_differs_from_figure8() {
        let f = figures8_and_9();
        // Figure 8 restores data=0; Figure 9 keeps data=3 on alias1.
        assert!(f.contains("Figure 8"));
        assert!(f.contains("Figure 9"));
        let fig8 = &f[..f.find("Figure 9").unwrap()];
        let fig9 = &f[f.find("Figure 9").unwrap()..];
        assert!(fig8.contains("data=0"));
        assert!(
            fig9.contains("data=3"),
            "DCE drops the unlinked write:\n{fig9}"
        );
    }

    #[test]
    fn dot_figures_contain_both_states() {
        let dot = figures_dot();
        assert!(dot.contains("// Figure 1"));
        assert!(dot.contains("// Figure 2"));
        assert_eq!(dot.matches("digraph heap").count(), 2);
    }

    #[test]
    fn all_figures_nonempty() {
        let f = all_figures();
        assert!(f.len() > 1000);
    }
}
