//! A counting global allocator for the hot-path ablation.
//!
//! The zero-copy work (dense position maps, pooled codec scratch, buffer
//! reuse) claims to cut per-call allocator traffic; this module makes the
//! claim measurable. [`CountingAlloc`] wraps the system allocator and
//! counts every `alloc`/`realloc` event and the bytes requested, with two
//! relaxed atomic adds of overhead — cheap enough to leave installed for
//! every bench binary.
//!
//! The counters are process-global and monotonic: measure by differencing
//! [`counters`] snapshots around the region of interest (no reset racing
//! against other threads). Binaries opt in explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: nrmi_bench::alloc_count::CountingAlloc = nrmi_bench::alloc_count::CountingAlloc;
//! ```
//!
//! Without that attribute the counters simply stay at zero, so library
//! code can call [`counters`] unconditionally.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper counting allocation events and bytes.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only adds relaxed counter updates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is allocator traffic too: count the event and the
        // bytes of the NEW block (the copy the allocator may perform).
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Snapshot of `(allocation_events, bytes_requested)` since process
/// start. Zero forever if no binary installed [`CountingAlloc`].
pub fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// True if a [`CountingAlloc`] is installed and has seen traffic (any
/// program that reached `main` has allocated something).
pub fn is_active() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}
