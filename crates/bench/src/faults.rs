//! Goodput-under-loss ablation: what the at-most-once reliability layer
//! buys on a lossy link.
//!
//! The paper's position (§6.2, after Waldo et al.) is that middleware
//! must surface network failure rather than hide it; the reliability
//! layer refines that into a usable contract — every call either takes
//! effect exactly once or fails with a deadline error. This ablation
//! quantifies the *goodput* side of that contract: it drives the same
//! counting workload through a [`FaultyTransport`] that drops a fixed
//! percentage of frames (requests and replies alike, from a seeded
//! deterministic schedule) and compares
//!
//! * **naive** — one attempt per call, no retransmission (what a plain
//!   request/reply client gets on a lossy link), against
//! * **reliable** — [`ReliableTransport`] with retries, duplicate
//!   suppression, and a per-call deadline.
//!
//! Alongside goodput it reports the server-side execution count, which
//! the at-most-once invariant bounds by the number of calls — retries
//! must never double an effect. `tables -- faults` renders the table
//! and emits `BENCH_faults.json` (mirroring the `hotpath` artifact) so
//! CI keeps the loss/goodput trajectory machine-readable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use nrmi_core::{
    client_invoke, CallOptions, ClientNode, FnService, PassMode, ReliableTransport, RetryPolicy,
};
use nrmi_heap::{ClassRegistry, SharedRegistry, Value};
use nrmi_transport::{channel_pair, Fault, FaultPlan, FaultyTransport, LinkSpec, MachineSpec};

/// Calls issued per (loss rate, mode) cell.
pub const CALLS: usize = 48;

/// Loss rates swept, in percent of frames dropped (each direction).
pub const LOSS_RATES: [u32; 4] = [0, 5, 10, 20];

/// Seed for the deterministic drop schedule (same schedule family for
/// every run, so the numbers are reproducible).
pub const SEED: u64 = 0x6c6f_7373;

/// One measured cell: a loss rate driven through one delivery mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultsPoint {
    /// Percentage of frames dropped, each direction.
    pub loss_pct: u32,
    /// Calls issued.
    pub calls: usize,
    /// Calls that returned a value to the caller.
    pub ok: usize,
    /// Times the service body actually ran (server-side truth).
    pub executions: usize,
    /// Retransmissions performed by the client (0 in naive mode).
    pub retries: u64,
    /// Replies served from the duplicate-suppression cache.
    pub replays: u64,
    /// Mean wall-clock nanoseconds per call.
    pub ns_per_call: u64,
}

impl FaultsPoint {
    /// Fraction of calls that completed, in percent.
    pub fn goodput_pct(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            100.0 * self.ok as f64 / self.calls as f64
        }
    }
}

/// The sweep: naive vs reliable at each loss rate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultsReport {
    /// Calls per cell.
    pub calls: usize,
    /// Single-attempt delivery, one row per loss rate.
    pub naive: Vec<FaultsPoint>,
    /// At-most-once delivery with retries, one row per loss rate.
    pub reliable: Vec<FaultsPoint>,
}

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    reg.define("Cell").field_int("data").restorable().register();
    reg.snapshot()
}

/// xorshift64 — the same generator the retry jitter uses; keeps the drop
/// schedule deterministic without a `rand` dependency in the hot loop.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A deterministic schedule dropping ~`loss_pct`% of operations.
fn lossy_plan(loss_pct: u32, len: usize, seed: u64) -> Vec<Fault> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            if xorshift64(&mut state) % 100 < u64::from(loss_pct) {
                Fault::DropFrame
            } else {
                Fault::Pass
            }
        })
        .collect()
}

fn naive_policy() -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_millis(40),
        attempt_timeout: Duration::from_millis(40),
        max_attempts: 1,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter: false,
    }
}

fn reliable_policy() -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_secs(2),
        attempt_timeout: Duration::from_millis(25),
        max_attempts: 12,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        jitter: false,
    }
}

fn measure(loss_pct: u32, reliable: bool) -> FaultsPoint {
    let registry = registry();
    let (client_t, mut server_t) = channel_pair(None, LinkSpec::free());
    let executions = Arc::new(AtomicUsize::new(0));
    let server_execs = Arc::clone(&executions);
    let server_registry = registry.clone();
    let server = thread::spawn(move || {
        let mut node = nrmi_core::ServerNode::new(server_registry, MachineSpec::fast());
        node.bind(
            "count",
            Box::new(FnService::new(move |_m, _args, _h| {
                let n = server_execs.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Int(n as i32 + 1))
            })),
        );
        let _ = nrmi_core::serve_connection(&mut node, &mut server_t);
    });

    // The plan must outlast every retransmission: worst case each call
    // burns max_attempts sends and as many receives.
    let plan_len = CALLS * 16;
    let policy = if reliable {
        reliable_policy()
    } else {
        naive_policy()
    };
    let plan = FaultPlan {
        sends: lossy_plan(loss_pct, plan_len, SEED ^ 0x5e5e),
        recvs: lossy_plan(loss_pct, plan_len, SEED ^ 0x7265_6376),
    };
    let faulty = FaultyTransport::new(client_t, plan);
    let mut transport = ReliableTransport::new(faulty, policy);
    let mut client = ClientNode::new(registry, MachineSpec::fast());

    let mut ok = 0usize;
    let started = Instant::now();
    for _ in 0..CALLS {
        if client_invoke(
            &mut client,
            &mut transport,
            "count",
            "bump",
            &[Value::Int(1)],
            CallOptions::forced(PassMode::Copy),
        )
        .is_ok()
        {
            ok += 1;
        }
    }
    let elapsed = started.elapsed().as_nanos() as u64;
    let stats = transport.stats();

    // Dropping the client end disconnects the channel and ends the
    // serve loop (a Shutdown frame could itself be dropped by the plan).
    drop(transport);
    server.join().expect("server thread");

    FaultsPoint {
        loss_pct,
        calls: CALLS,
        ok,
        executions: executions.load(Ordering::SeqCst),
        retries: stats.retries,
        replays: stats.replays,
        ns_per_call: elapsed / CALLS as u64,
    }
}

/// Runs the full sweep: every loss rate in [`LOSS_RATES`], both modes.
pub fn run_faults() -> FaultsReport {
    FaultsReport {
        calls: CALLS,
        naive: LOSS_RATES.iter().map(|&p| measure(p, false)).collect(),
        reliable: LOSS_RATES.iter().map(|&p| measure(p, true)).collect(),
    }
}

/// Renders the sweep as an aligned table with the at-most-once audit.
pub fn render_faults(report: &FaultsReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Goodput under loss — {} calls/cell, frames dropped each direction",
        report.calls
    );
    let _ = writeln!(
        out,
        "\n{:<6} {:>12} {:>15} {:>9} {:>9} {:>9} {:>12}",
        "loss%", "naive ok", "reliable ok", "execs", "retries", "replays", "us/call"
    );
    for (n, r) in report.naive.iter().zip(&report.reliable) {
        let _ = writeln!(
            out,
            "{:<6} {:>7}/{:<4} {:>10}/{:<4} {:>9} {:>9} {:>9} {:>12}",
            n.loss_pct,
            n.ok,
            n.calls,
            r.ok,
            r.calls,
            r.executions,
            r.retries,
            r.replays,
            r.ns_per_call / 1_000
        );
    }
    let violations = at_most_once_violations(report);
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "\n[PASS] at-most-once held at every loss rate (executions ≤ calls, successes all took effect)"
        );
    } else {
        let _ = writeln!(out, "\n[FAIL] at-most-once violations:");
        for v in &violations {
            let _ = writeln!(out, "  - {v}");
        }
    }
    out
}

/// Audits the sweep against the delivery contract. Empty means clean:
/// no cell executed more service bodies than calls issued, and every
/// reported success corresponds to a real execution.
pub fn at_most_once_violations(report: &FaultsReport) -> Vec<String> {
    let mut violations = Vec::new();
    for p in report.naive.iter().chain(&report.reliable) {
        if p.executions > p.calls {
            violations.push(format!(
                "loss {}%: {} executions for {} calls — a retry doubled an effect",
                p.loss_pct, p.executions, p.calls
            ));
        }
        if p.ok > p.executions {
            violations.push(format!(
                "loss {}%: {} successes but only {} executions — a success without an effect",
                p.loss_pct, p.ok, p.executions
            ));
        }
    }
    violations
}

fn point_json(p: &FaultsPoint) -> String {
    format!(
        "{{\"loss_pct\": {}, \"calls\": {}, \"ok\": {}, \"executions\": {}, \"retries\": {}, \"replays\": {}, \"ns_per_call\": {}}}",
        p.loss_pct, p.calls, p.ok, p.executions, p.retries, p.replays, p.ns_per_call
    )
}

/// Serializes the sweep as the `BENCH_faults.json` document.
pub fn to_json(report: &FaultsReport) -> String {
    let join =
        |points: &[FaultsPoint]| points.iter().map(point_json).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"workload\": \"counting service, frames dropped both directions, deterministic schedule\",\n  \"calls_per_cell\": {},\n  \"naive\": [{}],\n  \"reliable\": [{}]\n}}\n",
        report.calls,
        join(&report.naive),
        join(&report.reliable)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_cells_complete_every_call() {
        let clean = measure(0, true);
        assert_eq!(clean.ok, CALLS);
        assert_eq!(clean.executions, CALLS);
        assert_eq!(clean.retries, 0);
    }

    #[test]
    fn reliable_mode_beats_naive_under_loss_and_stays_at_most_once() {
        let naive = measure(20, false);
        let reliable = measure(20, true);
        assert!(
            reliable.ok > naive.ok,
            "retries must recover goodput: naive {}/{} vs reliable {}/{}",
            naive.ok,
            naive.calls,
            reliable.ok,
            reliable.calls
        );
        let report = FaultsReport {
            calls: CALLS,
            naive: vec![naive],
            reliable: vec![reliable],
        };
        assert!(
            at_most_once_violations(&report).is_empty(),
            "{}",
            render_faults(&report)
        );
    }

    #[test]
    fn json_has_both_modes() {
        let p = FaultsPoint {
            loss_pct: 5,
            calls: 4,
            ok: 4,
            executions: 4,
            retries: 1,
            replays: 1,
            ns_per_call: 10,
        };
        let report = FaultsReport {
            calls: 4,
            naive: vec![p],
            reliable: vec![p],
        };
        let json = to_json(&report);
        assert!(json.contains("\"naive\""));
        assert!(json.contains("\"reliable\""));
        assert!(json.contains("\"loss_pct\": 5"));
    }
}
