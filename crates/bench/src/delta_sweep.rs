//! Delta-reply crossover analysis (§5.2.4, optimization 2).
//!
//! The paper predicts: with delta-encoded replies, "the cost of passing
//! an object by-copy-restore and not making any changes to it is almost
//! identical to the cost of passing it by-copy." This module quantifies
//! the whole spectrum, not just the no-change endpoint: it sweeps the
//! fraction of tree nodes the remote method mutates from 0% to 100% and
//! measures, for full-graph and delta replies, the reply bytes and the
//! simulated call time — locating the crossover where shipping the full
//! graph becomes cheaper than enumerating the changes.

use nrmi_core::{
    CallOptions, FnService, JdkGeneration, NrmiError, NrmiFlavor, PassMode, RuntimeProfile, Session,
};
use nrmi_heap::{HeapAccess, Value};
use nrmi_transport::{LinkSpec, MachineSpec, SimEnv};

use crate::tables::SEED;
use crate::workload::{bench_classes, build_workload, walk_tree, Scenario};

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaPoint {
    /// Fraction of nodes mutated (0.0–1.0).
    pub change_fraction: f64,
    /// Full-graph reply: payload bytes.
    pub full_bytes: usize,
    /// Delta reply: payload bytes.
    pub delta_bytes: usize,
    /// Full-graph reply: simulated ms per call.
    pub full_ms: f64,
    /// Delta reply: simulated ms per call.
    pub delta_ms: f64,
}

/// The change fractions swept.
pub const FRACTIONS: [f64; 6] = [0.0, 0.05, 0.25, 0.5, 0.75, 1.0];

/// Shorthand for the closure-backed services this module builds.
type TouchService = FnService<
    Box<dyn FnMut(&str, &[Value], &mut dyn HeapAccess) -> Result<Value, NrmiError> + Send>,
>;

fn touch_service(fraction: f64) -> TouchService {
    FnService::new(Box::new(
        move |_m: &str, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0].as_ref_id().ok_or_else(|| NrmiError::app("tree"))?;
            let nodes = walk_tree(heap, root)?;
            let touch = ((nodes.len() as f64) * fraction).round() as usize;
            for &node in nodes.iter().take(touch) {
                let v = heap.get_field(node, "data")?.as_int().unwrap_or(0);
                heap.set_field(node, "data", Value::Int(v ^ 0x55))?;
            }
            Ok(Value::Int(touch as i32))
        },
    ))
}

fn measure(size: usize, fraction: f64, delta: bool) -> (usize, f64) {
    let classes = bench_classes();
    let env = SimEnv::new();
    let mut session = Session::builder(classes.registry.clone())
        .serve("touch", Box::new(touch_service(fraction)))
        .simulated(
            env.clone(),
            LinkSpec::lan_100mbps(),
            MachineSpec::slow(),
            MachineSpec::fast(),
            RuntimeProfile {
                jdk: JdkGeneration::Jdk14,
                flavor: NrmiFlavor::Optimized,
            },
        )
        .build();
    let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED).expect("workload");
    let opts = if delta {
        CallOptions::copy_restore_delta()
    } else {
        CallOptions::forced(PassMode::CopyRestore)
    };
    let (_, stats) = session
        .call_with_stats("touch", "touch", &[Value::Ref(w.root)], opts)
        .expect("call");
    (stats.reply_bytes, env.report().total_ms())
}

/// Sweeps the change fraction for trees of `size` nodes.
pub fn run_delta_sweep(size: usize) -> Vec<DeltaPoint> {
    FRACTIONS
        .iter()
        .map(|&fraction| {
            let (full_bytes, full_ms) = measure(size, fraction, false);
            let (delta_bytes, delta_ms) = measure(size, fraction, true);
            DeltaPoint {
                change_fraction: fraction,
                full_bytes,
                delta_bytes,
                full_ms,
                delta_ms,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render_delta_sweep(size: usize, points: &[DeltaPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Delta-reply crossover — {size}-node tree, copy-restore call, JDK 1.4 optimized"
    );
    let _ = writeln!(
        out,
        "(§5.2.4 #2: an unchanged restorable argument should cost ≈ call-by-copy)\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "changed", "full bytes", "delta bytes", "full ms", "delta ms", "winner"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8.0}% {:>12} {:>12} {:>10.1} {:>10.1} {:>8}",
            p.change_fraction * 100.0,
            p.full_bytes,
            p.delta_bytes,
            p.full_ms,
            p.delta_ms,
            if p.delta_ms <= p.full_ms {
                "delta"
            } else {
                "full"
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_change_delta_is_near_one_way_cost() {
        let points = run_delta_sweep(256);
        let p0 = points[0];
        assert_eq!(p0.change_fraction, 0.0);
        // Paper's claim: unchanged copy-restore ≈ copy. The delta reply
        // is tiny, so the delta call cost must be well under the full
        // reply cost — most of the two-way traffic vanished.
        assert!(
            p0.delta_bytes < 64,
            "no-change delta: {} bytes",
            p0.delta_bytes
        );
        assert!(
            p0.full_bytes > 2_000,
            "full reply ships the graph: {}",
            p0.full_bytes
        );
        assert!(p0.delta_ms < p0.full_ms * 0.75, "{p0:?}");
    }

    #[test]
    fn delta_bytes_grow_with_change_fraction() {
        let points = run_delta_sweep(128);
        for pair in points.windows(2) {
            assert!(
                pair[1].delta_bytes >= pair[0].delta_bytes,
                "delta size must grow with churn: {pair:?}"
            );
        }
        // Full replies are insensitive to the change fraction.
        let full_sizes: Vec<usize> = points.iter().map(|p| p.full_bytes).collect();
        let spread = full_sizes.iter().max().unwrap() - full_sizes.iter().min().unwrap();
        assert!(
            spread * 20 < *full_sizes.iter().max().unwrap(),
            "full reply size should be ~constant: {full_sizes:?}"
        );
    }

    #[test]
    fn delta_always_at_least_competitive_for_data_mutations() {
        // For pure data mutations the delta never ships MORE than the
        // full graph plus small framing — even at 100% churn the delta
        // omits unchanged reference slots only... verify it stays within
        // 40% of the full reply at worst.
        let points = run_delta_sweep(128);
        let last = points.last().unwrap();
        assert!(
            last.delta_bytes as f64 <= last.full_bytes as f64 * 1.4,
            "{last:?}"
        );
    }
}
