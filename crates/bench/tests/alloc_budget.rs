//! Allocation-regression guard: steady-state calls must stay inside a
//! fixed allocator budget.
//!
//! The zero-copy pipeline (dense position maps, pooled codec scratch,
//! recaptured snapshots, reused transport buffers) is only durable if a
//! regression shows up in CI, not in a quarterly profile. This test
//! installs the counting allocator and asserts per-call allocation
//! events stay under budgets set ~2x above the measured post-optimization
//! numbers — loose enough to tolerate allocator jitter and small feature
//! work, tight enough that reintroducing a per-call clone of the linear
//! map, slot vectors, or payload buffers (hundreds to thousands of
//! events) fails loudly.
//!
//! Budgets are per-call averages over a run of steady-state calls with
//! warmed pools, measured with client and server in one process (both
//! ends' traffic counts, as in `tables -- hotpath`).

use nrmi_bench::alloc_count;
use nrmi_bench::workload::{bench_classes, build_workload, walk_tree, Scenario};
use nrmi_core::{CallOptions, NrmiError, Session};
use nrmi_heap::{HeapAccess, Value};

#[global_allocator]
static ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

/// Steady-state warm call (δ = 0): the request is a tiny delta and every
/// buffer comes from a pool. Measured ~60 allocs/call after the pooling
/// work (baseline before: 2145).
const WARM_BUDGET_ALLOCS_PER_CALL: u64 = 200;

/// Steady-state cold call: the graph is re-marshalled every call, so the
/// traversal itself allocates, but maps, scratch, and payload buffers
/// are pooled. Measured ~2.2k allocs/call after (baseline before: 6625).
const COLD_BUDGET_ALLOCS_PER_CALL: u64 = 5000;

const SIZE: usize = 1024;
const WARMUP: usize = 4;
const CALLS: usize = 16;
const SEED: u64 = 7;

fn sum_service() -> Box<dyn nrmi_core::RemoteService> {
    Box::new(nrmi_core::FnService::new(
        |_m: &str, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            let mut sum = 0i64;
            for node in walk_tree(heap, root)? {
                sum += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
            }
            Ok(Value::Int(sum as i32))
        },
    ))
}

fn allocs_per_steady_call(warm: bool) -> u64 {
    let classes = bench_classes();
    let mut session = Session::builder(classes.registry.clone())
        .serve("sum", sum_service())
        .build();
    let w = build_workload(session.heap(), &classes, Scenario::I, SIZE, SEED).expect("workload");
    let args = [Value::Ref(w.root)];
    let opts = CallOptions::copy_restore_delta();
    let call = |session: &mut Session| {
        if warm {
            session.call_warm("sum", "sum", &args).expect("warm call");
        } else {
            session
                .call_with("sum", "sum", &args, opts)
                .expect("cold call");
        }
    };
    for _ in 0..WARMUP {
        call(&mut session);
    }
    let (before, _) = alloc_count::counters();
    for _ in 0..CALLS {
        call(&mut session);
    }
    let (after, _) = alloc_count::counters();
    (after - before) / CALLS as u64
}

// One test, not two: the counters are process-global, so two tests
// differencing them from parallel test threads would see each other's
// traffic.
#[test]
fn steady_calls_stay_under_alloc_budgets() {
    assert!(
        alloc_count::is_active(),
        "counting allocator must be installed for this test to mean anything"
    );
    let warm = allocs_per_steady_call(true);
    assert!(
        warm <= WARM_BUDGET_ALLOCS_PER_CALL,
        "steady-state warm call allocated {warm} times \
         (budget {WARM_BUDGET_ALLOCS_PER_CALL}); a per-call clone crept back into the hot path"
    );
    let cold = allocs_per_steady_call(false);
    assert!(
        cold <= COLD_BUDGET_ALLOCS_PER_CALL,
        "steady-state cold call allocated {cold} times \
         (budget {COLD_BUDGET_ALLOCS_PER_CALL}); a per-call clone crept back into the hot path"
    );
}
