//! Reactor-substrate allocation guard: an idle fleet must cost nothing
//! per tick.
//!
//! A reactor holding a thousand mostly-idle connections spins its
//! `Poller::wait` loop forever; if each tick rebuilt its pollfd scratch,
//! token map, or event vector, the idle fleet would churn the allocator
//! at wakeup frequency. The poller keeps all three member-pooled and the
//! reactor hoists its event buffer outside the loop — this test pins
//! that down with the counting allocator: after a warmup tick sizes the
//! pools, a hundred timeout ticks over hundreds of registered
//! descriptors must allocate NOTHING.

#![cfg(unix)]

use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use nrmi_bench::alloc_count;
use nrmi_transport::{Event, Interest, Poller, Token};

#[global_allocator]
static ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

const FDS: usize = 256;
const WARMUP_TICKS: usize = 8;
const MEASURED_TICKS: usize = 100;

// One test in its own binary: the counters are process-global, and the
// differenced window must see only the poll loop's traffic.
#[test]
fn idle_poll_ticks_allocate_nothing() {
    assert!(
        alloc_count::is_active(),
        "counting allocator must be installed for this test to mean anything"
    );
    let mut poller = Poller::new().expect("poller");
    // A fleet of idle connections: the write ends are kept open and
    // silent, so readable-interest on the read ends never fires and
    // every wait runs to its timeout — the steady state of a reactor
    // holding mostly-idle clients.
    let pairs: Vec<(UnixStream, UnixStream)> = (0..FDS)
        .map(|_| UnixStream::pair().expect("socketpair"))
        .collect();
    for (i, (reader, _writer)) in pairs.iter().enumerate() {
        poller.register(Token(i), reader.as_raw_fd(), Interest::READABLE);
    }
    let mut events: Vec<Event> = Vec::new();
    let tick = |poller: &mut Poller, events: &mut Vec<Event>| {
        poller
            .wait(events, Some(Duration::from_millis(1)))
            .expect("wait");
        assert!(events.is_empty(), "idle fds must produce no events");
    };
    for _ in 0..WARMUP_TICKS {
        tick(&mut poller, &mut events);
    }
    let (before, _) = alloc_count::counters();
    for _ in 0..MEASURED_TICKS {
        tick(&mut poller, &mut events);
    }
    let (after, _) = alloc_count::counters();
    assert_eq!(
        after - before,
        0,
        "an idle {FDS}-connection poll loop allocated {} times over \
         {MEASURED_TICKS} ticks; per-tick scratch crept back into the poller",
        after - before
    );
}
