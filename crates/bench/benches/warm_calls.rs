//! Warm-call benchmark: cold copy-restore every call vs a warm session
//! shipping request deltas, at mutation rates δ ∈ {0%, 10%, 50%}.
//!
//! The interesting numbers are the steady-state calls (the seed call is
//! a full marshal in both modes by design), so each measured iteration
//! runs one post-seed call; the seed happens once per configuration.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrmi_bench::workload::{bench_classes, build_workload, walk_tree, Scenario};
use nrmi_core::{CallOptions, NrmiError, Session};
use nrmi_heap::{HeapAccess, ObjId, Value};

const SEED: u64 = 7;

fn sum_service() -> Box<dyn nrmi_core::RemoteService> {
    Box::new(nrmi_core::FnService::new(
        |_m: &str, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            let mut sum = 0i64;
            for node in walk_tree(heap, root)? {
                sum += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
            }
            Ok(Value::Int(sum as i32))
        },
    ))
}

/// Dirties `round(n·δ)` nodes, rotating the window by `round`.
fn churn(session: &mut Session, nodes: &[ObjId], rate: f64, round: usize) {
    let touch = ((nodes.len() as f64) * rate).round() as usize;
    for i in 0..touch {
        let node = nodes[(round * touch + i) % nodes.len()];
        let v = session
            .heap()
            .get_field(node, "data")
            .expect("get")
            .as_int()
            .unwrap_or(0);
        session
            .heap()
            .set_field(node, "data", Value::Int(v ^ 0x2a))
            .expect("set");
    }
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_calls");
    group.sample_size(20);
    let size = 1024usize;
    for rate in [0.0f64, 0.1, 0.5] {
        for warm in [false, true] {
            let label = if warm { "warm" } else { "cold" };
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/delta_{:.0}pct", rate * 100.0), size),
                &size,
                |b, &size| {
                    let classes = bench_classes();
                    let mut session = Session::builder(classes.registry.clone())
                        .serve("sum", sum_service())
                        .build();
                    let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED)
                        .expect("workload");
                    let nodes = walk_tree(session.heap(), w.root).expect("walk");
                    let opts = CallOptions::copy_restore_delta();
                    if warm {
                        // Seed once; measured iterations are steady-state.
                        session
                            .call_warm("sum", "sum", &[Value::Ref(w.root)])
                            .expect("seed");
                    }
                    let mut round = 0usize;
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            churn(&mut session, &nodes, rate, round);
                            round += 1;
                            let start = Instant::now();
                            if warm {
                                session
                                    .call_warm("sum", "sum", &[Value::Ref(w.root)])
                                    .expect("warm call");
                            } else {
                                session
                                    .call_with("sum", "sum", &[Value::Ref(w.root)], opts)
                                    .expect("cold call");
                            }
                            total += start.elapsed();
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_warm_vs_cold);
criterion_main!(benches);
