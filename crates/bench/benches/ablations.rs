//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * `reply_encoding` — full-graph replies (the paper's NRMI) vs delta
//!   replies (its proposed future-work optimization, §5.2.4 #2), under a
//!   no-change call and a sparse-change call. The delta's advantage is
//!   the paper's prediction: "the cost of passing an object
//!   by-copy-restore and not making any changes to it is almost
//!   identical to the cost of passing it by-copy."
//! * `pipeline_stages` — the copy-restore pipeline decomposed:
//!   linear-map build (step 1), serialization (step 2), deserialization
//!   with map reconstruction (step 3 + optimization #1), and the restore
//!   pass (steps 4–6).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrmi_bench::workload::{bench_classes, build_workload, Scenario};
use nrmi_core::{apply_restore, CallOptions, NrmiError, PassMode, Session};
use nrmi_heap::{Heap, HeapAccess, LinearMap, Value};
use nrmi_wire::{deserialize_graph, serialize_graph};

const SEED: u64 = 7;

/// A service that touches exactly `k` nodes, so the delta's size is
/// controlled.
fn sparse_touch_service() -> Box<dyn nrmi_core::RemoteService> {
    Box::new(nrmi_core::FnService::new(
        |method: &str, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            match method {
                "noop" => Ok(Value::Null),
                "touch_root" => {
                    heap.set_field(root, "data", Value::Int(31337))?;
                    Ok(Value::Null)
                }
                other => Err(NrmiError::app(format!("unknown method {other}"))),
            }
        },
    ))
}

fn bench_reply_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("reply_encoding");
    group.sample_size(20);
    for method in ["noop", "touch_root"] {
        for (label, opts) in [
            ("full", CallOptions::forced(PassMode::CopyRestore)),
            ("delta", CallOptions::copy_restore_delta()),
        ] {
            for size in [64usize, 1024] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{method}/{label}"), size),
                    &size,
                    |b, &size| {
                        let classes = bench_classes();
                        let mut session = Session::builder(classes.registry.clone())
                            .serve("svc", sparse_touch_service())
                            .build();
                        b.iter_custom(|iters| {
                            let mut total = Duration::ZERO;
                            for _ in 0..iters {
                                let w = build_workload(
                                    session.heap(),
                                    &classes,
                                    Scenario::I,
                                    size,
                                    SEED,
                                )
                                .expect("workload");
                                let start = Instant::now();
                                session
                                    .call_with("svc", method, &[Value::Ref(w.root)], opts)
                                    .expect("call");
                                total += start.elapsed();
                            }
                            total
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_stages");
    let classes = bench_classes();
    for size in [64usize, 1024] {
        // Shared fixture: a client graph and its serialized form.
        let mut client = Heap::new(classes.registry.clone());
        let w = build_workload(&mut client, &classes, Scenario::I, size, SEED).expect("workload");
        let enc = serialize_graph(&client, &[Value::Ref(w.root)]).expect("serialize");

        group.bench_with_input(BenchmarkId::new("linear_map", size), &size, |b, _| {
            b.iter(|| LinearMap::build(&client, &[w.root]).expect("map"));
        });
        group.bench_with_input(BenchmarkId::new("serialize", size), &size, |b, _| {
            b.iter(|| serialize_graph(&client, &[Value::Ref(w.root)]).expect("serialize"));
        });
        group.bench_with_input(BenchmarkId::new("deserialize", size), &size, |b, _| {
            b.iter_batched(
                || Heap::new(classes.registry.clone()),
                |mut heap| deserialize_graph(&enc.bytes, &mut heap).expect("deserialize"),
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("restore", size), &size, |b, _| {
            // Prepare: a reply payload annotated against the client map.
            let mut server = Heap::new(classes.registry.clone());
            let dec = deserialize_graph(&enc.bytes, &mut server).expect("deserialize");
            let server_root = dec.roots[0].as_ref_id().expect("root");
            let server_map = LinearMap::build(&server, &[server_root]).expect("map");
            let reply_roots: Vec<Value> = server_map
                .order()
                .iter()
                .map(|&id| Value::Ref(id))
                .collect();
            let reply = nrmi_wire::serialize_graph_with(
                &server,
                &reply_roots,
                Some(server_map.position_map()),
                None,
            )
            .expect("reply");
            b.iter_batched(
                || {
                    // Fresh client copy per iteration (restore mutates).
                    let mut heap = Heap::new(classes.registry.clone());
                    let w2 = build_workload(&mut heap, &classes, Scenario::I, size, SEED)
                        .expect("workload");
                    let map = LinearMap::build(&heap, &[w2.root]).expect("map");
                    let decoded = deserialize_graph(&reply.bytes, &mut heap).expect("decode");
                    (heap, map, decoded)
                },
                |(mut heap, map, decoded)| {
                    apply_restore(&mut heap, &map, &decoded).expect("restore")
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reply_encoding, bench_pipeline_stages);
criterion_main!(benches);
