//! Hot-path criterion bench: cold-call and steady-state warm-call
//! latency on the 1k-node tree the allocation ablation uses.
//!
//! `tables -- hotpath` reports allocator traffic per call; this bench
//! gives the corresponding wall-clock picture with criterion's
//! statistics. The counting allocator is installed here too so the
//! measured path is byte-for-byte the one the ablation counts (its
//! overhead is two relaxed atomic adds per allocation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrmi_bench::hotpath::SIZE;
use nrmi_bench::workload::{bench_classes, build_workload, walk_tree, Scenario};
use nrmi_core::{CallOptions, NrmiError, Session};
use nrmi_heap::{HeapAccess, Value};

#[global_allocator]
static ALLOC: nrmi_bench::alloc_count::CountingAlloc = nrmi_bench::alloc_count::CountingAlloc;

const SEED: u64 = 7;

fn sum_service() -> Box<dyn nrmi_core::RemoteService> {
    Box::new(nrmi_core::FnService::new(
        |_m: &str, args: &[Value], heap: &mut dyn HeapAccess| {
            let root = args[0]
                .as_ref_id()
                .ok_or_else(|| NrmiError::app("want tree"))?;
            let mut sum = 0i64;
            for node in walk_tree(heap, root)? {
                sum += i64::from(heap.get_field(node, "data")?.as_int().unwrap_or(0));
            }
            Ok(Value::Int(sum as i32))
        },
    ))
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(30);
    for warm in [false, true] {
        let label = if warm { "warm_steady" } else { "cold" };
        group.bench_with_input(BenchmarkId::new(label, SIZE), &SIZE, |b, &size| {
            let classes = bench_classes();
            let mut session = Session::builder(classes.registry.clone())
                .serve("sum", sum_service())
                .build();
            let w = build_workload(session.heap(), &classes, Scenario::I, size, SEED)
                .expect("workload");
            let args = [Value::Ref(w.root)];
            let opts = CallOptions::copy_restore_delta();
            if warm {
                session.call_warm("sum", "sum", &args).expect("seed");
            } else {
                // One throwaway call fills the codec's buffer pool so
                // measured cold calls see steady state, like deployments.
                session.call_with("sum", "sum", &args, opts).expect("fill");
            }
            b.iter(|| {
                if warm {
                    session.call_warm("sum", "sum", &args).expect("warm call")
                } else {
                    session
                        .call_with("sum", "sum", &args, opts)
                        .expect("cold call")
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
