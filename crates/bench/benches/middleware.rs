//! End-to-end middleware benchmarks (real wall-clock).
//!
//! One Criterion group per paper table, benchmarking the actual Rust
//! implementation (the simulated-time model only *prices* the work; this
//! measures it). Groups:
//!
//! * `local` (Table 1) — run the mutator in one address space;
//! * `rmi_one_way` (Table 2) — call-by-copy, changes discarded;
//! * `rmi_manual_restore` (Table 4) — call-by-copy plus the hand-written
//!   restore (return/lockstep/shadow-tree);
//! * `nrmi_copy_restore` (Table 5) — the six-step algorithm;
//! * `remote_ref` (Table 6) — call-by-reference through remote pointers
//!   (small sizes only; it really is that slow).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nrmi_bench::manual::manual_restore_call;
use nrmi_bench::workload::{
    bench_classes, build_workload, mutate_tree, scenario_service, Scenario,
};
use nrmi_core::{CallOptions, JdkGeneration, PassMode, Session};
use nrmi_heap::{Heap, Value};
use nrmi_transport::MachineSpec;

const SEED: u64 = 42;

fn session_for(scenario: Scenario) -> (Session, nrmi_bench::workload::BenchClasses) {
    let classes = bench_classes();
    let svc = scenario_service(
        &classes,
        scenario,
        SEED,
        None,
        MachineSpec::fast(),
        JdkGeneration::Jdk14,
    );
    let session = Session::builder(classes.registry.clone())
        .serve("bench", Box::new(svc))
        .build();
    (session, classes)
}

fn bench_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("local");
    for scenario in Scenario::ALL {
        for size in [16usize, 256] {
            group.bench_with_input(
                BenchmarkId::new(scenario.label(), size),
                &size,
                |b, &size| {
                    let classes = bench_classes();
                    b.iter_batched(
                        || {
                            let mut heap = Heap::new(classes.registry.clone());
                            let w = build_workload(&mut heap, &classes, scenario, size, SEED)
                                .expect("workload");
                            (heap, w.root)
                        },
                        |(mut heap, root)| {
                            mutate_tree(&mut heap, root, scenario, SEED).expect("mutation");
                            heap
                        },
                        criterion::BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

fn bench_mode(
    c: &mut Criterion,
    group_name: &str,
    opts: CallOptions,
    sizes: &[usize],
    scenarios: &[Scenario],
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);
    for &scenario in scenarios {
        for &size in sizes {
            group.bench_with_input(
                BenchmarkId::new(scenario.label(), size),
                &size,
                |b, &size| {
                    let (mut session, classes) = session_for(scenario);
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let w = build_workload(session.heap(), &classes, scenario, size, SEED)
                                .expect("workload");
                            let start = Instant::now();
                            session
                                .call_with("bench", "mutate", &[Value::Ref(w.root)], opts)
                                .expect("call");
                            total += start.elapsed();
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_one_way(c: &mut Criterion) {
    bench_mode(
        c,
        "rmi_one_way",
        CallOptions::forced(PassMode::Copy),
        &[16, 256, 1024],
        &Scenario::ALL,
    );
}

fn bench_manual_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmi_manual_restore");
    group.sample_size(20);
    for scenario in Scenario::ALL {
        for size in [16usize, 256, 1024] {
            group.bench_with_input(
                BenchmarkId::new(scenario.label(), size),
                &size,
                |b, &size| {
                    let (mut session, classes) = session_for(scenario);
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let w = build_workload(session.heap(), &classes, scenario, size, SEED)
                                .expect("workload");
                            let start = Instant::now();
                            manual_restore_call(
                                &mut session,
                                "bench",
                                scenario,
                                w.root,
                                &w.aliases,
                            )
                            .expect("manual restore");
                            total += start.elapsed();
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_nrmi(c: &mut Criterion) {
    bench_mode(
        c,
        "nrmi_copy_restore",
        CallOptions::forced(PassMode::CopyRestore),
        &[16, 256, 1024],
        &Scenario::ALL,
    );
}

fn bench_remote_ref(c: &mut Criterion) {
    // The paper's 1024-node remote-ref runs failed to complete; ours
    // would merely be slow, but 16/64 make the point.
    bench_mode(
        c,
        "remote_ref",
        CallOptions::forced(PassMode::RemoteRef),
        &[16, 64],
        &[Scenario::I, Scenario::III],
    );
}

criterion_group!(
    benches,
    bench_local,
    bench_one_way,
    bench_manual_restore,
    bench_nrmi,
    bench_remote_ref
);
criterion_main!(benches);
