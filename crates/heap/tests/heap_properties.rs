//! Property-based tests of the heap substrate's core invariants.

use proptest::prelude::*;

use nrmi_heap::copy::{deep_copy_between, deep_copy_within};
use nrmi_heap::graph::{first_difference, isomorphic, isomorphic_multi};
use nrmi_heap::{ClassRegistry, Heap, HeapAccess, LinearMap, ObjId, Value};

#[derive(Clone, Debug)]
enum Action {
    Alloc(i32),
    Free(usize),
    Link(usize, bool, usize),
    Unlink(usize, bool),
    Write(usize, i32),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        any::<i32>().prop_map(Action::Alloc),
        (0usize..64).prop_map(Action::Free),
        (0usize..64, any::<bool>(), 0usize..64).prop_map(|(a, l, b)| Action::Link(a, l, b)),
        (0usize..64, any::<bool>()).prop_map(|(a, l)| Action::Unlink(a, l)),
        (0usize..64, any::<i32>()).prop_map(|(a, v)| Action::Write(a, v)),
    ]
}

fn fresh_heap() -> (Heap, nrmi_heap::ClassId) {
    let mut reg = ClassRegistry::new();
    let class = reg
        .define("Node")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    (Heap::new(reg.snapshot()), class)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary alloc/free/link/write sequences keep the heap's
    /// accounting consistent, never corrupt live objects, and detect
    /// every dangling access.
    #[test]
    fn heap_stays_consistent_under_arbitrary_action_sequences(
        actions in proptest::collection::vec(action_strategy(), 1..120)
    ) {
        let (mut heap, class) = fresh_heap();
        let mut live: Vec<ObjId> = Vec::new();
        let mut freed: Vec<ObjId> = Vec::new();
        for action in actions {
            match action {
                Action::Alloc(v) => {
                    let id = heap
                        .alloc(class, vec![Value::Int(v), Value::Null, Value::Null])
                        .unwrap();
                    // Recycled slots may reuse indices of freed objects.
                    freed.retain(|&f| f != id);
                    live.push(id);
                }
                Action::Free(i) if !live.is_empty() => {
                    let victim = live.remove(i % live.len());
                    // Clear incoming refs first so live objects never
                    // point at freed slots (GC would do this for us).
                    for &holder in &live {
                        let mut map = std::collections::HashMap::new();
                        map.insert(victim, victim);
                        // Remove edges by rewriting to Null manually:
                        for side in ["left", "right"] {
                            if heap.get_ref(holder, side).unwrap() == Some(victim) {
                                heap.set_field(holder, side, Value::Null).unwrap();
                            }
                        }
                        let _ = map;
                    }
                    heap.free(victim).unwrap();
                    freed.push(victim);
                }
                Action::Link(a, left, b) if !live.is_empty() => {
                    let from = live[a % live.len()];
                    let to = live[b % live.len()];
                    let side = if left { "left" } else { "right" };
                    heap.set_field(from, side, Value::Ref(to)).unwrap();
                }
                Action::Unlink(a, left) if !live.is_empty() => {
                    let from = live[a % live.len()];
                    let side = if left { "left" } else { "right" };
                    heap.set_field(from, side, Value::Null).unwrap();
                }
                Action::Write(a, v) if !live.is_empty() => {
                    let target = live[a % live.len()];
                    heap.set_field(target, "data", Value::Int(v)).unwrap();
                    prop_assert_eq!(heap.get_field(target, "data").unwrap(), Value::Int(v));
                }
                _ => {}
            }
            // Invariants after every step:
            prop_assert_eq!(heap.live_count(), live.len());
            prop_assert_eq!(heap.stats().live() as usize, live.len());
            for &id in &live {
                prop_assert!(heap.contains(id));
            }
            for &id in &freed {
                prop_assert!(!heap.contains(id));
                prop_assert!(heap.get(id).is_err());
            }
        }
    }

    /// The linear map enumerates exactly the reachable set, with the
    /// root first and every position consistent with `position_of`.
    #[test]
    fn linear_map_laws(
        n in 1usize..24,
        edges in proptest::collection::vec((0usize..24, any::<bool>(), 0usize..24), 0..40)
    ) {
        let (mut heap, class) = fresh_heap();
        let nodes: Vec<ObjId> = (0..n)
            .map(|i| heap.alloc(class, vec![Value::Int(i as i32), Value::Null, Value::Null]).unwrap())
            .collect();
        for (a, left, b) in edges {
            let side = if left { "left" } else { "right" };
            heap.set_field(nodes[a % n], side, Value::Ref(nodes[b % n])).unwrap();
        }
        let map = LinearMap::build(&heap, &[nodes[0]]).unwrap();
        prop_assert_eq!(map.at(0), Some(nodes[0]), "root comes first");
        prop_assert!(!map.is_empty());
        // Bijection between order and positions:
        for (pos, id) in map.iter() {
            prop_assert_eq!(map.position_of(id), Some(pos));
            prop_assert_eq!(map.at(pos), Some(id));
        }
        // Closure: every outgoing edge of a member stays in the map.
        for &id in map.order() {
            for side in ["left", "right"] {
                if let Some(child) = heap.get_ref(id, side).unwrap() {
                    prop_assert!(map.contains(child));
                }
            }
        }
        // Rebuilding is deterministic.
        let again = LinearMap::build(&heap, &[nodes[0]]).unwrap();
        prop_assert_eq!(map.order(), again.order());
    }

    /// Isomorphism is reflexive and symmetric; deep copies are
    /// isomorphic to their source; double copies stay isomorphic.
    #[test]
    fn isomorphism_and_copy_laws(
        n in 1usize..16,
        edges in proptest::collection::vec((0usize..16, any::<bool>(), 0usize..16), 0..24)
    ) {
        let (mut heap, class) = fresh_heap();
        let nodes: Vec<ObjId> = (0..n)
            .map(|i| heap.alloc(class, vec![Value::Int(i as i32), Value::Null, Value::Null]).unwrap())
            .collect();
        for (a, left, b) in edges {
            let side = if left { "left" } else { "right" };
            heap.set_field(nodes[a % n], side, Value::Ref(nodes[b % n])).unwrap();
        }
        let root = nodes[0];
        // Reflexive.
        prop_assert!(isomorphic(&heap, root, &heap, root).unwrap());
        // Copy within: isomorphic, disjoint object ids.
        let within = deep_copy_within(&mut heap, &[root]).unwrap();
        let copy_root = within[&root];
        prop_assert!(isomorphic(&heap, root, &heap, copy_root).unwrap());
        // Symmetric.
        prop_assert!(isomorphic(&heap, copy_root, &heap, root).unwrap());
        prop_assert_eq!(first_difference(&heap, &[root], &heap, &[copy_root]).unwrap(), None);
        // Copy between heaps, twice: transitivity in practice.
        let mut other = Heap::new(heap.registry_handle().clone());
        let across = deep_copy_between(&heap, &[root], &mut other).unwrap();
        let mut third = Heap::new(heap.registry_handle().clone());
        let across2 = deep_copy_between(&other, &[across[&root]], &mut third).unwrap();
        prop_assert!(isomorphic_multi(
            &heap,
            &[root],
            &third,
            &[across2[&across[&root]]]
        ).unwrap());
    }

    /// Mutating one field breaks isomorphism detectably (unless the
    /// write is the value already present).
    #[test]
    fn single_field_divergence_is_detected(
        n in 2usize..12,
        edges in proptest::collection::vec((0usize..12, any::<bool>(), 0usize..12), 0..16),
        pick in 0usize..12,
        new_value in any::<i32>()
    ) {
        let (mut heap, class) = fresh_heap();
        let nodes: Vec<ObjId> = (0..n)
            .map(|i| heap.alloc(class, vec![Value::Int(i as i32), Value::Null, Value::Null]).unwrap())
            .collect();
        for (a, left, b) in edges {
            let side = if left { "left" } else { "right" };
            heap.set_field(nodes[a % n], side, Value::Ref(nodes[b % n])).unwrap();
        }
        let root = nodes[0];
        let mut other = Heap::new(heap.registry_handle().clone());
        let map = deep_copy_between(&heap, &[root], &mut other).unwrap();
        // Mutate a node in the copy that is reachable from the root.
        let reachable = LinearMap::build(&heap, &[root]).unwrap();
        let target_src = reachable.at((pick % reachable.len()) as u32).unwrap();
        let old = heap.get_field(target_src, "data").unwrap();
        let target = map[&target_src];
        other.set_field(target, "data", Value::Int(new_value)).unwrap();
        let should_match = old == Value::Int(new_value);
        prop_assert_eq!(
            isomorphic(&heap, root, &other, map[&root]).unwrap(),
            should_match
        );
    }
}
