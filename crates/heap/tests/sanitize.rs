//! Sanitizer trap tests: each shadow-liveness bug class must panic at
//! the offending call with its `NRMI-Z00x` code in the message.
//!
//! These misuse patterns are silent in normal builds (they read a
//! plausible-looking imposter object); the whole point of `--features
//! sanitize` is that they become loud. Compiled only under the feature.

#![cfg(feature = "sanitize")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use nrmi_heap::{ClassRegistry, DenseIdMap, Heap, SharedRegistry, Value};

fn registry() -> SharedRegistry {
    let mut reg = ClassRegistry::new();
    reg.define("Cell").field_int("v").serializable().register();
    reg.snapshot()
}

fn cell(heap: &mut Heap, v: i32) -> nrmi_heap::ObjId {
    let class = heap.registry_handle().by_name("Cell").unwrap();
    heap.alloc(class, vec![Value::Int(v)]).unwrap()
}

/// Runs `f`, asserting it panics with `code` in the message.
fn assert_traps(code: &str, f: impl FnOnce()) {
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a sanitizer trap");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(msg.contains(code), "trap message missing {code}: {msg}");
}

#[test]
fn z001_use_after_gc_traps() {
    let mut heap = Heap::new(registry());
    let stale = cell(&mut heap, 1);
    heap.free(stale).unwrap();
    // Recycle the arena slot with a fresh allocation …
    let fresh = cell(&mut heap, 2);
    assert_eq!(fresh.index(), stale.index(), "slot recycled");
    // … then dereference the dead handle: without the shadow generation
    // this silently reads the imposter's 2.
    assert_traps("NRMI-Z001", || {
        let _ = heap.get(stale);
    });
}

#[test]
fn z001_exempt_probes_stay_quiet() {
    // The warm cache deliberately probes possibly-recycled handles; the
    // probe APIs must classify, not trap.
    let mut heap = Heap::new(registry());
    let stale = cell(&mut heap, 1);
    heap.free(stale).unwrap();
    let _fresh = cell(&mut heap, 2);
    assert!(heap.contains(stale), "slot itself is live (recycled)");
    assert!(heap.version_if_live(stale).is_some());
}

#[test]
fn z002_cross_heap_confusion_traps() {
    let reg = registry();
    let mut a = Heap::new(reg.clone());
    let mut b = Heap::new(reg);
    let id_a = cell(&mut a, 7);
    let _id_b = cell(&mut b, 8);
    // Same index, wrong heap: plausible in normal builds, a trap here.
    assert_traps("NRMI-Z002", || {
        let _ = b.get(id_a);
    });
}

#[test]
fn z003_stale_densemap_read_traps() {
    let mut heap = Heap::new(registry());
    let old = cell(&mut heap, 1);
    let mut map: DenseIdMap<u32> = DenseIdMap::new();
    map.insert(old, 42);
    // Recycle the slot, then read the old entry through the new handle.
    heap.free(old).unwrap();
    let new = cell(&mut heap, 2);
    assert_eq!(new.index(), old.index(), "slot recycled");
    assert_traps("NRMI-Z003", || {
        let _ = map.get(new);
    });
}

#[test]
fn z003_same_generation_reads_are_clean() {
    let mut heap = Heap::new(registry());
    let id = cell(&mut heap, 1);
    let mut map: DenseIdMap<u32> = DenseIdMap::new();
    map.insert(id, 42);
    assert_eq!(map.get(id), Some(42));
}
