//! The paper's running example and binary-tree workload builders.
//!
//! Section 2 of the paper develops one example used throughout: a 7-node
//! binary tree `t` of integers with two aliases into its interior
//! (`alias1 → t.left`, `alias2 → t.right`, Figure 1), and a procedure
//! `foo` that mutates data, unlinks subtrees, and splices in a new node
//! (Figure 2). This module reproduces that example exactly, plus the
//! seeded random trees used by the benchmarks (§5.3.2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::class::{ClassId, ClassRegistry};
use crate::heap_impl::{Heap, HeapAccess};
use crate::value::{ObjId, Value};
use crate::Result;

/// Class ids for the tree workloads.
#[derive(Clone, Copy, Debug)]
pub struct TreeClasses {
    /// `class Tree implements java.rmi.Restorable { int data; Tree left, right; }`
    pub tree: ClassId,
}

/// Registers the `Tree` class (restorable, hence serializable) used by the
/// running example and all benchmarks.
pub fn register_tree_classes(registry: &mut ClassRegistry) -> TreeClasses {
    let tree = registry
        .define("Tree")
        .field_int("data")
        .field_ref("left")
        .field_ref("right")
        .restorable()
        .register();
    TreeClasses { tree }
}

/// Handles into the Figure 1 graph.
///
/// ```text
///            t(5)
///           /    \
///        L(3)    R(7)     alias1 → L,  alias2 → R
///        /  \    /  \
///    LL(1) LR(4) RL(6) RR(11)
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RunningExample {
    /// The root `t` passed to `foo`.
    pub root: ObjId,
    /// `t.left` before the call (data 3).
    pub left: ObjId,
    /// `t.right` before the call (data 7).
    pub right: ObjId,
    /// `t.left.left` (data 1).
    pub ll: ObjId,
    /// `t.left.right` (data 4).
    pub lr: ObjId,
    /// `t.right.left` (data 6).
    pub rl: ObjId,
    /// `t.right.right` (data 11, set to 8 by `foo`).
    pub rr: ObjId,
    /// What `alias1` points at (the pre-call `t.left`).
    pub alias1_target: ObjId,
    /// What `alias2` points at (the pre-call `t.right`).
    pub alias2_target: ObjId,
}

/// Builds the Figure 1 tree with both aliasing references.
///
/// # Errors
/// Propagates allocation errors.
pub fn build_running_example(heap: &mut Heap, classes: &TreeClasses) -> Result<RunningExample> {
    let node = |heap: &mut Heap, data: i32, left: Value, right: Value| {
        heap.alloc(classes.tree, vec![Value::Int(data), left, right])
    };
    let ll = node(heap, 1, Value::Null, Value::Null)?;
    let lr = node(heap, 4, Value::Null, Value::Null)?;
    let rl = node(heap, 6, Value::Null, Value::Null)?;
    let rr = node(heap, 11, Value::Null, Value::Null)?;
    let left = node(heap, 3, Value::Ref(ll), Value::Ref(lr))?;
    let right = node(heap, 7, Value::Ref(rl), Value::Ref(rr))?;
    let root = node(heap, 5, Value::Ref(left), Value::Ref(right))?;
    Ok(RunningExample {
        root,
        left,
        right,
        ll,
        lr,
        rl,
        rr,
        alias1_target: left,
        alias2_target: right,
    })
}

/// The paper's `foo`, verbatim (Section 2):
///
/// ```java
/// void foo(Tree tree) {
///   tree.left.data = 0;
///   tree.right.data = 9;
///   tree.right.right.data = 8;
///   tree.left = null;
///   Tree temp = new Tree(2, tree.right.right, null);
///   tree.right.right = null;
///   tree.right = temp;
/// }
/// ```
///
/// Written against [`HeapAccess`] so the same body runs locally, on a
/// server copy, or over remote references (Figure 3's world).
///
/// # Errors
/// Propagates heap/proxy access errors.
pub fn run_foo(heap: &mut dyn HeapAccess, tree: ObjId) -> Result<()> {
    let tree_class = heap.class_of(tree)?;
    let left = heap
        .get_field(tree, "left")?
        .as_ref_id()
        .expect("tree.left");
    let right = heap
        .get_field(tree, "right")?
        .as_ref_id()
        .expect("tree.right");
    heap.set_field(left, "data", Value::Int(0))?;
    heap.set_field(right, "data", Value::Int(9))?;
    let right_right = heap
        .get_field(right, "right")?
        .as_ref_id()
        .expect("tree.right.right");
    heap.set_field(right_right, "data", Value::Int(8))?;
    heap.set_field(tree, "left", Value::Null)?;
    let temp = heap.alloc_raw(
        tree_class,
        vec![Value::Int(2), Value::Ref(right_right), Value::Null],
    )?;
    heap.set_field(right, "right", Value::Null)?;
    heap.set_field(tree, "right", Value::Ref(temp))?;
    Ok(())
}

/// Checks that the heap state around `ex` matches Figure 2 — the result of
/// a *local* call `foo(t)`, which is also the contract of a correct
/// copy-restore remote call. Returns a list of violated expectations
/// (empty = success), so tests can report precisely what diverged.
///
/// # Errors
/// Propagates heap access errors (e.g. prematurely freed nodes).
pub fn figure2_violations(heap: &mut Heap, ex: &RunningExample) -> Result<Vec<String>> {
    let mut violations = Vec::new();
    let mut check = |cond: bool, what: &str| {
        if !cond {
            violations.push(what.to_owned());
        }
    };

    // Mutations visible through aliases even where unlinked from t:
    let left_data = heap.get_field(ex.alias1_target, "data")?;
    check(
        left_data == Value::Int(0),
        "alias1.data == 0 (was t.left.data = 0)",
    );
    let right_data = heap.get_field(ex.alias2_target, "data")?;
    check(
        right_data == Value::Int(9),
        "alias2.data == 9 (was t.right.data = 9)",
    );
    let rr_data = heap.get_field(ex.rr, "data")?;
    check(rr_data == Value::Int(8), "t.right.right.data == 8");

    // Structural changes on t itself:
    let t_left = heap.get_ref(ex.root, "left")?;
    check(t_left.is_none(), "t.left == null");
    let t_right = heap.get_ref(ex.root, "right")?;
    match t_right {
        None => check(false, "t.right is null, expected new node"),
        Some(temp) => {
            check(temp != ex.right, "t.right is a NEW node, not the old one");
            let temp_data = heap.get_field(temp, "data")?;
            check(temp_data == Value::Int(2), "t.right.data == 2 (new node)");
            let temp_left = heap.get_ref(temp, "left")?;
            check(
                temp_left == Some(ex.rr),
                "t.right.left is the ORIGINAL t.right.right node (identity preserved)",
            );
            let temp_right = heap.get_ref(temp, "right")?;
            check(
                temp_right.is_none(),
                "t.right.right == null (new node's right)",
            );
        }
    }

    // The old right node was unlinked from rr:
    let old_right_right = heap.get_ref(ex.alias2_target, "right")?;
    check(
        old_right_right.is_none(),
        "alias2.right == null (tree.right.right = null)",
    );
    // Its left child is untouched:
    let old_right_left = heap.get_ref(ex.alias2_target, "left")?;
    check(
        old_right_left == Some(ex.rl),
        "alias2.left still the original RL node",
    );

    // The unlinked left subtree keeps its children (visible via alias1):
    let a1_left = heap.get_ref(ex.alias1_target, "left")?;
    check(a1_left == Some(ex.ll), "alias1.left still LL");
    let a1_right = heap.get_ref(ex.alias1_target, "right")?;
    check(a1_right == Some(ex.lr), "alias1.right still LR");

    Ok(violations)
}

/// Checks Figure 9 — the result under DCE RPC semantics, where changes to
/// data that became unreachable from `t` are *not* restored: `t.left.data`
/// and `t.right.data` keep their old values and the old right node's
/// `right` field still points at the original RR node. Everything
/// reachable from `t` after the call matches Figure 2.
///
/// # Errors
/// Propagates heap access errors.
pub fn figure9_violations(heap: &mut Heap, ex: &RunningExample) -> Result<Vec<String>> {
    let mut violations = Vec::new();
    let mut check = |cond: bool, what: &str| {
        if !cond {
            violations.push(what.to_owned());
        }
    };

    // Disregarded on the caller site under DCE RPC (Figure 9):
    let left_data = heap.get_field(ex.alias1_target, "data")?;
    check(
        left_data == Value::Int(3),
        "alias1.data unchanged (DCE drops tree.left.data = 0)",
    );
    let right_data = heap.get_field(ex.alias2_target, "data")?;
    check(
        right_data == Value::Int(7),
        "alias2.data unchanged (DCE drops tree.right.data = 9)",
    );
    let old_rr_link = heap.get_ref(ex.alias2_target, "right")?;
    check(
        old_rr_link == Some(ex.rr),
        "alias2.right still RR (DCE drops tree.right.right = null)",
    );

    // Still restored (reachable from t after the call):
    let rr_data = heap.get_field(ex.rr, "data")?;
    check(
        rr_data == Value::Int(8),
        "t.right.right.data == 8 (still reachable via new node)",
    );
    let t_left = heap.get_ref(ex.root, "left")?;
    check(t_left.is_none(), "t.left == null");
    match heap.get_ref(ex.root, "right")? {
        None => check(false, "t.right is null, expected new node"),
        Some(temp) => {
            let temp_data = heap.get_field(temp, "data")?;
            check(temp_data == Value::Int(2), "t.right.data == 2 (new node)");
            let temp_left = heap.get_ref(temp, "left")?;
            check(
                temp_left == Some(ex.rr),
                "t.right.left is the original RR node",
            );
        }
    }

    Ok(violations)
}

/// Builds a random binary tree with exactly `size` nodes and returns its
/// root. Shapes and data are drawn from a seeded RNG so client and server
/// (and repeated benchmark runs) see identical workloads.
///
/// # Errors
/// Propagates allocation errors.
///
/// # Panics
/// Panics if `size` is zero.
pub fn build_random_tree(
    heap: &mut Heap,
    classes: &TreeClasses,
    size: usize,
    seed: u64,
) -> Result<ObjId> {
    assert!(size > 0, "tree size must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    build_random_subtree(heap, classes, size, &mut rng)
}

fn build_random_subtree(
    heap: &mut Heap,
    classes: &TreeClasses,
    size: usize,
    rng: &mut StdRng,
) -> Result<ObjId> {
    debug_assert!(size > 0);
    let data = Value::Int(rng.gen_range(-1000..1000));
    if size == 1 {
        return heap.alloc(classes.tree, vec![data, Value::Null, Value::Null]);
    }
    let left_size = rng.gen_range(0..size); // remaining after root
    let right_size = size - 1 - left_size;
    let left = if left_size > 0 {
        Value::Ref(build_random_subtree(heap, classes, left_size, rng)?)
    } else {
        Value::Null
    };
    let right = if right_size > 0 {
        Value::Ref(build_random_subtree(heap, classes, right_size, rng)?)
    } else {
        Value::Null
    };
    heap.alloc(classes.tree, vec![data, left, right])
}

/// Collects every node of the tree rooted at `root` in traversal order
/// (root first). Convenience for alias selection in benchmarks.
///
/// # Errors
/// Propagates heap access errors.
pub fn collect_nodes(heap: &Heap, root: ObjId) -> Result<Vec<ObjId>> {
    Ok(crate::traverse::LinearMap::build(heap, &[root])?
        .order()
        .to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassRegistry;

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn running_example_shape_matches_figure_1() {
        let (mut heap, classes) = setup();
        let ex = build_running_example(&mut heap, &classes).unwrap();
        assert_eq!(heap.get_field(ex.root, "data").unwrap(), Value::Int(5));
        assert_eq!(heap.get_ref(ex.root, "left").unwrap(), Some(ex.left));
        assert_eq!(heap.get_ref(ex.root, "right").unwrap(), Some(ex.right));
        assert_eq!(heap.get_ref(ex.right, "right").unwrap(), Some(ex.rr));
        assert_eq!(ex.alias1_target, ex.left);
        assert_eq!(ex.alias2_target, ex.right);
        assert_eq!(collect_nodes(&heap, ex.root).unwrap().len(), 7);
    }

    #[test]
    fn local_foo_produces_figure_2() {
        let (mut heap, classes) = setup();
        let ex = build_running_example(&mut heap, &classes).unwrap();
        run_foo(&mut heap, ex.root).unwrap();
        let violations = figure2_violations(&mut heap, &ex).unwrap();
        assert!(violations.is_empty(), "figure 2 violations: {violations:?}");
    }

    #[test]
    fn local_foo_does_not_satisfy_figure_9() {
        let (mut heap, classes) = setup();
        let ex = build_running_example(&mut heap, &classes).unwrap();
        run_foo(&mut heap, ex.root).unwrap();
        // A local call restores everything, so the DCE expectations
        // (changes dropped) must NOT hold.
        let violations = figure9_violations(&mut heap, &ex).unwrap();
        assert!(!violations.is_empty());
    }

    #[test]
    fn random_trees_have_exact_size_and_are_deterministic() {
        let (mut heap, classes) = setup();
        for size in [1, 2, 16, 64, 256] {
            let root = build_random_tree(&mut heap, &classes, size, 42).unwrap();
            assert_eq!(
                collect_nodes(&heap, root).unwrap().len(),
                size,
                "size {size}"
            );
        }
        // Same seed, same data sequence.
        let (mut h1, c1) = setup();
        let (mut h2, c2) = setup();
        let r1 = build_random_tree(&mut h1, &c1, 32, 7).unwrap();
        let r2 = build_random_tree(&mut h2, &c2, 32, 7).unwrap();
        let n1 = collect_nodes(&h1, r1).unwrap();
        let n2 = collect_nodes(&h2, r2).unwrap();
        let d1: Vec<Value> = n1.iter().map(|&n| heap_field(&mut h1, n)).collect();
        let d2: Vec<Value> = n2.iter().map(|&n| heap_field(&mut h2, n)).collect();
        assert_eq!(d1, d2);
    }

    fn heap_field(heap: &mut Heap, node: ObjId) -> Value {
        heap.get_field(node, "data").unwrap()
    }

    #[test]
    #[should_panic(expected = "tree size must be positive")]
    fn zero_size_tree_panics() {
        let (mut heap, classes) = setup();
        let _ = build_random_tree(&mut heap, &classes, 0, 1);
    }
}
