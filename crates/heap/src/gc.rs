//! Garbage collection: tracing and reference-counting collectors.
//!
//! Two collectors, matching the two worlds in the paper's evaluation:
//!
//! * [`mark_sweep`] — an ordinary tracing collector for a single heap
//!   (what the JVM gives local objects).
//! * [`RcSpace`] — a reference-counting space modelling RMI's Distributed
//!   Garbage Collector. The paper's Table 6 discussion observes that
//!   call-by-reference through remote pointers creates *distributed
//!   circular garbage* that reference counting cannot reclaim, so the
//!   benchmark's memory grows without bound. `RcSpace` reproduces that
//!   failure mode honestly: it reclaims acyclic garbage promptly and
//!   leaks cycles.

use std::collections::HashMap;

use crate::heap_impl::Heap;
use crate::traverse::{reachable_set, LinearMap};
use crate::value::ObjId;
use crate::Result;

/// Runs a mark-sweep collection over `heap`, treating `roots` as the root
/// set. The mark bitmap is a dense bitset (one bit per arena slot), so
/// marking does no hashing and no per-object allocation. Returns the
/// number of objects freed.
///
/// # Errors
/// Propagates dangling-reference errors (a root that was already freed).
pub fn mark_sweep(heap: &mut Heap, roots: &[ObjId]) -> Result<usize> {
    let marked = reachable_set(heap, roots)?;
    let all: Vec<ObjId> = heap.iter().map(|(id, _)| id).collect();
    let mut freed = 0;
    for id in all {
        if !marked.contains(id) {
            heap.free(id)?;
            freed += 1;
        }
    }
    Ok(freed)
}

/// A reference-counting space over a subset of a heap's objects.
///
/// Counts are per tracked object: one per incoming reference from another
/// *tracked* object, plus one per external pin (a client-held stub, in
/// DGC terms). When a count reaches zero the object is freed and its
/// outgoing references released transitively. Cycles keep each other's
/// counts above zero forever — exactly RMI DGC's limitation.
#[derive(Debug, Default)]
pub struct RcSpace {
    counts: HashMap<ObjId, u32>,
}

impl RcSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        RcSpace::default()
    }

    /// Tracks the whole subgraph reachable from `root`: every reachable
    /// object gets a count equal to its in-degree within the subgraph,
    /// and `root` additionally receives one external pin.
    ///
    /// # Errors
    /// Propagates dangling-reference errors.
    pub fn track_graph(&mut self, heap: &Heap, root: ObjId) -> Result<()> {
        let map = LinearMap::build(heap, &[root])?;
        for &id in map.order() {
            self.counts.entry(id).or_insert(0);
        }
        for &id in map.order() {
            let obj = heap.get(id)?;
            for target in obj.outgoing_refs() {
                if let Some(c) = self.counts.get_mut(&target) {
                    *c += 1;
                }
            }
        }
        self.pin(root);
        Ok(())
    }

    /// Adds an external pin (e.g. a remote stub was handed out).
    pub fn pin(&mut self, id: ObjId) {
        *self.counts.entry(id).or_insert(0) += 1;
    }

    /// Removes an external pin; frees the object (and releases its
    /// outgoing references transitively) if its count reaches zero.
    /// Returns the number of objects freed.
    ///
    /// # Errors
    /// Propagates dangling-reference errors from the underlying heap.
    pub fn unpin(&mut self, heap: &mut Heap, id: ObjId) -> Result<usize> {
        let mut freed = 0;
        let mut worklist = vec![id];
        while let Some(cur) = worklist.pop() {
            let Some(count) = self.counts.get_mut(&cur) else {
                continue; // not tracked by this space
            };
            debug_assert!(*count > 0, "unbalanced unpin for {cur}");
            *count -= 1;
            if *count == 0 {
                self.counts.remove(&cur);
                let outgoing: Vec<ObjId> = heap.get(cur)?.outgoing_refs().collect();
                heap.free(cur)?;
                freed += 1;
                worklist.extend(outgoing);
            }
        }
        Ok(freed)
    }

    /// Number of objects still tracked (i.e. not yet reclaimed).
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    /// The current count for `id`, if tracked.
    pub fn count_of(&self, id: ObjId) -> Option<u32> {
        self.counts.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeClasses};
    use crate::{ClassRegistry, HeapAccess, Value};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn mark_sweep_frees_unreachable_only() {
        let (mut heap, classes) = setup();
        let keep = tree::build_random_tree(&mut heap, &classes, 8, 1).unwrap();
        let _garbage = tree::build_random_tree(&mut heap, &classes, 5, 2).unwrap();
        let freed = mark_sweep(&mut heap, &[keep]).unwrap();
        assert_eq!(freed, 5);
        assert_eq!(heap.live_count(), 8);
        assert!(heap.contains(keep));
    }

    #[test]
    fn mark_sweep_collects_unreachable_cycles() {
        let (mut heap, classes) = setup();
        let a = heap.alloc_default(classes.tree).unwrap();
        let b = heap.alloc_default(classes.tree).unwrap();
        heap.set_field(a, "left", Value::Ref(b)).unwrap();
        heap.set_field(b, "left", Value::Ref(a)).unwrap();
        let keep = heap.alloc_default(classes.tree).unwrap();
        let freed = mark_sweep(&mut heap, &[keep]).unwrap();
        assert_eq!(freed, 2, "tracing GC reclaims the cycle");
        assert_eq!(heap.live_count(), 1);
    }

    #[test]
    fn rc_space_reclaims_acyclic_graph() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 16, 3).unwrap();
        let mut rc = RcSpace::new();
        rc.track_graph(&heap, root).unwrap();
        assert_eq!(rc.tracked(), 16);
        let freed = rc.unpin(&mut heap, root).unwrap();
        assert_eq!(freed, 16, "acyclic graph fully reclaimed by refcounting");
        assert_eq!(heap.live_count(), 0);
        assert_eq!(rc.tracked(), 0);
    }

    #[test]
    fn rc_space_with_shared_node_needs_both_releases() {
        let (mut heap, classes) = setup();
        let shared = heap.alloc_default(classes.tree).unwrap();
        let root = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Ref(shared)],
            )
            .unwrap();
        let mut rc = RcSpace::new();
        rc.track_graph(&heap, root).unwrap();
        assert_eq!(rc.count_of(shared), Some(2), "in-degree 2");
        let freed = rc.unpin(&mut heap, root).unwrap();
        assert_eq!(
            freed, 2,
            "both root and shared reclaimed (both refs released)"
        );
    }

    #[test]
    fn rc_space_leaks_cycles_like_rmi_dgc() {
        let (mut heap, classes) = setup();
        let a = heap.alloc_default(classes.tree).unwrap();
        let b = heap.alloc_default(classes.tree).unwrap();
        heap.set_field(a, "left", Value::Ref(b)).unwrap();
        heap.set_field(b, "left", Value::Ref(a)).unwrap();
        let mut rc = RcSpace::new();
        rc.track_graph(&heap, a).unwrap();
        // Release the only external pin: the internal cycle keeps both
        // counts at 1, so NOTHING is reclaimed — the Table 6 leak.
        let freed = rc.unpin(&mut heap, a).unwrap();
        assert_eq!(freed, 0, "reference counting cannot reclaim the cycle");
        assert_eq!(heap.live_count(), 2);
        assert_eq!(rc.tracked(), 2);
        // A tracing collection over the same heap reclaims it.
        let traced = mark_sweep(&mut heap, &[]).unwrap();
        assert_eq!(traced, 2);
    }

    #[test]
    fn pin_unpin_balance() {
        let (mut heap, classes) = setup();
        let obj = heap.alloc_default(classes.tree).unwrap();
        let mut rc = RcSpace::new();
        rc.pin(obj);
        rc.pin(obj);
        assert_eq!(rc.count_of(obj), Some(2));
        assert_eq!(rc.unpin(&mut heap, obj).unwrap(), 0);
        assert_eq!(rc.unpin(&mut heap, obj).unwrap(), 1);
        assert!(!heap.contains(obj));
    }
}
