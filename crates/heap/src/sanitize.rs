//! Shadow liveness state backing the `sanitize` feature.
//!
//! When `nrmi-heap` is built with `--features sanitize`, every heap gets
//! a process-unique tag and a per-slot allocation-generation table, and
//! every [`ObjId`](crate::ObjId) issued by the heap carries both. The
//! checked accessors ([`Heap::get`](crate::Heap::get),
//! [`Heap::get_mut`], [`Heap::free`](crate::Heap::free) and everything
//! funnelling through them) then trap three bug classes the normal build
//! cannot see, *at the offending call* and with a diagnostic code:
//!
//! * `NRMI-Z001` — use-after-GC: a handle dereferenced after its slot
//!   was freed and recycled by a newer allocation. Without the shadow
//!   generation this reads the imposter object silently.
//! * `NRMI-Z002` — cross-heap confusion: a handle issued by one heap
//!   dereferenced against another (e.g. a client id used server-side).
//! * `NRMI-Z003` — stale dense-map read: a
//!   [`DenseIdMap`](crate::DenseIdMap) entry inserted for a previous
//!   occupant of an arena slot, read back through a handle to the new
//!   occupant (or vice versa).
//!
//! Handles of unknown provenance (rebuilt via
//! [`ObjId::from_index`](crate::ObjId::from_index), e.g. by wire
//! decoding) are exempt, as are the deliberate liveness *probes*
//! ([`Heap::contains`](crate::Heap::contains),
//! [`Heap::class_if_live`](crate::Heap::class_if_live),
//! [`Heap::version_if_live`](crate::Heap::version_if_live)) the warm-call
//! cache uses to classify possibly-recycled handles.
//!
//! [`Heap::get_mut`]: crate::Heap

use std::sync::atomic::{AtomicU32, Ordering};

/// Process-wide heap-tag allocator. Tag 0 is reserved for "unknown".
static NEXT_TAG: AtomicU32 = AtomicU32::new(1);

/// Per-heap shadow state: the heap's tag and each slot's allocation
/// generation (bumped every time an object is placed into the slot).
#[derive(Clone, Debug)]
pub(crate) struct Shadow {
    pub(crate) tag: u32,
    slot_gens: Vec<u32>,
}

impl Shadow {
    pub(crate) fn new() -> Self {
        Shadow {
            tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
            slot_gens: Vec::new(),
        }
    }

    /// Records an allocation into `index` and returns the slot's new
    /// generation.
    pub(crate) fn on_place(&mut self, index: usize) -> u32 {
        if index >= self.slot_gens.len() {
            self.slot_gens.resize(index + 1, 0);
        }
        self.slot_gens[index] = self.slot_gens[index].wrapping_add(1).max(1);
        self.slot_gens[index]
    }

    /// The current generation of `index` (0 if never allocated).
    pub(crate) fn gen_of(&self, index: usize) -> u32 {
        self.slot_gens.get(index).copied().unwrap_or(0)
    }
}
