//! Dense, generation-stamped object-id maps and sets.
//!
//! [`ObjId`]s are small dense arena indices ([`ObjId::index`]), so the
//! `HashMap<ObjId, _>` tables the marshalling hot path used to rebuild on
//! every call (linear-map positions, delta old/new indices, restore
//! matching) can instead be flat `Vec`s indexed by id. Two properties
//! make that safe and fast:
//!
//! * **generation stamps** — each entry records the map generation that
//!   wrote it, so [`DenseIdMap::clear`] is O(1) (bump the generation) and
//!   a pooled map can be reused call after call without touching, or
//!   re-zeroing, its backing storage;
//! * **arena density** — the heap recycles freed slots, so the vector
//!   never grows past the arena's high-water mark
//!   ([`Heap::slot_limit`](crate::Heap::slot_limit)).
//!
//! [`DenseObjSet`] is the companion bitset (1 bit per arena slot) used by
//! reachability and mark-sweep instead of `HashSet<ObjId>`.

use crate::value::ObjId;

/// A map from [`ObjId`] to a small copyable value, stored densely by
/// arena index with O(1) insert, lookup, and clear.
///
/// Cleared maps keep their backing storage; a pooled instance reaches a
/// steady state where no call allocates. Presence is tracked by a
/// per-entry generation stamp, not by value, so any `T` (including zero)
/// round-trips faithfully.
#[derive(Clone, Debug)]
pub struct DenseIdMap<T> {
    /// `(generation, value)` per arena slot; a stale generation means
    /// "absent".
    entries: Vec<(u32, T)>,
    generation: u32,
    /// Shadow provenance per entry: the allocation generation of the
    /// [`ObjId`] each fresh entry was inserted under, so reads through a
    /// handle to a *different* occupant of the same arena slot trap as
    /// `NRMI-Z003` instead of silently returning the stale value.
    #[cfg(feature = "sanitize")]
    origin_gens: Vec<u32>,
}

impl<T: Copy + Default> Default for DenseIdMap<T> {
    fn default() -> Self {
        DenseIdMap {
            entries: Vec::new(),
            // Starts at 1 so freshly grown entries (stamped 0) read as
            // absent.
            generation: 1,
            #[cfg(feature = "sanitize")]
            origin_gens: Vec::new(),
        }
    }
}

impl<T: Copy + Default> DenseIdMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseIdMap::default()
    }

    /// Creates an empty map with room for arena indices `< limit`
    /// without growing (see [`Heap::slot_limit`](crate::Heap::slot_limit)).
    pub fn with_capacity(limit: usize) -> Self {
        let mut map = DenseIdMap::default();
        map.entries.resize(limit, (0, T::default()));
        map
    }

    /// Empties the map in O(1), keeping the backing storage.
    pub fn clear(&mut self) {
        if self.generation == u32::MAX {
            // Stamp wrap: fall back to a real reset (once per 2^32
            // clears).
            self.entries.clear();
            self.generation = 1;
            #[cfg(feature = "sanitize")]
            self.origin_gens.clear();
        } else {
            self.generation += 1;
        }
    }

    /// Inserts or overwrites the value for `id`.
    pub fn insert(&mut self, id: ObjId, value: T) {
        let i = id.index() as usize;
        if i >= self.entries.len() {
            self.entries.resize(i + 1, (0, T::default()));
        }
        self.entries[i] = (self.generation, value);
        #[cfg(feature = "sanitize")]
        {
            if i >= self.origin_gens.len() {
                self.origin_gens.resize(i + 1, 0);
            }
            self.origin_gens[i] = id.alloc_gen;
        }
    }

    /// Inserts `value` only if `id` is absent; returns true if inserted.
    /// (The dense analogue of `entry(id).or_insert(value)`.)
    pub fn insert_if_absent(&mut self, id: ObjId, value: T) -> bool {
        if self.contains(id) {
            return false;
        }
        self.insert(id, value);
        true
    }

    /// The value for `id`, if present.
    pub fn get(&self, id: ObjId) -> Option<T> {
        let hit = self
            .entries
            .get(id.index() as usize)
            .filter(|e| e.0 == self.generation)
            .map(|e| e.1);
        #[cfg(feature = "sanitize")]
        if hit.is_some() {
            let origin = self
                .origin_gens
                .get(id.index() as usize)
                .copied()
                .unwrap_or(0);
            if origin != 0 && id.alloc_gen != 0 && origin != id.alloc_gen {
                panic!(
                    "NRMI-Z003 stale dense-map read: entry for slot {slot} was inserted \
                     under allocation generation {origin} but read through a handle of \
                     generation {reader} — the arena slot was recycled in between",
                    slot = id.index(),
                    reader = id.alloc_gen,
                );
            }
        }
        hit
    }

    /// True if `id` has a value.
    pub fn contains(&self, id: ObjId) -> bool {
        self.get(id).is_some()
    }
}

/// The position table used throughout marshalling: object → `u32` index
/// in some linear order.
pub type DensePositionMap = DenseIdMap<u32>;

/// A dense bitset of [`ObjId`]s (1 bit per arena slot).
///
/// The replacement for `HashSet<ObjId>` in reachability and mark-sweep:
/// membership is one shift and mask, and `clear` keeps the storage.
#[derive(Clone, Debug, Default)]
pub struct DenseObjSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseObjSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        DenseObjSet::default()
    }

    /// Creates an empty set with room for arena indices `< limit`.
    pub fn with_capacity(limit: usize) -> Self {
        DenseObjSet {
            words: vec![0; limit.div_ceil(64)],
            len: 0,
        }
    }

    /// Empties the set, keeping the backing storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Adds `id`; returns true if it was newly inserted.
    pub fn insert(&mut self, id: ObjId) -> bool {
        let i = id.index() as usize;
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// True if `id` is in the set.
    pub fn contains(&self, id: ObjId) -> bool {
        let i = id.index() as usize;
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the ids in ascending arena order.
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| ObjId::from_index((w * 64 + b) as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> ObjId {
        ObjId::from_index(i)
    }

    #[test]
    fn map_insert_get_contains() {
        let mut m = DensePositionMap::new();
        assert_eq!(m.get(id(3)), None);
        m.insert(id(3), 7);
        m.insert(id(0), 0);
        assert_eq!(m.get(id(3)), Some(7));
        assert_eq!(m.get(id(0)), Some(0), "zero values are present");
        assert!(!m.contains(id(1)), "grown gap entries read as absent");
        m.insert(id(3), 9);
        assert_eq!(m.get(id(3)), Some(9), "insert overwrites");
    }

    #[test]
    fn map_clear_is_generational() {
        let mut m = DenseIdMap::<u32>::with_capacity(8);
        m.insert(id(2), 5);
        m.clear();
        assert_eq!(m.get(id(2)), None, "cleared entries are absent");
        m.insert(id(4), 1);
        assert_eq!(m.get(id(4)), Some(1));
        assert_eq!(m.get(id(2)), None, "stale stamp from old generation");
    }

    #[test]
    fn map_insert_if_absent_keeps_first() {
        let mut m = DensePositionMap::new();
        assert!(m.insert_if_absent(id(1), 10));
        assert!(!m.insert_if_absent(id(1), 20));
        assert_eq!(m.get(id(1)), Some(10));
    }

    #[test]
    fn map_generation_wrap_resets_storage() {
        let mut m = DensePositionMap::new();
        m.insert(id(0), 1);
        m.generation = u32::MAX;
        m.clear();
        assert_eq!(m.get(id(0)), None);
        m.insert(id(0), 2);
        assert_eq!(m.get(id(0)), Some(2));
    }

    #[test]
    fn map_near_max_generation_still_distinguishes_stale_entries() {
        // Drive the generation counter right up to the wrap boundary and
        // prove entries written under earlier generations can never read
        // as fresh after any bump in between.
        let mut m = DensePositionMap::new();
        m.generation = u32::MAX - 2;
        m.insert(id(1), 11);
        assert_eq!(m.get(id(1)), Some(11));
        m.clear(); // MAX - 2 -> MAX - 1
        assert_eq!(m.get(id(1)), None, "one bump below MAX hides the entry");
        m.insert(id(2), 22);
        m.clear(); // MAX - 1 -> MAX
        assert_eq!(m.generation, u32::MAX);
        assert_eq!(m.get(id(2)), None, "entry from MAX-1 is stale at MAX");
        m.insert(id(3), 33);
        assert_eq!(m.get(id(3)), Some(33), "the MAX generation itself works");
        m.clear(); // MAX wraps: real reset back to 1
        assert_eq!(m.generation, 1);
        assert_eq!(m.get(id(3)), None, "entries do not survive the wrap");
        assert_eq!(m.get(id(1)), None);
        assert_eq!(m.get(id(2)), None);
    }

    #[test]
    fn stale_entries_never_alias_fresh_ones_across_wrap() {
        // The dangerous wrap scenario: an entry stamped with generation G
        // must not become visible again when the counter cycles back to
        // G. The real reset at MAX makes the cycle safe; walk a map
        // through it and check every slot ever written stays hidden.
        let mut m = DenseIdMap::<u32>::with_capacity(8);
        m.generation = u32::MAX - 1;
        for i in 0..8 {
            m.insert(id(i), 100 + i);
        }
        m.clear(); // -> MAX
        m.clear(); // wrap -> 1 (real reset)
        for bump in 0..4 {
            // Generations 1..=4 after the wrap: old stamps MAX-1 and MAX
            // can never match again because the reset dropped them.
            for i in 0..8 {
                assert_eq!(m.get(id(i)), None, "gen {} slot {}", m.generation, i);
            }
            m.insert(id(bump), bump);
            assert_eq!(m.get(id(bump)), Some(bump));
            m.clear();
        }
    }

    #[test]
    fn set_insert_contains_len() {
        let mut s = DenseObjSet::with_capacity(4);
        assert!(s.is_empty());
        assert!(s.insert(id(3)));
        assert!(s.insert(id(200)), "grows past capacity hint");
        assert!(!s.insert(id(3)), "duplicate insert reports false");
        assert_eq!(s.len(), 2);
        assert!(s.contains(id(3)));
        assert!(s.contains(id(200)));
        assert!(!s.contains(id(64)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![id(3), id(200)]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(id(3)));
    }
}
