//! The managed heap: an arena of objects addressed by stable handles.

use std::fmt;

use crate::class::{ClassId, SharedRegistry};
use crate::error::HeapError;
use crate::object::{Object, ObjectBody};
use crate::value::{ObjId, Value};
use crate::Result;

/// Uniform object access used by server code.
///
/// The paper's server routines run "at full speed" against the local copy
/// under call-by-copy/copy-restore, but under call-by-reference every
/// field access crosses the network (Figure 3). Writing services against
/// this trait lets the *same* service body run in both worlds: [`Heap`]
/// implements it with direct slot access, while `nrmi-core`'s remote-heap
/// proxy implements it with request/reply messages — which is precisely
/// how the paper measures the cost gap in Table 6.
///
/// Methods take `&mut self` even for reads because the proxy
/// implementation performs I/O.
pub trait HeapAccess {
    /// Reads field `field` (by declaration index) of object `obj`.
    ///
    /// # Errors
    /// Returns an error for dangling handles or out-of-range indices.
    fn get_field_raw(&mut self, obj: ObjId, field: usize) -> Result<Value>;

    /// Writes field `field` (by declaration index) of object `obj`.
    ///
    /// # Errors
    /// Returns an error for dangling handles, out-of-range indices, or
    /// type-mismatched values.
    fn set_field_raw(&mut self, obj: ObjId, field: usize, value: Value) -> Result<()>;

    /// Allocates an object of class `class` with the given field values.
    ///
    /// # Errors
    /// Returns an error for unknown classes or arity/type mismatches.
    fn alloc_raw(&mut self, class: ClassId, fields: Vec<Value>) -> Result<ObjId>;

    /// Allocates an array of class `class` with the given elements.
    ///
    /// # Errors
    /// Returns an error if `class` is not an array class.
    fn alloc_array_raw(&mut self, class: ClassId, elements: Vec<Value>) -> Result<ObjId>;

    /// Returns the class of `obj`.
    ///
    /// # Errors
    /// Returns an error for dangling handles.
    fn class_of(&mut self, obj: ObjId) -> Result<ClassId>;

    /// Returns the number of slots (fields or array elements) of `obj`.
    ///
    /// # Errors
    /// Returns an error for dangling handles.
    fn slot_count(&mut self, obj: ObjId) -> Result<usize>;

    /// Reads array element `index` of `obj`.
    ///
    /// # Errors
    /// Returns an error for dangling handles, non-arrays, or bad indices.
    fn get_element(&mut self, obj: ObjId, index: usize) -> Result<Value>;

    /// Writes array element `index` of `obj`.
    ///
    /// # Errors
    /// Returns an error for dangling handles, non-arrays, or bad indices.
    fn set_element(&mut self, obj: ObjId, index: usize, value: Value) -> Result<()>;

    /// The shared class registry this access path resolves names against.
    fn registry(&self) -> &SharedRegistry;

    /// Reads a field by name. Provided in terms of the raw accessors.
    ///
    /// # Errors
    /// As [`HeapAccess::get_field_raw`], plus unknown field names.
    fn get_field(&mut self, obj: ObjId, field: &str) -> Result<Value> {
        let class = self.class_of(obj)?;
        let idx = self.registry().get(class)?.field_index(field)?;
        self.get_field_raw(obj, idx)
    }

    /// Writes a field by name. Provided in terms of the raw accessors.
    ///
    /// # Errors
    /// As [`HeapAccess::set_field_raw`], plus unknown field names.
    fn set_field(&mut self, obj: ObjId, field: &str, value: Value) -> Result<()> {
        let class = self.class_of(obj)?;
        let idx = self.registry().get(class)?.field_index(field)?;
        self.set_field_raw(obj, idx, value)
    }

    /// Reads a reference-typed field, returning `None` for null.
    ///
    /// # Errors
    /// As [`HeapAccess::get_field`].
    fn get_ref(&mut self, obj: ObjId, field: &str) -> Result<Option<ObjId>> {
        Ok(self.get_field(obj, field)?.as_ref_id())
    }
}

/// Allocation and mutation statistics, used both by tests and by the
/// simulated cost model (e.g. Table 6's memory-growth observation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated over the heap's lifetime.
    pub allocations: u64,
    /// Objects freed (by GC or explicit free).
    pub frees: u64,
    /// Field/element writes performed.
    pub writes: u64,
    /// Field/element reads performed.
    pub reads: u64,
}

impl HeapStats {
    /// Objects currently live (allocations minus frees).
    pub fn live(&self) -> u64 {
        self.allocations - self.frees
    }
}

/// An arena of objects addressed by stable [`ObjId`] handles.
///
/// Slots of freed objects are recycled via a free list; handles to freed
/// slots are detected as dangling (`Option` slots), which keeps the
/// substrate honest about use-after-free bugs in middleware code.
pub struct Heap {
    registry: SharedRegistry,
    slots: Vec<Option<Object>>,
    free: Vec<u32>,
    stats: HeapStats,
    epoch: u64,
    #[cfg(feature = "sanitize")]
    shadow: crate::sanitize::Shadow,
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("live", &self.stats.live())
            .field("slots", &self.slots.len())
            .field("classes", &self.registry.len())
            .finish()
    }
}

impl Heap {
    /// Creates an empty heap bound to a class registry snapshot.
    pub fn new(registry: SharedRegistry) -> Self {
        Heap {
            registry,
            slots: Vec::new(),
            free: Vec::new(),
            stats: HeapStats::default(),
            epoch: 0,
            #[cfg(feature = "sanitize")]
            shadow: crate::sanitize::Shadow::new(),
        }
    }

    /// Builds a handle for slot `index` carrying this heap's current
    /// provenance (a no-op wrapper around the index in normal builds).
    fn handle(&self, index: u32) -> ObjId {
        ObjId {
            index,
            #[cfg(feature = "sanitize")]
            heap_tag: self.shadow.tag,
            #[cfg(feature = "sanitize")]
            alloc_gen: self.shadow.gen_of(index as usize),
        }
    }

    /// Traps sanitizer-visible misuse of `id` before a checked operation.
    ///
    /// Freed-but-unrecycled slots are *not* trapped here: they surface as
    /// the ordinary [`HeapError::DanglingRef`] so error-path semantics are
    /// identical with and without the feature.
    #[cfg(feature = "sanitize")]
    fn sanitize_check(&self, id: ObjId, op: &str) {
        if id.heap_tag != 0 && id.heap_tag != self.shadow.tag {
            panic!(
                "NRMI-Z002 cross-heap handle confusion: `{op}` on {id} issued by heap \
                 #{issuer} but applied to heap #{this}",
                issuer = id.heap_tag,
                this = self.shadow.tag,
            );
        }
        if id.heap_tag == self.shadow.tag && id.alloc_gen != 0 {
            let idx = id.index as usize;
            let live = self.slots.get(idx).is_some_and(Option::is_some);
            let current = self.shadow.gen_of(idx);
            if live && current != id.alloc_gen {
                panic!(
                    "NRMI-Z001 use-after-GC: `{op}` on {id} (allocation generation \
                     {stale}) reached a recycled slot now owned by generation {current}",
                    stale = id.alloc_gen,
                );
            }
        }
    }

    /// The heap's mutation clock: a monotone counter advanced by every
    /// allocation and every slot write. Each object remembers the epoch
    /// of its last mutation ([`Heap::version_of`]); comparing versions
    /// against a remembered epoch yields the dirty subset of a graph in
    /// O(objects) with no slot diffing — the basis of warm-call request
    /// deltas.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch at which `id` was last allocated or mutated.
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`] if `id` is freed or unallocated.
    pub fn version_of(&self, id: ObjId) -> Result<u64> {
        Ok(self.get(id)?.version)
    }

    /// Advances the clock and returns the new stamp for a mutation.
    fn tick(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// The registry this heap resolves classes against.
    pub fn registry_handle(&self) -> &SharedRegistry {
        &self.registry
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Exclusive upper bound on every live [`ObjId::index`]: the arena's
    /// high-water mark. Sizes dense id-indexed structures
    /// ([`crate::densemap`]) so they never grow mid-traversal.
    pub fn slot_limit(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over `(id, object)` pairs for all live objects, in slot
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (self.handle(i as u32), o)))
    }

    /// Borrows the object behind `id`.
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`] if `id` is freed or unallocated.
    pub fn get(&self, id: ObjId) -> Result<&Object> {
        #[cfg(feature = "sanitize")]
        self.sanitize_check(id, "get");
        self.slots
            .get(id.index as usize)
            .and_then(Option::as_ref)
            .ok_or(HeapError::DanglingRef(id.index))
    }

    fn get_mut(&mut self, id: ObjId) -> Result<&mut Object> {
        #[cfg(feature = "sanitize")]
        self.sanitize_check(id, "get_mut");
        self.slots
            .get_mut(id.index as usize)
            .and_then(Option::as_mut)
            .ok_or(HeapError::DanglingRef(id.index))
    }

    /// True if `id` refers to a live object.
    ///
    /// This is a liveness *probe*, not a dereference: it is exempt from
    /// `sanitize`-mode provenance checks so callers may test handles that
    /// are allowed to have gone stale (the warm-call cache does).
    pub fn contains(&self, id: ObjId) -> bool {
        self.slots
            .get(id.index as usize)
            .is_some_and(Option::is_some)
    }

    /// The class of the object currently occupying `id`'s slot, or `None`
    /// if the slot is empty.
    ///
    /// Like [`Heap::contains`] this is a probe over possibly-stale
    /// handles (exempt from `sanitize` checks): the occupant may not be
    /// the object `id` was issued for. The warm-call classifier uses this
    /// to treat class-changed slots as freed.
    pub fn class_if_live(&self, id: ObjId) -> Option<ClassId> {
        self.slots
            .get(id.index as usize)
            .and_then(Option::as_ref)
            .map(Object::class)
    }

    /// The mutation version of the object currently occupying `id`'s
    /// slot, or `None` if the slot is empty.
    ///
    /// Probe semantics, as [`Heap::class_if_live`]: recycled slots report
    /// the *new* occupant's version, which is strictly newer than any
    /// epoch observed before the recycling — so stale-epoch comparisons
    /// see reuse as dirty, never as clean.
    pub fn version_if_live(&self, id: ObjId) -> Option<u64> {
        self.slots
            .get(id.index as usize)
            .and_then(Option::as_ref)
            .map(|o| o.version)
    }

    /// The allocation epoch of the object currently occupying `id`'s
    /// slot, or `None` if the slot is empty.
    ///
    /// Probe semantics, as [`Heap::version_if_live`]. An occupant born
    /// *after* a version the caller recorded for `id` proves the slot
    /// was freed and recycled in between — the recorded object is gone,
    /// whatever now answers the probe. The coherence protocol uses this
    /// to tell a repairable mutation from an unrepairable recycle
    /// without dereferencing (which `sanitize` builds trap on recycled
    /// slots).
    pub fn born_if_live(&self, id: ObjId) -> Option<u64> {
        self.slots
            .get(id.index as usize)
            .and_then(Option::as_ref)
            .map(|o| o.born)
    }

    fn place(&mut self, mut obj: Object) -> ObjId {
        self.stats.allocations += 1;
        obj.version = self.tick();
        obj.born = obj.version;
        let index = if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(obj);
            idx
        } else {
            self.slots.push(Some(obj));
            (self.slots.len() - 1) as u32
        };
        #[cfg(feature = "sanitize")]
        self.shadow.on_place(index as usize);
        self.handle(index)
    }

    /// Allocates an object, validating arity and field types against the
    /// class descriptor.
    ///
    /// # Errors
    /// [`HeapError::UnknownClass`], [`HeapError::ArityMismatch`] or
    /// [`HeapError::TypeMismatch`].
    pub fn alloc(&mut self, class: ClassId, fields: Vec<Value>) -> Result<ObjId> {
        let desc = self.registry.get(class)?;
        if desc.flags().array {
            return Err(HeapError::NotAnArray(desc.name().to_owned()));
        }
        if fields.len() != desc.field_count() {
            return Err(HeapError::ArityMismatch {
                class: desc.name().to_owned(),
                expected: desc.field_count(),
                found: fields.len(),
            });
        }
        for (fd, v) in desc.fields().iter().zip(&fields) {
            if !fd.ty().admits(v) {
                return Err(HeapError::TypeMismatch {
                    class: desc.name().to_owned(),
                    field: fd.name().to_owned(),
                    expected: type_name(fd.ty()),
                    found: v.kind_name(),
                });
            }
        }
        Ok(self.place(Object::new(class, fields)))
    }

    /// Allocates an object with all fields set to their type defaults.
    ///
    /// # Errors
    /// [`HeapError::UnknownClass`] or [`HeapError::NotAnArray`].
    pub fn alloc_default(&mut self, class: ClassId) -> Result<ObjId> {
        let desc = self.registry.get(class)?;
        let fields = desc
            .fields()
            .iter()
            .map(|f| f.ty().default_value())
            .collect();
        self.alloc(class, fields)
    }

    /// Allocates an array object.
    ///
    /// # Errors
    /// [`HeapError::NotAnArray`] if `class` is not an array class, or
    /// [`HeapError::TypeMismatch`] for elements of the wrong type.
    pub fn alloc_array(&mut self, class: ClassId, elements: Vec<Value>) -> Result<ObjId> {
        let desc = self.registry.get(class)?;
        let Some(elem_ty) = desc.element_type() else {
            return Err(HeapError::NotAnArray(desc.name().to_owned()));
        };
        for v in &elements {
            if !elem_ty.admits(v) {
                return Err(HeapError::TypeMismatch {
                    class: desc.name().to_owned(),
                    field: "[]".to_owned(),
                    expected: type_name(elem_ty),
                    found: v.kind_name(),
                });
            }
        }
        Ok(self.place(Object::new_array(class, elements)))
    }

    /// Frees the object behind `id`, recycling its slot.
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`] if already freed.
    pub fn free(&mut self, id: ObjId) -> Result<()> {
        #[cfg(feature = "sanitize")]
        self.sanitize_check(id, "free");
        let slot = self
            .slots
            .get_mut(id.index as usize)
            .ok_or(HeapError::DanglingRef(id.index))?;
        if slot.take().is_none() {
            return Err(HeapError::DanglingRef(id.index));
        }
        self.stats.frees += 1;
        self.free.push(id.index);
        Ok(())
    }

    /// Replaces every field slot of `id` with `values` (same arity), used
    /// by the restore algorithm's overwrite step (step 5).
    ///
    /// # Errors
    /// Dangling handles or arity mismatches.
    pub fn overwrite_slots(&mut self, id: ObjId, values: Vec<Value>) -> Result<()> {
        self.stats.writes += 1;
        let stamp = self.tick();
        let obj = self.get_mut(id)?;
        obj.version = stamp;
        let len = obj.body.len();
        if len == values.len() {
            obj.body.slots_mut().clone_from_slice(&values);
            Ok(())
        } else {
            // Arrays may change length server-side; replace wholesale.
            match &mut obj.body {
                ObjectBody::Array(v) => {
                    *v = values;
                    Ok(())
                }
                ObjectBody::Fields(_) => Err(HeapError::ArityMismatch {
                    class: String::from("<overwrite>"),
                    expected: len,
                    found: values.len(),
                }),
            }
        }
    }

    /// Allocates a remote-stub object proxying the peer's object `key`.
    ///
    /// # Errors
    /// Propagates allocation errors.
    pub fn alloc_stub(&mut self, key: u64) -> Result<ObjId> {
        let class = self.registry.stub_class();
        self.alloc(class, vec![Value::Long(key as i64)])
    }

    /// If `id` is a remote stub, returns the peer export key it carries.
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`].
    pub fn stub_key(&self, id: ObjId) -> Result<Option<u64>> {
        let obj = self.get(id)?;
        let desc = self.registry.get(obj.class())?;
        if desc.flags().stub {
            Ok(obj
                .body()
                .slots()
                .first()
                .and_then(Value::as_long)
                .map(|k| k as u64))
        } else {
            Ok(None)
        }
    }

    /// Clones the full slot vector of `id`.
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`].
    pub fn slots_of(&self, id: ObjId) -> Result<Vec<Value>> {
        Ok(self.get(id)?.body().slots().to_vec())
    }

    /// Clones the slots of `id` into `out` (cleared first), reusing
    /// `out`'s storage — the pooled-snapshot path of [`slots_of`].
    ///
    /// [`slots_of`]: Heap::slots_of
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`] if `id` is freed or unallocated.
    pub fn clone_slots_into(&self, id: ObjId, out: &mut Vec<Value>) -> Result<()> {
        let slots = self.get(id)?.body().slots();
        out.clear();
        out.extend_from_slice(slots);
        Ok(())
    }

    /// Rewrites every reference slot of `id` through `map`; slots whose
    /// target is absent from `map` are left unchanged. Used by restore
    /// step 6 (pointer conversion new → old).
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`].
    pub fn rewrite_refs(
        &mut self,
        id: ObjId,
        map: &std::collections::HashMap<ObjId, ObjId>,
    ) -> Result<()> {
        self.rewrite_refs_with(id, |target| map.get(&target).copied())
    }

    /// As [`rewrite_refs`](Heap::rewrite_refs), but resolving each
    /// reference through `lookup` — lets callers translate through dense
    /// tables without materializing a `HashMap`.
    ///
    /// # Errors
    /// [`HeapError::DanglingRef`].
    pub fn rewrite_refs_with(
        &mut self,
        id: ObjId,
        lookup: impl Fn(ObjId) -> Option<ObjId>,
    ) -> Result<()> {
        self.stats.writes += 1;
        let stamp = self.tick();
        let obj = self.get_mut(id)?;
        obj.version = stamp;
        for slot in obj.body.slots_mut() {
            if let Value::Ref(target) = slot {
                if let Some(new_target) = lookup(*target) {
                    *slot = Value::Ref(new_target);
                }
            }
        }
        Ok(())
    }
}

fn type_name(ty: crate::class::FieldType) -> &'static str {
    use crate::class::FieldType;
    match ty {
        FieldType::Bool => "bool",
        FieldType::Int => "int",
        FieldType::Long => "long",
        FieldType::Double => "double",
        FieldType::Str => "str",
        FieldType::Ref => "ref",
        FieldType::Any => "any",
    }
}

impl HeapAccess for Heap {
    fn get_field_raw(&mut self, obj: ObjId, field: usize) -> Result<Value> {
        self.stats.reads += 1;
        let o = self.get(obj)?;
        o.body()
            .slots()
            .get(field)
            .cloned()
            .ok_or_else(|| HeapError::FieldIndexOutOfBounds {
                class: class_name(&self.registry, o.class()),
                index: field,
                len: o.body().len(),
            })
    }

    fn set_field_raw(&mut self, obj: ObjId, field: usize, value: Value) -> Result<()> {
        self.stats.writes += 1;
        let registry = self.registry.clone();
        let stamp = self.tick();
        let o = self.get_mut(obj)?;
        let class = o.class();
        let len = o.body().len();
        // Type-check ordinary fields; array classes have no descriptors.
        if !o.is_array() {
            let desc = registry.get(class)?;
            let fd = desc
                .fields()
                .get(field)
                .ok_or(HeapError::FieldIndexOutOfBounds {
                    class: desc.name().to_owned(),
                    index: field,
                    len,
                })?;
            if !fd.ty().admits(&value) {
                return Err(HeapError::TypeMismatch {
                    class: desc.name().to_owned(),
                    field: fd.name().to_owned(),
                    expected: type_name(fd.ty()),
                    found: value.kind_name(),
                });
            }
        }
        let slot = o
            .body
            .slots_mut()
            .get_mut(field)
            .ok_or(HeapError::FieldIndexOutOfBounds {
                class: class_name(&registry, class),
                index: field,
                len,
            })?;
        *slot = value;
        o.version = stamp;
        Ok(())
    }

    fn alloc_raw(&mut self, class: ClassId, fields: Vec<Value>) -> Result<ObjId> {
        self.alloc(class, fields)
    }

    fn alloc_array_raw(&mut self, class: ClassId, elements: Vec<Value>) -> Result<ObjId> {
        self.alloc_array(class, elements)
    }

    fn class_of(&mut self, obj: ObjId) -> Result<ClassId> {
        Ok(self.get(obj)?.class())
    }

    fn slot_count(&mut self, obj: ObjId) -> Result<usize> {
        Ok(self.get(obj)?.body().len())
    }

    fn get_element(&mut self, obj: ObjId, index: usize) -> Result<Value> {
        self.stats.reads += 1;
        let o = self.get(obj)?;
        if !o.is_array() {
            return Err(HeapError::NotAnArray(class_name(&self.registry, o.class())));
        }
        o.body()
            .slots()
            .get(index)
            .cloned()
            .ok_or(HeapError::ArrayIndexOutOfBounds {
                index,
                len: o.body().len(),
            })
    }

    fn set_element(&mut self, obj: ObjId, index: usize, value: Value) -> Result<()> {
        self.stats.writes += 1;
        let registry = self.registry.clone();
        let stamp = self.tick();
        let o = self.get_mut(obj)?;
        if !o.is_array() {
            return Err(HeapError::NotAnArray(class_name(&registry, o.class())));
        }
        let len = o.body().len();
        let slot = o
            .body
            .slots_mut()
            .get_mut(index)
            .ok_or(HeapError::ArrayIndexOutOfBounds { index, len })?;
        *slot = value;
        o.version = stamp;
        Ok(())
    }

    fn registry(&self) -> &SharedRegistry {
        &self.registry
    }
}

fn class_name(registry: &SharedRegistry, class: ClassId) -> String {
    registry
        .get(class)
        .map(|d| d.name().to_owned())
        .unwrap_or_else(|_| format!("<class:{}>", class.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassRegistry, FieldType};

    fn tree_setup() -> (SharedRegistry, ClassId) {
        let mut reg = ClassRegistry::new();
        let tree = reg
            .define("Tree")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        (reg.snapshot(), tree)
    }

    #[test]
    fn alloc_get_set_roundtrip() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let leaf = heap
            .alloc(tree, vec![Value::Int(7), Value::Null, Value::Null])
            .unwrap();
        let root = heap
            .alloc(tree, vec![Value::Int(1), Value::Ref(leaf), Value::Null])
            .unwrap();
        assert_eq!(heap.get_field(root, "data").unwrap(), Value::Int(1));
        assert_eq!(heap.get_ref(root, "left").unwrap(), Some(leaf));
        heap.set_field(root, "data", Value::Int(9)).unwrap();
        assert_eq!(heap.get_field(root, "data").unwrap(), Value::Int(9));
        assert_eq!(heap.live_count(), 2);
    }

    #[test]
    fn aliasing_two_handles_same_object() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let shared = heap.alloc_default(tree).unwrap();
        let a = heap
            .alloc(tree, vec![Value::Int(1), Value::Ref(shared), Value::Null])
            .unwrap();
        let b = heap
            .alloc(tree, vec![Value::Int(2), Value::Ref(shared), Value::Null])
            .unwrap();
        // Mutation through one alias is visible through the other.
        heap.set_field(shared, "data", Value::Int(42)).unwrap();
        let via_a = heap.get_ref(a, "left").unwrap().unwrap();
        let via_b = heap.get_ref(b, "left").unwrap().unwrap();
        assert_eq!(via_a, via_b);
        assert_eq!(heap.get_field(via_a, "data").unwrap(), Value::Int(42));
    }

    #[test]
    fn arity_and_type_validation() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        assert!(matches!(
            heap.alloc(tree, vec![Value::Int(1)]),
            Err(HeapError::ArityMismatch { .. })
        ));
        assert!(matches!(
            heap.alloc(tree, vec![Value::Str("x".into()), Value::Null, Value::Null]),
            Err(HeapError::TypeMismatch { .. })
        ));
        let obj = heap.alloc_default(tree).unwrap();
        assert!(matches!(
            heap.set_field(obj, "data", Value::Null),
            Err(HeapError::TypeMismatch { .. })
        ));
        assert!(matches!(
            heap.set_field(obj, "nope", Value::Int(1)),
            Err(HeapError::NoSuchField { .. })
        ));
    }

    #[test]
    fn free_and_dangling_detection() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let obj = heap.alloc_default(tree).unwrap();
        heap.free(obj).unwrap();
        assert!(matches!(heap.get(obj), Err(HeapError::DanglingRef(_))));
        assert!(matches!(heap.free(obj), Err(HeapError::DanglingRef(_))));
        assert!(!heap.contains(obj));
        // Slot is recycled.
        let again = heap.alloc_default(tree).unwrap();
        assert_eq!(again.index(), obj.index());
        assert_eq!(heap.stats().frees, 1);
        assert_eq!(heap.stats().allocations, 2);
        assert_eq!(heap.stats().live(), 1);
    }

    #[test]
    fn arrays() {
        let mut reg = ClassRegistry::new();
        let arr = reg.define_array("int[]", FieldType::Int);
        let mut heap = Heap::new(reg.snapshot());
        let a = heap
            .alloc_array(arr, vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(heap.get_element(a, 1).unwrap(), Value::Int(2));
        heap.set_element(a, 0, Value::Int(9)).unwrap();
        assert_eq!(heap.get_element(a, 0).unwrap(), Value::Int(9));
        assert!(matches!(
            heap.get_element(a, 5),
            Err(HeapError::ArrayIndexOutOfBounds { .. })
        ));
        // Element type enforcement at alloc.
        assert!(matches!(
            heap.alloc_array(arr, vec![Value::Str("no".into())]),
            Err(HeapError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn array_ops_on_plain_object_fail() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let obj = heap.alloc_default(tree).unwrap();
        assert!(matches!(
            heap.get_element(obj, 0),
            Err(HeapError::NotAnArray(_))
        ));
        assert!(matches!(
            heap.set_element(obj, 0, Value::Int(1)),
            Err(HeapError::NotAnArray(_))
        ));
        // And alloc of a non-array class via alloc_array fails.
        assert!(matches!(
            heap.alloc_array(obj_class(&heap), vec![]),
            Err(HeapError::NotAnArray(_))
        ));
    }

    fn obj_class(heap: &Heap) -> ClassId {
        heap.registry_handle().by_name("Tree").unwrap()
    }

    #[test]
    fn overwrite_and_rewrite() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let a = heap.alloc_default(tree).unwrap();
        let b = heap.alloc_default(tree).unwrap();
        let c = heap.alloc_default(tree).unwrap();
        heap.overwrite_slots(a, vec![Value::Int(5), Value::Ref(b), Value::Null])
            .unwrap();
        assert_eq!(heap.get_ref(a, "left").unwrap(), Some(b));
        let mut map = std::collections::HashMap::new();
        map.insert(b, c);
        heap.rewrite_refs(a, &map).unwrap();
        assert_eq!(heap.get_ref(a, "left").unwrap(), Some(c));
        assert_eq!(heap.get_field(a, "data").unwrap(), Value::Int(5));
    }

    #[test]
    fn overwrite_array_may_resize() {
        let mut reg = ClassRegistry::new();
        let arr = reg.define_array("int[]", FieldType::Int);
        let mut heap = Heap::new(reg.snapshot());
        let a = heap.alloc_array(arr, vec![Value::Int(1)]).unwrap();
        heap.overwrite_slots(a, vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap();
        assert_eq!(heap.slot_count(a).unwrap(), 3);
    }

    #[test]
    fn versions_track_mutations() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let a = heap.alloc_default(tree).unwrap();
        let b = heap.alloc_default(tree).unwrap();
        let mark = heap.epoch();
        // Nothing mutated since `mark`: both versions are at or below it.
        assert!(heap.version_of(a).unwrap() <= mark);
        assert!(heap.version_of(b).unwrap() <= mark);
        heap.set_field(b, "data", Value::Int(5)).unwrap();
        assert!(
            heap.version_of(a).unwrap() <= mark,
            "untouched object stays clean"
        );
        assert!(
            heap.version_of(b).unwrap() > mark,
            "write stamps the target"
        );
        assert!(heap.epoch() > mark, "the clock is monotone");
        // Every mutation path stamps: overwrite_slots and rewrite_refs.
        let m2 = heap.epoch();
        heap.overwrite_slots(a, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        assert!(heap.version_of(a).unwrap() > m2);
        let m3 = heap.epoch();
        heap.rewrite_refs(a, &std::collections::HashMap::new())
            .unwrap();
        assert!(heap.version_of(a).unwrap() > m3);
        // A recycled slot gets a fresh (higher) version, so stale-epoch
        // comparisons see reuse as dirty, never as clean.
        let m4 = heap.epoch();
        heap.free(b).unwrap();
        let b2 = heap.alloc_default(tree).unwrap();
        assert_eq!(b2.index(), b.index());
        assert!(heap.version_of(b2).unwrap() > m4);
    }

    #[test]
    fn version_of_dangling_errors() {
        let (reg, tree) = tree_setup();
        let mut heap = Heap::new(reg);
        let a = heap.alloc_default(tree).unwrap();
        heap.free(a).unwrap();
        assert!(matches!(heap.version_of(a), Err(HeapError::DanglingRef(_))));
    }

    #[test]
    fn debug_is_nonempty() {
        let (reg, _) = tree_setup();
        let heap = Heap::new(reg);
        assert!(!format!("{heap:?}").is_empty());
    }
}
