//! Graph comparison and rendering.
//!
//! The paper's correctness invariant (§5.3.2) is that after a remote call
//! "all the changes are visible to the caller ... as if both the caller
//! and the callee were executing within the same address space". Checking
//! that invariant means comparing heap *graphs* up to object identity:
//! same classes, same primitive data, and — critically — the same aliasing
//! structure. [`isomorphic`] performs that check; [`render_ascii`]
//! regenerates the paper's figures as text for the `figures` binary.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::heap_impl::Heap;
use crate::traverse::LinearMap;
use crate::value::{ObjId, Value};
use crate::Result;

/// Checks whether the graphs reachable from `root_a` (in `heap_a`) and
/// `root_b` (in `heap_b`) are isomorphic: there is a bijection between
/// the reachable sets that preserves classes, slot counts, primitive
/// values, nulls, and reference structure (hence aliasing and cycles).
///
/// # Errors
/// Propagates dangling-reference errors from either heap.
pub fn isomorphic(heap_a: &Heap, root_a: ObjId, heap_b: &Heap, root_b: ObjId) -> Result<bool> {
    isomorphic_multi(heap_a, &[root_a], heap_b, &[root_b])
}

/// Multi-root variant of [`isomorphic`]; root lists are matched pairwise,
/// so shared structure *across* roots must also correspond.
///
/// # Errors
/// Propagates dangling-reference errors from either heap.
pub fn isomorphic_multi(
    heap_a: &Heap,
    roots_a: &[ObjId],
    heap_b: &Heap,
    roots_b: &[ObjId],
) -> Result<bool> {
    if roots_a.len() != roots_b.len() {
        return Ok(false);
    }
    let map_a = LinearMap::build(heap_a, roots_a)?;
    let map_b = LinearMap::build(heap_b, roots_b)?;
    if map_a.len() != map_b.len() {
        return Ok(false);
    }
    // Roots must occupy matching traversal positions.
    for (&ra, &rb) in roots_a.iter().zip(roots_b) {
        if map_a.position_of(ra) != map_b.position_of(rb) {
            return Ok(false);
        }
    }
    // Deterministic traversal means: isomorphic graphs enumerate
    // corresponding objects at equal positions. Verify slot-by-slot.
    for (&ida, &idb) in map_a.order().iter().zip(map_b.order()) {
        let oa = heap_a.get(ida)?;
        let ob = heap_b.get(idb)?;
        if oa.class() != ob.class() || oa.body().len() != ob.body().len() {
            return Ok(false);
        }
        for (va, vb) in oa.body().slots().iter().zip(ob.body().slots()) {
            let matches = match (va, vb) {
                (Value::Ref(ta), Value::Ref(tb)) => {
                    map_a.position_of(*ta) == map_b.position_of(*tb)
                }
                (a, b) => a == b,
            };
            if !matches {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Like [`isomorphic_multi`], but returns a human-readable description of
/// the first difference instead of a bool — the debugging workhorse for
/// semantics tests.
///
/// # Errors
/// Propagates dangling-reference errors from either heap.
pub fn first_difference(
    heap_a: &Heap,
    roots_a: &[ObjId],
    heap_b: &Heap,
    roots_b: &[ObjId],
) -> Result<Option<String>> {
    if roots_a.len() != roots_b.len() {
        return Ok(Some(format!(
            "root arity differs: {} vs {}",
            roots_a.len(),
            roots_b.len()
        )));
    }
    let map_a = LinearMap::build(heap_a, roots_a)?;
    let map_b = LinearMap::build(heap_b, roots_b)?;
    if map_a.len() != map_b.len() {
        return Ok(Some(format!(
            "reachable set sizes differ: {} vs {}",
            map_a.len(),
            map_b.len()
        )));
    }
    for (&ra, &rb) in roots_a.iter().zip(roots_b) {
        if map_a.position_of(ra) != map_b.position_of(rb) {
            return Ok(Some(format!(
                "root {ra} / {rb} at different traversal positions"
            )));
        }
    }
    for (pos, (&ida, &idb)) in map_a.order().iter().zip(map_b.order()).enumerate() {
        let oa = heap_a.get(ida)?;
        let ob = heap_b.get(idb)?;
        if oa.class() != ob.class() {
            return Ok(Some(format!("object at position {pos}: classes differ")));
        }
        if oa.body().len() != ob.body().len() {
            return Ok(Some(format!(
                "object at position {pos}: slot counts {} vs {}",
                oa.body().len(),
                ob.body().len()
            )));
        }
        for (slot, (va, vb)) in oa.body().slots().iter().zip(ob.body().slots()).enumerate() {
            let matches = match (va, vb) {
                (Value::Ref(ta), Value::Ref(tb)) => {
                    map_a.position_of(*ta) == map_b.position_of(*tb)
                }
                (a, b) => a == b,
            };
            if !matches {
                return Ok(Some(format!(
                    "object at position {pos}, slot {slot}: {va} vs {vb}"
                )));
            }
        }
    }
    Ok(None)
}

/// Renders the subgraph reachable from `roots` as indented ASCII, one
/// object per line, with aliases shown as `-> @N` back-references to the
/// traversal position where the object was first printed. Used to
/// regenerate the paper's figures.
///
/// # Errors
/// Propagates dangling-reference errors.
pub fn render_ascii(heap: &Heap, roots: &[(String, ObjId)]) -> Result<String> {
    let root_ids: Vec<ObjId> = roots.iter().map(|(_, id)| *id).collect();
    let map = LinearMap::build(heap, &root_ids)?;
    let mut out = String::new();
    let mut printed: HashMap<ObjId, u32> = HashMap::new();
    for (label, root) in roots {
        let _ = writeln!(out, "{label}:");
        render_node(heap, *root, &map, &mut printed, 1, &mut out)?;
    }
    Ok(out)
}

fn render_node(
    heap: &Heap,
    id: ObjId,
    map: &LinearMap,
    printed: &mut HashMap<ObjId, u32>,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    let indent = "  ".repeat(depth);
    if let Some(pos) = printed.get(&id) {
        let _ = writeln!(out, "{indent}-> @{pos}");
        return Ok(());
    }
    let pos = map.position_of(id).unwrap_or(u32::MAX);
    printed.insert(id, pos);
    let obj = heap.get(id)?;
    let desc = heap.registry_handle().get(obj.class())?;
    let prims: Vec<String> = if obj.is_array() {
        obj.body()
            .slots()
            .iter()
            .filter(|v| v.as_ref_id().is_none() && !v.is_null())
            .map(|v| v.to_string())
            .collect()
    } else {
        desc.fields()
            .iter()
            .zip(obj.body().slots())
            .filter(|(_, v)| v.as_ref_id().is_none() && !v.is_null())
            .map(|(f, v)| format!("{}={}", f.name(), v))
            .collect()
    };
    let _ = writeln!(out, "{indent}@{pos} {} [{}]", desc.name(), prims.join(", "));
    if obj.is_array() {
        for (i, slot) in obj.body().slots().to_vec().iter().enumerate() {
            if let Some(child) = slot.as_ref_id() {
                let _ = writeln!(out, "{indent}  [{i}]:");
                render_node(heap, child, map, printed, depth + 2, out)?;
            }
        }
    } else {
        let fields: Vec<(String, Value)> = desc
            .fields()
            .iter()
            .zip(obj.body().slots())
            .map(|(f, v)| (f.name().to_owned(), v.clone()))
            .collect();
        for (name, slot) in fields {
            if let Some(child) = slot.as_ref_id() {
                let _ = writeln!(out, "{indent}  .{name}:");
                render_node(heap, child, map, printed, depth + 2, out)?;
            }
        }
    }
    Ok(())
}

/// Shape statistics of a reachable subgraph, for workload
/// characterization (how much sharing and depth a benchmark actually
/// exercises).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Reachable objects.
    pub objects: usize,
    /// Reference edges between reachable objects.
    pub edges: usize,
    /// Objects with in-degree ≥ 2 (aliased within the graph).
    pub shared_objects: usize,
    /// Length of the longest simple path from a root following edges
    /// (bounded by `objects`; cycles contribute their perimeter once).
    pub max_depth: usize,
}

/// Computes [`GraphStats`] over everything reachable from `roots`.
///
/// # Errors
/// Propagates dangling-reference errors.
pub fn graph_stats(heap: &Heap, roots: &[ObjId]) -> Result<GraphStats> {
    let map = LinearMap::build(heap, roots)?;
    let mut in_degree: HashMap<ObjId, usize> = HashMap::new();
    let mut edges = 0;
    for &id in map.order() {
        for target in heap.get(id)?.outgoing_refs() {
            edges += 1;
            *in_degree.entry(target).or_insert(0) += 1;
        }
    }
    let shared_objects = in_degree.values().filter(|&&d| d >= 2).count();
    // Longest path via iterative deepening over the DAG condensation is
    // overkill; a DFS tracking the current path depth (cycle-safe via
    // on-path marking) suffices for benchmark-sized graphs.
    let mut max_depth = 0usize;
    let mut on_path: std::collections::HashSet<ObjId> = std::collections::HashSet::new();
    // Depth memo is unsound with cycles; bound work by visit budget.
    let mut budget: usize = map.len().saturating_mul(64).max(4096);
    fn dfs(
        heap: &Heap,
        node: ObjId,
        depth: usize,
        on_path: &mut std::collections::HashSet<ObjId>,
        max_depth: &mut usize,
        budget: &mut usize,
    ) -> Result<()> {
        if *budget == 0 || !on_path.insert(node) {
            return Ok(());
        }
        *budget -= 1;
        *max_depth = (*max_depth).max(depth);
        let children: Vec<ObjId> = heap.get(node)?.outgoing_refs().collect();
        for child in children {
            dfs(heap, child, depth + 1, on_path, max_depth, budget)?;
        }
        on_path.remove(&node);
        Ok(())
    }
    for &root in roots {
        dfs(heap, root, 1, &mut on_path, &mut max_depth, &mut budget)?;
    }
    Ok(GraphStats {
        objects: map.len(),
        edges,
        shared_objects,
        max_depth,
    })
}

/// Renders the subgraph reachable from `roots` in Graphviz DOT syntax:
/// one record-shaped node per object (class name + primitive fields),
/// labelled edges for reference fields, and diamond nodes for the named
/// roots. Paste into `dot -Tsvg` to draw the paper's figures.
///
/// # Errors
/// Propagates dangling-reference errors.
pub fn render_dot(heap: &Heap, roots: &[(String, ObjId)]) -> Result<String> {
    let root_ids: Vec<ObjId> = roots.iter().map(|(_, id)| *id).collect();
    let map = LinearMap::build(heap, &root_ids)?;
    let mut out = String::from(
        "digraph heap {\n  rankdir=TB;\n  node [shape=record, fontname=\"monospace\"];\n",
    );
    for (label, root) in roots {
        let pos = map.position_of(*root).unwrap_or(u32::MAX);
        let _ = writeln!(out, "  root_{label} [shape=diamond, label=\"{label}\"];");
        let _ = writeln!(out, "  root_{label} -> n{pos};");
    }
    for (pos, id) in map.iter() {
        let obj = heap.get(id)?;
        let desc = heap.registry_handle().get(obj.class())?;
        let mut fields = Vec::new();
        if obj.is_array() {
            for (i, v) in obj.body().slots().iter().enumerate() {
                if v.as_ref_id().is_none() {
                    fields.push(format!("[{i}]={}", escape_dot(&v.to_string())));
                }
            }
        } else {
            for (fd, v) in desc.fields().iter().zip(obj.body().slots()) {
                if v.as_ref_id().is_none() && !v.is_null() {
                    fields.push(format!("{}={}", fd.name(), escape_dot(&v.to_string())));
                }
            }
        }
        let field_part = if fields.is_empty() {
            String::new()
        } else {
            format!("|{}", fields.join("\\n"))
        };
        let _ = writeln!(
            out,
            "  n{pos} [label=\"{{{}{}}}\"];",
            escape_dot(desc.name()),
            field_part
        );
        // Edges.
        if obj.is_array() {
            for (i, v) in obj.body().slots().iter().enumerate() {
                if let Some(target) = v.as_ref_id() {
                    let tpos = map.position_of(target).expect("reachable");
                    let _ = writeln!(out, "  n{pos} -> n{tpos} [label=\"[{i}]\"];");
                }
            }
        } else {
            for (fd, v) in desc.fields().iter().zip(obj.body().slots()) {
                if let Some(target) = v.as_ref_id() {
                    let tpos = map.position_of(target).expect("reachable");
                    let _ = writeln!(out, "  n{pos} -> n{tpos} [label=\"{}\"];", fd.name());
                }
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('{', "\\{")
        .replace('}', "\\}")
        .replace('|', "\\|")
        .replace('<', "\\<")
        .replace('>', "\\>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeClasses};
    use crate::{ClassRegistry, HeapAccess};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn identical_trees_are_isomorphic() {
        let (mut h1, c1) = setup();
        let (mut h2, c2) = setup();
        let r1 = tree::build_random_tree(&mut h1, &c1, 64, 11).unwrap();
        let r2 = tree::build_random_tree(&mut h2, &c2, 64, 11).unwrap();
        assert!(isomorphic(&h1, r1, &h2, r2).unwrap());
        assert_eq!(first_difference(&h1, &[r1], &h2, &[r2]).unwrap(), None);
    }

    #[test]
    fn data_difference_detected() {
        let (mut h1, c1) = setup();
        let (mut h2, c2) = setup();
        let r1 = tree::build_random_tree(&mut h1, &c1, 16, 5).unwrap();
        let r2 = tree::build_random_tree(&mut h2, &c2, 16, 5).unwrap();
        h2.set_field(r2, "data", Value::Int(99999)).unwrap();
        assert!(!isomorphic(&h1, r1, &h2, r2).unwrap());
        let diff = first_difference(&h1, &[r1], &h2, &[r2]).unwrap();
        assert!(diff.is_some());
    }

    #[test]
    fn aliasing_difference_detected() {
        let (mut h1, c1) = setup();
        let (mut h2, c2) = setup();
        // h1: root with two DISTINCT children holding equal data.
        let l1 = h1
            .alloc(c1.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let r1c = h1
            .alloc(c1.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let r1 = h1
            .alloc(
                c1.tree,
                vec![Value::Int(0), Value::Ref(l1), Value::Ref(r1c)],
            )
            .unwrap();
        // h2: root whose two children are the SAME object.
        let shared = h2
            .alloc(c2.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let r2 = h2
            .alloc(
                c2.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Ref(shared)],
            )
            .unwrap();
        // Value-equal but structurally different: must NOT be isomorphic.
        assert!(!isomorphic(&h1, r1, &h2, r2).unwrap());
    }

    #[test]
    fn cyclic_graphs_compare() {
        let (mut h1, c1) = setup();
        let (mut h2, c2) = setup();
        for (h, c) in [(&mut h1, &c1), (&mut h2, &c2)] {
            let a = h.alloc_default(c.tree).unwrap();
            let b = h.alloc_default(c.tree).unwrap();
            h.set_field(a, "left", Value::Ref(b)).unwrap();
            h.set_field(b, "left", Value::Ref(a)).unwrap();
        }
        let a1 = ObjId::from_index(0);
        let a2 = ObjId::from_index(0);
        assert!(isomorphic(&h1, a1, &h2, a2).unwrap());
    }

    #[test]
    fn multi_root_alias_correspondence() {
        let (mut h1, c1) = setup();
        let (mut h2, c2) = setup();
        // h1: alias points INTO the tree; h2: alias points at a detached
        // value-identical node. Reachable sets differ in size → detected.
        let t1 = tree::build_running_example(&mut h1, &c1).unwrap();
        let t2 = tree::build_running_example(&mut h2, &c2).unwrap();
        let detached = h2
            .alloc(c2.tree, vec![Value::Int(3), Value::Null, Value::Null])
            .unwrap();
        assert!(isomorphic_multi(
            &h1,
            &[t1.root, t1.alias1_target],
            &h2,
            &[t2.root, t2.alias1_target]
        )
        .unwrap());
        assert!(
            !isomorphic_multi(&h1, &[t1.root, t1.alias1_target], &h2, &[t2.root, detached])
                .unwrap()
        );
    }

    #[test]
    fn graph_stats_measure_shape() {
        let (mut heap, classes) = setup();
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let stats = graph_stats(&heap, &[ex.root]).unwrap();
        assert_eq!(stats.objects, 7);
        assert_eq!(stats.edges, 6, "a tree has n-1 edges");
        assert_eq!(stats.shared_objects, 0, "no in-tree sharing in figure 1");
        assert_eq!(stats.max_depth, 3);
        // Introduce sharing: both leaves point at one extra node.
        let extra = heap.alloc_default(classes.tree).unwrap();
        heap.set_field(ex.ll, "left", Value::Ref(extra)).unwrap();
        heap.set_field(ex.lr, "left", Value::Ref(extra)).unwrap();
        let stats = graph_stats(&heap, &[ex.root]).unwrap();
        assert_eq!(stats.objects, 8);
        assert_eq!(stats.shared_objects, 1);
        assert_eq!(stats.max_depth, 4);
    }

    #[test]
    fn graph_stats_handle_cycles() {
        let (mut heap, classes) = setup();
        let a = heap.alloc_default(classes.tree).unwrap();
        let b = heap.alloc_default(classes.tree).unwrap();
        heap.set_field(a, "left", Value::Ref(b)).unwrap();
        heap.set_field(b, "left", Value::Ref(a)).unwrap();
        let stats = graph_stats(&heap, &[a]).unwrap();
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.shared_objects, 0, "in-degree 1 each within the cycle");
        assert_eq!(
            stats.max_depth, 2,
            "the cycle contributes its perimeter once"
        );
    }

    #[test]
    fn dot_escapes_special_characters() {
        let mut reg = ClassRegistry::new();
        let named = reg
            .define("Named")
            .field_str("name")
            .serializable()
            .register();
        let mut heap = Heap::new(reg.snapshot());
        let obj = heap
            .alloc(named, vec![Value::Str("we{ird} \"quo|tes\" <here>".into())])
            .unwrap();
        let dot = render_dot(&heap, &[("n".to_owned(), obj)]).unwrap();
        // Every special must appear escaped (preceded by a backslash).
        let label_line = dot.lines().find(|l| l.contains("Named")).unwrap();
        for escaped in ["\\{", "\\}", "\\|", "\\<", "\\>"] {
            assert!(
                label_line.contains(escaped),
                "missing {escaped:?} in {label_line}"
            );
        }
        // And the record label still parses (balanced outer braces).
        assert!(label_line.trim_end().ends_with("\"];"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (mut heap, classes) = setup();
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let dot = render_dot(
            &heap,
            &[
                ("t".to_owned(), ex.root),
                ("alias1".to_owned(), ex.alias1_target),
            ],
        )
        .unwrap();
        assert!(dot.starts_with("digraph heap {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("root_t"));
        assert!(dot.contains("root_alias1"));
        assert!(dot.contains("data=5"));
        // Seven nodes, each declared exactly once (edge lines also
        // contain `[label=`, so match on line starts).
        for pos in 0..7 {
            let decl = format!("  n{pos} [label=");
            assert_eq!(
                dot.lines().filter(|l| l.starts_with(&decl)).count(),
                1,
                "node n{pos} declared once\n{dot}"
            );
        }
        // Balanced braces (a cheap well-formedness check).
        let opens = dot.matches('{').count();
        let closes = dot.matches('}').count();
        assert_eq!(opens, closes, "{dot}");
    }

    #[test]
    fn render_shows_aliases_as_backrefs() {
        let (mut heap, classes) = setup();
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let art = render_ascii(
            &heap,
            &[
                ("t".to_owned(), ex.root),
                ("alias1".to_owned(), ex.alias1_target),
                ("alias2".to_owned(), ex.alias2_target),
            ],
        )
        .unwrap();
        assert!(art.contains("t:"));
        assert!(art.contains("alias1:"));
        // alias1 target was already printed under t, so it renders as a
        // back-reference.
        assert!(art.contains("-> @"), "render:\n{art}");
        assert!(art.contains("data=5"));
    }
}
