//! Reachability traversal and the linear map (algorithm step 1).
//!
//! The paper's algorithm hinges on a *linear map*: "a data structure
//! storing references to all objects reachable from the reference
//! parameter, in the order that they were traversed" (§5.2.1). Client and
//! server independently compute the same traversal order over isomorphic
//! graphs, which is what lets position `i` in the client map correspond to
//! position `i` in the server map (step 4, "match up the two linear
//! maps"). Determinism is therefore a correctness requirement, not a
//! convenience: we use preorder depth-first traversal, visiting slots in
//! declaration order.

use crate::densemap::{DenseObjSet, DensePositionMap};
use crate::heap_impl::Heap;
use crate::value::{ObjId, Value};
use crate::Result;

/// Reusable working storage for [`LinearMap::build_with`]: the traversal
/// stack survives across calls, so a pooled instance stops allocating
/// once it has seen the deepest graph.
#[derive(Clone, Debug, Default)]
pub struct TraverseScratch {
    stack: Vec<ObjId>,
}

impl TraverseScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        TraverseScratch::default()
    }
}

/// All objects reachable from a set of roots, in deterministic traversal
/// order, with O(1) position lookup.
///
/// Position `i` on the client corresponds to position `i` on the server
/// after marshalling, which is how "old" objects are matched back to their
/// originals during restore.
///
/// Positions live in a [`DensePositionMap`]; two maps compare equal iff
/// their traversal orders are equal (positions are derived data).
#[derive(Clone, Debug, Default)]
pub struct LinearMap {
    order: Vec<ObjId>,
    position: DensePositionMap,
}

impl PartialEq for LinearMap {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
    }
}

impl Eq for LinearMap {}

impl LinearMap {
    /// Builds the linear map of everything reachable from `roots` in
    /// `heap`, following fields in declaration order (depth-first,
    /// preorder). Strings and primitives are values, not objects, and do
    /// not appear.
    ///
    /// # Errors
    /// Propagates dangling-reference errors from the heap.
    pub fn build(heap: &Heap, roots: &[ObjId]) -> Result<Self> {
        Self::build_with(heap, roots, &mut TraverseScratch::new())
    }

    /// [`LinearMap::build`] with caller-pooled traversal storage.
    ///
    /// # Errors
    /// As [`LinearMap::build`].
    pub fn build_with(heap: &Heap, roots: &[ObjId], scratch: &mut TraverseScratch) -> Result<Self> {
        let mut map = LinearMap {
            order: Vec::new(),
            position: DensePositionMap::with_capacity(heap.slot_limit()),
        };
        map.rebuild(heap, roots, scratch)?;
        Ok(map)
    }

    /// Rebuilds this map in place from `roots`, reusing its own storage
    /// and the scratch stack — the steady-state path allocates nothing.
    ///
    /// # Errors
    /// As [`LinearMap::build`]; on error the map is left cleared.
    pub fn rebuild(
        &mut self,
        heap: &Heap,
        roots: &[ObjId],
        scratch: &mut TraverseScratch,
    ) -> Result<()> {
        self.order.clear();
        self.position.clear();
        let stack = &mut scratch.stack;
        stack.clear();
        // Push roots in reverse so they are visited first-root-first.
        stack.extend(roots.iter().rev());
        while let Some(id) = stack.pop() {
            if self.position.contains(id) {
                continue;
            }
            let obj = heap.get(id)?;
            self.position.insert(id, self.order.len() as u32);
            self.order.push(id);
            // Reverse so the first declared field is traversed first
            // when popped.
            for slot in obj.body().slots().iter().rev() {
                if let Value::Ref(child) = *slot {
                    if !self.position.contains(child) {
                        stack.push(child);
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds an empty map (e.g. for calls with no reference arguments).
    pub fn empty() -> Self {
        LinearMap::default()
    }

    /// Wraps an explicit object order as a linear map, without
    /// traversing a heap. Warm-call sessions maintain the synchronized
    /// order incrementally across calls; this lets the reply-side
    /// restore machinery (which matches old-index annotations against a
    /// map) run against that maintained order. Duplicate ids keep their
    /// first position.
    pub fn from_order(order: Vec<ObjId>) -> Self {
        let mut position = DensePositionMap::new();
        for (i, &id) in order.iter().enumerate() {
            position.insert_if_absent(id, i as u32);
        }
        LinearMap { order, position }
    }

    /// The objects in traversal order.
    pub fn order(&self) -> &[ObjId] {
        &self.order
    }

    /// The traversal position of `id`, if reachable.
    pub fn position_of(&self, id: ObjId) -> Option<u32> {
        self.position.get(id)
    }

    /// The dense id → position table backing this map (for marshalling
    /// code that annotates against "the position in a previous map").
    pub fn position_map(&self) -> &DensePositionMap {
        &self.position
    }

    /// The object at traversal position `pos`.
    pub fn at(&self, pos: u32) -> Option<ObjId> {
        self.order.get(pos as usize).copied()
    }

    /// True if `id` was reachable from the roots.
    pub fn contains(&self, id: ObjId) -> bool {
        self.position.contains(id)
    }

    /// Number of reachable objects.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no objects are reachable (all roots were null/absent).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates over `(position, id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, ObjId)> + '_ {
        self.order.iter().enumerate().map(|(i, &id)| (i as u32, id))
    }
}

/// Returns the set of objects reachable from `roots` as a dense bitset
/// (1 bit per arena slot — no hashing, no per-node allocation).
///
/// # Errors
/// Propagates dangling-reference errors from the heap.
pub fn reachable_set(heap: &Heap, roots: &[ObjId]) -> Result<DenseObjSet> {
    let mut set = DenseObjSet::with_capacity(heap.slot_limit());
    reachable_set_into(heap, roots, &mut set, &mut TraverseScratch::new())?;
    Ok(set)
}

/// [`reachable_set`] into caller-pooled storage: `set` is cleared and
/// refilled, `scratch` provides the traversal stack.
///
/// # Errors
/// Propagates dangling-reference errors from the heap.
pub fn reachable_set_into(
    heap: &Heap,
    roots: &[ObjId],
    set: &mut DenseObjSet,
    scratch: &mut TraverseScratch,
) -> Result<()> {
    set.clear();
    let stack = &mut scratch.stack;
    stack.clear();
    stack.extend(roots.iter().copied());
    while let Some(id) = stack.pop() {
        if !set.insert(id) {
            continue;
        }
        let obj = heap.get(id)?;
        for child in obj.outgoing_refs() {
            if !set.contains(child) {
                stack.push(child);
            }
        }
    }
    Ok(())
}

/// Counts the objects reachable from `roots`.
///
/// # Errors
/// Propagates dangling-reference errors from the heap.
pub fn reachable_count(heap: &Heap, roots: &[ObjId]) -> Result<usize> {
    Ok(LinearMap::build(heap, roots)?.len())
}

/// Computes the total wire size (headers + payloads) of the subgraph
/// reachable from `roots`; the simulated cost model uses this to charge
/// serialization CPU and network transfer.
///
/// # Errors
/// Propagates dangling-reference or unknown-class errors.
pub fn reachable_wire_size(heap: &Heap, roots: &[ObjId]) -> Result<usize> {
    let map = LinearMap::build(heap, roots)?;
    let mut total = 0usize;
    for &id in map.order() {
        let obj = heap.get(id)?;
        let desc = heap.registry_handle().get(obj.class())?;
        total += desc.header_wire_size() + obj.payload_wire_size();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeClasses};
    use crate::{ClassRegistry, Heap, Value};

    fn setup() -> (Heap, TreeClasses) {
        let mut reg = ClassRegistry::new();
        let classes = tree::register_tree_classes(&mut reg);
        (Heap::new(reg.snapshot()), classes)
    }

    #[test]
    fn linear_map_of_running_example_is_preorder() {
        let (mut heap, classes) = setup();
        let ex = tree::build_running_example(&mut heap, &classes).unwrap();
        let map = LinearMap::build(&heap, &[ex.root]).unwrap();
        // Figure 1's tree has 7 nodes; preorder visits root, then the
        // left subtree, then the right subtree.
        assert_eq!(map.len(), 7);
        assert_eq!(map.at(0), Some(ex.root));
        assert_eq!(map.position_of(ex.root), Some(0));
        assert_eq!(map.at(1), Some(ex.left));
        // alias targets are interior nodes, hence present.
        assert!(map.contains(ex.alias1_target));
        assert!(map.contains(ex.alias2_target));
    }

    #[test]
    fn shared_subtrees_appear_once() {
        let (mut heap, classes) = setup();
        let shared = heap
            .alloc(classes.tree, vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        let root = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Ref(shared)],
            )
            .unwrap();
        let map = LinearMap::build(&heap, &[root]).unwrap();
        assert_eq!(map.len(), 2, "aliased child must appear exactly once");
    }

    #[test]
    fn cycles_terminate() {
        let (mut heap, classes) = setup();
        let a = heap.alloc_default(classes.tree).unwrap();
        let b = heap.alloc_default(classes.tree).unwrap();
        crate::HeapAccess::set_field(&mut heap, a, "left", Value::Ref(b)).unwrap();
        crate::HeapAccess::set_field(&mut heap, b, "left", Value::Ref(a)).unwrap();
        let map = LinearMap::build(&heap, &[a]).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.at(0), Some(a));
        assert_eq!(map.at(1), Some(b));
    }

    #[test]
    fn multiple_roots_share_dedup() {
        let (mut heap, classes) = setup();
        let shared = heap.alloc_default(classes.tree).unwrap();
        let a = heap
            .alloc(
                classes.tree,
                vec![Value::Int(0), Value::Ref(shared), Value::Null],
            )
            .unwrap();
        let b = heap
            .alloc(
                classes.tree,
                vec![Value::Int(1), Value::Ref(shared), Value::Null],
            )
            .unwrap();
        let map = LinearMap::build(&heap, &[a, b]).unwrap();
        // The paper (§4.1): sharing across parameters is replicated, not
        // duplicated — a shared object appears once in the map.
        assert_eq!(map.len(), 3);
        assert_eq!(map.at(0), Some(a));
        assert_eq!(map.at(1), Some(shared));
        assert_eq!(map.at(2), Some(b));
    }

    #[test]
    fn empty_roots() {
        let (heap, _) = setup();
        let map = LinearMap::build(&heap, &[]).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(LinearMap::empty(), map);
    }

    #[test]
    fn wire_size_positive_and_monotone() {
        let (mut heap, classes) = setup();
        let small = tree::build_random_tree(&mut heap, &classes, 4, 1).unwrap();
        let large = tree::build_random_tree(&mut heap, &classes, 64, 1).unwrap();
        let s = reachable_wire_size(&heap, &[small]).unwrap();
        let l = reachable_wire_size(&heap, &[large]).unwrap();
        assert!(s > 0);
        assert!(l > s);
    }

    #[test]
    fn reachable_set_matches_map() {
        let (mut heap, classes) = setup();
        let root = tree::build_random_tree(&mut heap, &classes, 16, 7).unwrap();
        let set = reachable_set(&heap, &[root]).unwrap();
        let map = LinearMap::build(&heap, &[root]).unwrap();
        assert_eq!(set.len(), map.len());
        assert_eq!(reachable_count(&heap, &[root]).unwrap(), map.len());
        for &id in map.order() {
            assert!(set.contains(id));
        }
    }

    #[test]
    fn rebuild_reuses_storage_and_matches_build() {
        let (mut heap, classes) = setup();
        let small = tree::build_random_tree(&mut heap, &classes, 8, 3).unwrap();
        let large = tree::build_random_tree(&mut heap, &classes, 32, 4).unwrap();
        let mut scratch = TraverseScratch::new();
        let mut map = LinearMap::build_with(&heap, &[large], &mut scratch).unwrap();
        assert_eq!(map, LinearMap::build(&heap, &[large]).unwrap());
        // Rebuild over a different root set: same result as a fresh build.
        map.rebuild(&heap, &[small], &mut scratch).unwrap();
        assert_eq!(map, LinearMap::build(&heap, &[small]).unwrap());
        assert_eq!(map.len(), 8);
        for (pos, id) in map.iter() {
            assert_eq!(map.position_of(id), Some(pos));
        }
        // Stale entries from the larger build must not leak through.
        let only_large: Vec<_> = LinearMap::build(&heap, &[large])
            .unwrap()
            .order()
            .iter()
            .copied()
            .filter(|id| !map.contains(*id))
            .collect();
        assert!(!only_large.is_empty());
        for id in only_large {
            assert_eq!(map.position_of(id), None);
        }
    }
}
