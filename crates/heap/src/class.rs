//! Class descriptors: the reflective metadata Java provides at runtime.
//!
//! NRMI's portable implementation walks object graphs using
//! `java.lang.reflect`; its optimized implementation uses `sun.misc.Unsafe`
//! but still relies on class layout metadata. Rust has neither, so every
//! object type participating in remote calls is described ahead of time by
//! a [`ClassDescriptor`] registered in a [`ClassRegistry`]. This mirrors
//! how stubs/skeletons and serialVersionUIDs require class definitions to
//! be present on both client and server "classpaths".

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::HeapError;

/// Identifies a class within a [`ClassRegistry`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Raw registry index; stable across client and server because both
    /// sides share a registry snapshot (their common "classpath").
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a `ClassId` from [`ClassId::index`]. Validity is checked on
    /// first use against the registry.
    pub fn from_index(index: u32) -> Self {
        ClassId(index)
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class:{}", self.0)
    }
}

/// Static type of a field slot.
///
/// References are untyped (as if every reference field were declared
/// `Object`); the dynamic class travels with the object, exactly as in
/// Java serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Java `boolean`.
    Bool,
    /// Java `int`.
    Int,
    /// Java `long`.
    Long,
    /// Java `double`.
    Double,
    /// An immutable string.
    Str,
    /// A reference to another object (or null).
    Ref,
    /// Any value — a Java `Object` field, which may hold a reference,
    /// null, or a boxed primitive.
    Any,
}

impl FieldType {
    /// True if a [`Value`](crate::Value) is admissible in a slot of this
    /// type. `Null` is admissible in `Ref` and `Str` slots (Java nulls).
    pub fn admits(self, value: &crate::Value) -> bool {
        use crate::Value;
        matches!(
            (self, value),
            (FieldType::Bool, Value::Bool(_))
                | (FieldType::Int, Value::Int(_))
                | (FieldType::Long, Value::Long(_))
                | (FieldType::Double, Value::Double(_))
                | (FieldType::Str, Value::Str(_))
                | (FieldType::Str, Value::Null)
                | (FieldType::Ref, Value::Ref(_))
                | (FieldType::Ref, Value::Null)
                | (FieldType::Any, _)
        )
    }

    /// The default (zero) value a freshly allocated slot of this type holds.
    pub fn default_value(self) -> crate::Value {
        use crate::Value;
        match self {
            FieldType::Bool => Value::Bool(false),
            FieldType::Int => Value::Int(0),
            FieldType::Long => Value::Long(0),
            FieldType::Double => Value::Double(0.0),
            FieldType::Str => Value::Null,
            FieldType::Ref => Value::Null,
            FieldType::Any => Value::Null,
        }
    }
}

/// A named, typed field slot in a class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDescriptor {
    name: String,
    ty: FieldType,
}

impl FieldDescriptor {
    /// Creates a descriptor for field `name` of type `ty`.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDescriptor {
            name: name.into(),
            ty,
        }
    }

    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field's static type.
    pub fn ty(&self) -> FieldType {
        self.ty
    }
}

/// NRMI marker flags, mirroring the paper's per-type semantics selection
/// (§5.1): `java.io.Serializable` → pass by copy,
/// `java.rmi.Restorable` → pass by copy-restore,
/// `UnicastRemoteObject` → pass by remote reference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassFlags {
    /// Instances may be marshalled by value (`java.io.Serializable`).
    pub serializable: bool,
    /// Instances are passed by copy-restore (`java.rmi.Restorable`).
    /// Implies `serializable`, as in the paper ("Restorable extends
    /// Serializable").
    pub restorable: bool,
    /// Instances are remotely accessible and passed by remote reference
    /// (`java.rmi.server.UnicastRemoteObject`).
    pub remote: bool,
    /// Instances are arrays; `fields` is empty and the payload is an
    /// element vector.
    pub array: bool,
    /// Instances are local proxies ("stubs") for objects owned by the
    /// peer node, holding only the peer's export key. Auto-registered as
    /// [`ClassRegistry::stub_class`]; never defined by users.
    pub stub: bool,
}

/// Immutable description of an object type: name, field layout, flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDescriptor {
    name: String,
    fields: Vec<FieldDescriptor>,
    flags: ClassFlags,
    /// Element type for array classes.
    element: Option<FieldType>,
}

impl ClassDescriptor {
    /// Assembles a descriptor from raw parts.
    ///
    /// Unlike [`ClassRegistry::define`], this performs *no* validation —
    /// inconsistent metadata (duplicate field names, an array flag with
    /// no element type, contradictory marker flags) is accepted as-is.
    /// That is deliberate: schema tooling (`nrmi-check`) needs to build
    /// and install descriptors that model a *misconfigured* peer in order
    /// to test that static analysis rejects them.
    pub fn new(
        name: impl Into<String>,
        fields: Vec<FieldDescriptor>,
        flags: ClassFlags,
        element: Option<FieldType>,
    ) -> Self {
        ClassDescriptor {
            name: name.into(),
            fields,
            flags,
            element,
        }
    }

    /// The fully qualified class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field descriptors in declaration order (the order serialization and
    /// the linear-map traversal follow).
    pub fn fields(&self) -> &[FieldDescriptor] {
        &self.fields
    }

    /// The marker flags.
    pub fn flags(&self) -> ClassFlags {
        self.flags
    }

    /// For array classes, the element type.
    pub fn element_type(&self) -> Option<FieldType> {
        self.element
    }

    /// Index of the field named `name`.
    ///
    /// # Errors
    /// [`HeapError::NoSuchField`] if the class declares no such field.
    pub fn field_index(&self, name: &str) -> Result<usize, HeapError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| HeapError::NoSuchField {
                class: self.name.clone(),
                field: name.to_owned(),
            })
    }

    /// Number of declared fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Approximate per-object wire overhead (class handle + field count),
    /// used by the simulated cost model.
    pub fn header_wire_size(&self) -> usize {
        5 + 2
    }
}

/// Builder returned by [`ClassRegistry::define`].
///
/// ```
/// use nrmi_heap::ClassRegistry;
/// let mut reg = ClassRegistry::new();
/// let tree = reg
///     .define("Tree")
///     .field_int("data")
///     .field_ref("left")
///     .field_ref("right")
///     .restorable()
///     .register();
/// assert_eq!(reg.get(tree).unwrap().name(), "Tree");
/// ```
#[derive(Debug)]
pub struct ClassBuilder<'r> {
    registry: &'r mut ClassRegistry,
    name: String,
    fields: Vec<FieldDescriptor>,
    flags: ClassFlags,
    element: Option<FieldType>,
}

impl<'r> ClassBuilder<'r> {
    /// Adds a field of an explicit type.
    pub fn field(mut self, name: impl Into<String>, ty: FieldType) -> Self {
        self.fields.push(FieldDescriptor::new(name, ty));
        self
    }

    /// Adds an `int` field.
    pub fn field_int(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Int)
    }

    /// Adds a `long` field.
    pub fn field_long(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Long)
    }

    /// Adds a `double` field.
    pub fn field_double(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Double)
    }

    /// Adds a `bool` field.
    pub fn field_bool(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Bool)
    }

    /// Adds a string field.
    pub fn field_str(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Str)
    }

    /// Adds a reference field.
    pub fn field_ref(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Ref)
    }

    /// Adds an `Object`-typed field that admits any value (reference,
    /// null, or boxed primitive).
    pub fn field_any(self, name: impl Into<String>) -> Self {
        self.field(name, FieldType::Any)
    }

    /// Marks instances serializable (pass by copy).
    pub fn serializable(mut self) -> Self {
        self.flags.serializable = true;
        self
    }

    /// Marks instances restorable (pass by copy-restore). Implies
    /// serializable.
    pub fn restorable(mut self) -> Self {
        self.flags.restorable = true;
        self.flags.serializable = true;
        self
    }

    /// Marks instances remote (pass by remote reference).
    pub fn remote(mut self) -> Self {
        self.flags.remote = true;
        self
    }

    /// Finalizes the class and returns its id.
    ///
    /// # Panics
    /// Panics if a class with the same name is already registered; class
    /// names are the cross-address-space identity and must be unique.
    pub fn register(self) -> ClassId {
        self.registry
            .insert(ClassDescriptor {
                name: self.name,
                fields: self.fields,
                flags: self.flags,
                element: self.element,
            })
            .expect("duplicate class name")
    }
}

/// The set of classes known to a node. Client and server each hold a
/// [`SharedRegistry`] snapshot of the same registry — the analogue of
/// having the same classes on both classpaths.
#[derive(Clone, Debug, Default)]
pub struct ClassRegistry {
    classes: Vec<ClassDescriptor>,
    by_name: HashMap<String, ClassId>,
}

/// A frozen, shareable registry handle used by heaps and serializers.
pub type SharedRegistry = Arc<ClassRegistry>;

/// Name of the auto-registered remote-stub class.
pub const STUB_CLASS_NAME: &str = "@RemoteStub";

impl ClassRegistry {
    /// Creates a registry with the built-in remote-stub class registered.
    ///
    /// Stubs are how a node represents an object owned by its peer: a
    /// single `key` field holding the peer's export-table key. They are
    /// the in-heap form of RMI's remote references (Figure 3 of the
    /// paper).
    pub fn new() -> Self {
        let mut reg = Self::default();
        reg.insert(ClassDescriptor {
            name: STUB_CLASS_NAME.to_owned(),
            fields: vec![FieldDescriptor::new("key", FieldType::Long)],
            flags: ClassFlags {
                stub: true,
                ..ClassFlags::default()
            },
            element: None,
        })
        .expect("fresh registry");
        reg
    }

    /// The built-in remote-stub class.
    ///
    /// # Panics
    /// Panics if called on a registry built without [`ClassRegistry::new`]
    /// (e.g. `default()`), which has no stub class.
    pub fn stub_class(&self) -> ClassId {
        self.by_name(STUB_CLASS_NAME)
            .expect("stub class registered by new()")
    }

    /// Starts defining a class named `name`.
    pub fn define(&mut self, name: impl Into<String>) -> ClassBuilder<'_> {
        ClassBuilder {
            registry: self,
            name: name.into(),
            fields: Vec::new(),
            flags: ClassFlags::default(),
            element: None,
        }
    }

    /// Defines an array class with elements of type `element`. Array
    /// classes are serializable by default (Java arrays are).
    pub fn define_array(&mut self, name: impl Into<String>, element: FieldType) -> ClassId {
        self.insert(ClassDescriptor {
            name: name.into(),
            fields: Vec::new(),
            flags: ClassFlags {
                serializable: true,
                array: true,
                ..ClassFlags::default()
            },
            element: Some(element),
        })
        .expect("duplicate class name")
    }

    /// Installs a pre-assembled descriptor (see [`ClassDescriptor::new`]).
    ///
    /// Only the cross-registry identity invariant is enforced — class
    /// names must be unique; the descriptor's internal consistency is the
    /// static analyzer's job, not the registry's.
    ///
    /// # Errors
    /// [`HeapError::DuplicateClass`] if the name is taken.
    pub fn install(&mut self, desc: ClassDescriptor) -> Result<ClassId, HeapError> {
        self.insert(desc)
    }

    fn insert(&mut self, desc: ClassDescriptor) -> Result<ClassId, HeapError> {
        if self.by_name.contains_key(desc.name()) {
            return Err(HeapError::DuplicateClass(desc.name().to_owned()));
        }
        let id = ClassId(self.classes.len() as u32);
        self.by_name.insert(desc.name().to_owned(), id);
        self.classes.push(desc);
        Ok(id)
    }

    /// Looks up a descriptor by id.
    ///
    /// # Errors
    /// [`HeapError::UnknownClass`] for ids not issued by this registry.
    pub fn get(&self, id: ClassId) -> Result<&ClassDescriptor, HeapError> {
        self.classes
            .get(id.0 as usize)
            .ok_or(HeapError::UnknownClass(id.0))
    }

    /// Looks up a class id by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over `(id, descriptor)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDescriptor)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, d)| (ClassId(i as u32), d))
    }

    /// Freezes the registry into a [`SharedRegistry`] handle that heaps on
    /// both sides of a connection can share.
    pub fn snapshot(&self) -> SharedRegistry {
        Arc::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn define_and_lookup() {
        let mut reg = ClassRegistry::new();
        let tree = reg
            .define("Tree")
            .field_int("data")
            .field_ref("left")
            .field_ref("right")
            .restorable()
            .register();
        let desc = reg.get(tree).unwrap();
        assert_eq!(desc.name(), "Tree");
        assert_eq!(desc.field_count(), 3);
        assert_eq!(desc.field_index("left").unwrap(), 1);
        assert!(desc.flags().restorable);
        assert!(desc.flags().serializable, "restorable implies serializable");
        assert_eq!(reg.by_name("Tree"), Some(tree));
        assert_eq!(reg.by_name("Missing"), None);
    }

    #[test]
    fn field_index_error_names_class_and_field() {
        let mut reg = ClassRegistry::new();
        let c = reg.define("C").field_int("x").register();
        let err = reg.get(c).unwrap().field_index("y").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('C') && msg.contains('y'), "got: {msg}");
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_names_rejected() {
        let mut reg = ClassRegistry::new();
        reg.define("A").register();
        reg.define("A").register();
    }

    #[test]
    fn unknown_class_id() {
        let reg = ClassRegistry::new();
        assert!(matches!(
            reg.get(ClassId::from_index(9)),
            Err(HeapError::UnknownClass(9))
        ));
    }

    #[test]
    fn stub_class_is_preregistered() {
        let reg = ClassRegistry::new();
        let stub = reg.stub_class();
        let desc = reg.get(stub).unwrap();
        assert!(desc.flags().stub);
        assert!(
            !desc.flags().serializable,
            "stubs use the TAG_REMOTE path, not copying"
        );
        assert_eq!(desc.field_count(), 1);
        assert_eq!(desc.fields()[0].ty(), FieldType::Long);
    }

    #[test]
    fn array_classes() {
        let mut reg = ClassRegistry::new();
        let arr = reg.define_array("Object[]", FieldType::Ref);
        let desc = reg.get(arr).unwrap();
        assert!(desc.flags().array);
        assert!(desc.flags().serializable);
        assert_eq!(desc.element_type(), Some(FieldType::Ref));
        assert_eq!(desc.field_count(), 0);
    }

    #[test]
    fn field_type_admission() {
        assert!(FieldType::Int.admits(&Value::Int(1)));
        assert!(!FieldType::Int.admits(&Value::Long(1)));
        assert!(FieldType::Ref.admits(&Value::Null));
        assert!(FieldType::Str.admits(&Value::Null));
        assert!(!FieldType::Bool.admits(&Value::Null));
        assert!(FieldType::Ref.admits(&Value::Ref(crate::ObjId::from_index(0))));
        for v in [
            Value::Null,
            Value::Int(1),
            Value::Str("s".into()),
            Value::Ref(crate::ObjId::from_index(0)),
        ] {
            assert!(FieldType::Any.admits(&v));
        }
    }

    #[test]
    fn default_values_match_types() {
        for ty in [
            FieldType::Bool,
            FieldType::Int,
            FieldType::Long,
            FieldType::Double,
            FieldType::Str,
            FieldType::Ref,
            FieldType::Any,
        ] {
            assert!(ty.admits(&ty.default_value()), "{ty:?}");
        }
    }

    #[test]
    fn iteration_order_is_registration_order() {
        let mut reg = ClassRegistry::new();
        let a = reg.define("A").register();
        let b = reg.define("B").register();
        let ids: Vec<ClassId> = reg.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![reg.stub_class(), a, b]);
        assert_eq!(reg.len(), 3, "stub class + A + B");
        assert!(!reg.is_empty());
    }
}
