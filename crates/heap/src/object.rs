//! Object records stored in heap slots.

use crate::class::ClassId;
use crate::value::Value;

/// The payload of an object: either named field slots (ordinary classes)
/// or an element vector (array classes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectBody {
    /// Field slots in declaration order.
    Fields(Vec<Value>),
    /// Array elements.
    Array(Vec<Value>),
}

impl ObjectBody {
    /// All value slots, regardless of representation.
    pub fn slots(&self) -> &[Value] {
        match self {
            ObjectBody::Fields(v) | ObjectBody::Array(v) => v,
        }
    }

    /// Mutable access to all value slots.
    pub fn slots_mut(&mut self) -> &mut [Value] {
        match self {
            ObjectBody::Fields(v) | ObjectBody::Array(v) => v,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots().len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots().is_empty()
    }
}

/// A heap-resident object: a class tag plus its payload.
///
/// Equality compares class and payload only; the mutation `version`
/// stamp is bookkeeping, not state.
#[derive(Clone, Debug)]
pub struct Object {
    pub(crate) class: ClassId,
    pub(crate) body: ObjectBody,
    /// The heap epoch at which this object was last allocated or
    /// mutated (see [`Heap::epoch`](crate::Heap::epoch)). Warm-call
    /// clients compare it against a remembered epoch to find the dirty
    /// slice of a synchronized graph without diffing slots.
    pub(crate) version: u64,
    /// The heap epoch at which this object was allocated. Never changes
    /// after [`place`](crate::Heap) — comparing it against a remembered
    /// version distinguishes "this object mutated" (repairable by a
    /// coherence patch) from "the slot was freed and recycled for a
    /// different object" (the session object is gone), without
    /// dereferencing the possibly-stale handle.
    pub(crate) born: u64,
}

impl PartialEq for Object {
    fn eq(&self, other: &Self) -> bool {
        self.class == other.class && self.body == other.body
    }
}

impl Eq for Object {}

impl Object {
    /// Creates an object with ordinary field slots.
    pub fn new(class: ClassId, fields: Vec<Value>) -> Self {
        Object {
            class,
            body: ObjectBody::Fields(fields),
            version: 0,
            born: 0,
        }
    }

    /// Creates an array object.
    pub fn new_array(class: ClassId, elements: Vec<Value>) -> Self {
        Object {
            class,
            body: ObjectBody::Array(elements),
            version: 0,
            born: 0,
        }
    }

    /// The heap epoch of this object's last allocation or mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The heap epoch at which this object was allocated.
    pub fn born(&self) -> u64 {
        self.born
    }

    /// The object's class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The object's payload.
    pub fn body(&self) -> &ObjectBody {
        &self.body
    }

    /// True for array objects.
    pub fn is_array(&self) -> bool {
        matches!(self.body, ObjectBody::Array(_))
    }

    /// Iterates over the object ids this object references directly,
    /// in slot order (the order the linear-map traversal follows).
    pub fn outgoing_refs(&self) -> impl Iterator<Item = crate::ObjId> + '_ {
        self.body.slots().iter().filter_map(Value::as_ref_id)
    }

    /// Approximate serialized payload size in bytes (slot values only;
    /// the per-object header is accounted by the class descriptor).
    pub fn payload_wire_size(&self) -> usize {
        self.body.slots().iter().map(Value::wire_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassId, ObjId};

    fn cid() -> ClassId {
        ClassId::from_index(0)
    }

    #[test]
    fn outgoing_refs_skips_primitives_and_nulls() {
        let a = ObjId::from_index(1);
        let b = ObjId::from_index(2);
        let obj = Object::new(
            cid(),
            vec![Value::Int(5), Value::Ref(a), Value::Null, Value::Ref(b)],
        );
        let refs: Vec<ObjId> = obj.outgoing_refs().collect();
        assert_eq!(refs, vec![a, b]);
    }

    #[test]
    fn array_body() {
        let obj = Object::new_array(cid(), vec![Value::Int(1), Value::Int(2)]);
        assert!(obj.is_array());
        assert_eq!(obj.body().len(), 2);
        assert!(!obj.body().is_empty());
    }

    #[test]
    fn payload_size_sums_slots() {
        let obj = Object::new(cid(), vec![Value::Int(1), Value::Long(2)]);
        assert_eq!(obj.payload_wire_size(), 5 + 9);
    }
}
