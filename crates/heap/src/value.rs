//! Primitive values and object handles.

use std::fmt;

/// A handle to an object living in a [`Heap`](crate::Heap).
///
/// Handles are stable for the lifetime of the object: mutating fields of
/// other objects never invalidates a handle, which is what lets two fields
/// alias the same object — the property the NRMI restore algorithm exists
/// to preserve across address spaces.
///
/// An `ObjId` is only meaningful relative to the heap that issued it.
///
/// Under the `sanitize` feature the handle additionally carries invisible
/// provenance (the issuing heap's tag and the slot's allocation
/// generation) so checked heap operations can detect use-after-GC and
/// cross-heap confusion at the offending call. Provenance never affects
/// equality, ordering, or hashing — a sanitized build behaves
/// observably identically to a normal one until it traps.
#[derive(Clone, Copy)]
pub struct ObjId {
    pub(crate) index: u32,
    /// Tag of the issuing heap; 0 means "unknown origin" (wire decode,
    /// [`ObjId::from_index`]) and exempts the handle from checks.
    #[cfg(feature = "sanitize")]
    pub(crate) heap_tag: u32,
    /// Allocation generation of the slot when this handle was issued;
    /// 0 means unknown.
    #[cfg(feature = "sanitize")]
    pub(crate) alloc_gen: u32,
}

impl ObjId {
    /// Returns the raw slot index. Exposed for wire formats and debugging;
    /// the value has no meaning outside the issuing heap.
    pub fn index(self) -> u32 {
        self.index
    }

    /// Reconstructs a handle from a raw index previously obtained with
    /// [`ObjId::index`]. The caller is responsible for pairing it with the
    /// correct heap; a stale handle is caught at access time as
    /// [`HeapError::DanglingRef`](crate::HeapError::DanglingRef).
    pub fn from_index(index: u32) -> Self {
        ObjId {
            index,
            #[cfg(feature = "sanitize")]
            heap_tag: 0,
            #[cfg(feature = "sanitize")]
            alloc_gen: 0,
        }
    }
}

impl PartialEq for ObjId {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl Eq for ObjId {}

impl PartialOrd for ObjId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ObjId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.index.cmp(&other.index)
    }
}

impl std::hash::Hash for ObjId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.index)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.index)
    }
}

/// A single field slot: either a primitive, a string, a reference to
/// another heap object, or null.
///
/// This mirrors the Java value universe the paper assumes: primitives are
/// passed by copy, references point into the heap, and `null` is a
/// first-class citizen. Strings are modelled as immutable inline values
/// (as Java strings effectively are for serialization purposes).
#[derive(Clone, Debug)]
pub enum Value {
    /// The null reference.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 32-bit signed integer (Java `int`).
    Int(i32),
    /// A 64-bit signed integer (Java `long`).
    Long(i64),
    /// A 64-bit IEEE float (Java `double`). Compared bitwise so that
    /// `Value` can implement `Eq`.
    Double(f64),
    /// An immutable string.
    Str(String),
    /// A reference to a heap object.
    Ref(ObjId),
}

impl Value {
    /// Returns the referenced object, if this value is a non-null reference.
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            Value::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// True if this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the contained `i32`, if any.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained `i64`, if any.
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained `f64`, if any.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Returns the contained string slice, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained `bool`, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short human-readable tag for diagnostics ("int", "ref", ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
            Value::Ref(_) => "ref",
        }
    }

    /// Approximate serialized size in bytes, used by the simulated cost
    /// model. Mirrors the field sizes a compact Java-serialization-like
    /// format would emit.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) => 5,
            Value::Long(_) => 9,
            Value::Double(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
            Value::Ref(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Long(a), Value::Long(b)) => a == b,
            // Bitwise comparison: gives us Eq/Hash and makes NaN == NaN,
            // which is what graph-equality checks want.
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Long(i) => i.hash(state),
            Value::Double(d) => d.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Ref(r) => r.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Long(i) => write!(f, "{i}L"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<ObjId> for Value {
    fn from(v: ObjId) -> Self {
        Value::Ref(v)
    }
}

impl From<Option<ObjId>> for Value {
    fn from(v: Option<ObjId>) -> Self {
        match v {
            Some(id) => Value::Ref(id),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_accessors() {
        let id = ObjId::from_index(7);
        assert_eq!(Value::Ref(id).as_ref_id(), Some(id));
        assert_eq!(Value::Null.as_ref_id(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn double_equality_is_bitwise() {
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
        assert_ne!(Value::Double(0.0), Value::Double(-0.0));
        assert_eq!(Value::Double(1.5), Value::Double(1.5));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Long(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(None::<ObjId>), Value::Null);
        let id = ObjId::from_index(1);
        assert_eq!(Value::from(Some(id)), Value::Ref(id));
    }

    #[test]
    fn wire_sizes_are_positive_and_str_scales() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(1),
            Value::Long(1),
            Value::Double(1.0),
            Value::Ref(ObjId::from_index(0)),
        ] {
            assert!(v.wire_size() > 0);
        }
        assert!(Value::Str("abcdef".into()).wire_size() > Value::Str("a".into()).wire_size());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Long(5).to_string(), "5L");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(ObjId::from_index(3).to_string(), "#3");
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Null.kind_name(), "null");
        assert_eq!(Value::Ref(ObjId::from_index(0)).kind_name(), "ref");
        assert_eq!(Value::Double(0.0).kind_name(), "double");
    }
}
